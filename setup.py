"""Package metadata and installation.

The compiled kernel backend is an *extra*, never a hard dependency:

    pip install .            # numpy-only (reference kernels)
    pip install .[compiled]  # adds numba for the compiled backend

Without the extra, ``repro.kernels`` auto-resolution falls back to the
bit-identical NumPy reference backend.
"""

from setuptools import find_packages, setup

setup(
    name="repro-wmsketch",
    version="1.0.0",  # keep in sync with repro.__version__
    description=(
        "Reproduction of the Weight-Median Sketch (SIGMOD 2018) with "
        "batched, parallel and compiled-kernel execution"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={
        # The optional compiled kernel backend (repro.kernels.numba_backend).
        "compiled": ["numba>=0.59"],
        "test": ["pytest", "hypothesis"],
    },
)
