"""The Space Saving algorithm of Metwally, Agrawal & El Abbadi (2005).

Space Saving maintains exactly ``capacity`` (item, count, error) triples.
On arrival of an item:

* if tracked, its count is incremented;
* if untracked and slots remain, it is inserted with count 1;
* otherwise it *replaces* the minimum-count item, inheriting its count
  plus one, and records that inherited count as its overestimation error.

Guarantees: every item with true frequency > N / capacity is tracked, and
each tracked count overestimates the true count by at most
``min_count``.  This is the frequent-features selector used by the Space
Saving Frequent baseline (Sections 7.2-7.3) and by the MacroBase-style
heavy-hitters explainer compared in Fig. 8.

The implementation uses the array-backed
:class:`~repro.heap.topk.TopKStore` over counts (O(1) updates against a
lazily tracked minimum) rather than the linked-list "stream summary",
which has the same asymptotics for our purposes and far less
constant-factor code.  Evictions go through
:meth:`~repro.heap.topk.TopKStore.replace_min`, which overwrites the
minimum slot in place instead of a pop-then-push pair.
"""

from __future__ import annotations

from repro.heap.topk import TopKStore


class SpaceSaving:
    """Space Saving heavy-hitters summary.

    Parameters
    ----------
    capacity:
        Number of (item, count) slots.  The memory cost model charges
        2 cells (id + count) per slot, or 3 with ``track_error=True``.
    track_error:
        Also record each tracked item's maximum overestimation error
        (the count it inherited on insertion).
    """

    def __init__(self, capacity: int, track_error: bool = False):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.track_error = track_error
        # Min-store keyed by the count itself (counts are non-negative,
        # so priority=identity == abs).
        self._heap = TopKStore(capacity)
        self._errors: dict[int, float] = {} if track_error else {}
        self.total = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, item: int) -> bool:
        return item in self._heap

    def update(self, item: int, weight: float = 1.0) -> int | None:
        """Observe ``item`` with multiplicity ``weight``.

        Returns
        -------
        The identifier of the item evicted to make room, or ``None`` if
        no eviction happened.
        """
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.total += weight
        if item in self._heap:
            self._heap.add_delta(item, weight)
            return None
        if not self._heap.is_full:
            self._heap.push(item, weight)
            if self.track_error:
                self._errors[item] = 0.0
            return None
        # Replace the minimum: inherit its count (one in-place slot
        # overwrite; no other entry moves).
        min_count = self._heap.min_entry()[1]
        evicted, _ = self._heap.replace_min(item, min_count + weight)
        if self.track_error:
            self._errors.pop(evicted, None)
            self._errors[item] = min_count
        return evicted

    def count(self, item: int) -> float:
        """Estimated count for ``item`` (0.0 if untracked).

        For untracked items, 0 is a valid lower bound while ``min_count``
        is the upper bound; callers needing the upper bound should use
        :meth:`upper_bound`.
        """
        return self._heap.get(item, 0.0)

    def error(self, item: int) -> float:
        """Maximum overestimation error for a tracked item.

        Requires ``track_error=True``.
        """
        if not self.track_error:
            raise RuntimeError("construct with track_error=True to use error()")
        return self._errors.get(item, 0.0)

    def upper_bound(self, item: int) -> float:
        """Upper bound on the true count of ``item``."""
        if item in self._heap:
            return self._heap.value(item)
        if len(self._heap) < self.capacity or len(self._heap) == 0:
            return 0.0
        return self._heap.min_priority()

    def min_count(self) -> float:
        """The minimum tracked count (0 if not yet full)."""
        if not self._heap.is_full:
            return 0.0
        return self._heap.min_priority()

    def items(self) -> list[tuple[int, float]]:
        """All tracked (item, estimated count) pairs, arbitrary order."""
        return self._heap.items()

    def top(self, k: int | None = None) -> list[tuple[int, float]]:
        """The ``k`` highest-count (item, count) pairs, descending."""
        return self._heap.top(k)

    def heavy_hitters(self, phi: float) -> list[tuple[int, float]]:
        """Items with estimated frequency above ``phi * total``."""
        threshold = phi * self.total
        return [(i, c) for i, c in self.top() if c > threshold]
