"""The Misra-Gries (Frequent) heavy-hitters summary.

The counter-based alternative to Space Saving cited by the paper's
related work (Demaine et al. 2002; Karp et al. 2003): keep at most
``capacity`` counters; increment a tracked item's counter, start a new
counter if a slot is free, otherwise *decrement every counter* and drop
the zeros.

Guarantee: with ``capacity = 1/eps`` counters, each estimate
undercounts by at most ``eps * N`` (a one-sided *lower* bound — the
mirror image of Space Saving's upper bound), and every item with
frequency above ``N / (capacity + 1)`` survives.

Provided for completeness of the counter-algorithm family and used by
the ablation tests to cross-check the Space Saving baseline: on
identical streams the two algorithms must agree on the set of
high-frequency items.
"""

from __future__ import annotations


class MisraGries:
    """Misra-Gries summary with at most ``capacity`` counters.

    Parameters
    ----------
    capacity:
        Maximum number of simultaneously tracked items (the cost model
        charges 2 cells per slot: id + count).
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._counts: dict[int, float] = {}
        self.total = 0.0
        #: Cumulative amount removed by global decrements; the true
        #: count of item i lies in [count(i), count(i) + decremented].
        self.decremented = 0.0

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, item: int) -> bool:
        return item in self._counts

    def update(self, item: int, weight: float = 1.0) -> None:
        """Observe ``item`` with multiplicity ``weight``."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.total += weight
        counts = self._counts
        if item in counts:
            counts[item] += weight
            return
        if len(counts) < self.capacity:
            counts[item] = weight
            return
        # Decrement-all step: reduce every counter by the smallest of
        # (weight, current minimum); repeat until the new item either
        # claims a freed slot or its weight is absorbed.
        remaining = weight
        while remaining > 0:
            min_count = min(counts.values())
            dec = min(min_count, remaining)
            self.decremented += dec
            remaining -= dec
            for key in list(counts):
                counts[key] -= dec
                if counts[key] <= 1e-12:
                    del counts[key]
            if remaining > 0 and len(counts) < self.capacity:
                counts[item] = remaining
                self.decremented -= 0.0  # item admitted with leftovers
                break

    def count(self, item: int) -> float:
        """Lower-bound estimate of the item's true count (0 if untracked)."""
        return self._counts.get(item, 0.0)

    def upper_bound(self, item: int) -> float:
        """Upper bound: lower bound plus total global decrements."""
        return self.count(item) + self.decremented

    def items(self) -> list[tuple[int, float]]:
        """All tracked (item, lower-bound count) pairs."""
        return list(self._counts.items())

    def top(self, k: int | None = None) -> list[tuple[int, float]]:
        """The ``k`` highest-count pairs, descending."""
        ranked = sorted(self._counts.items(), key=lambda kv: -kv[1])
        return ranked if k is None else ranked[:k]

    def heavy_hitters(self, phi: float) -> list[tuple[int, float]]:
        """Items whose *upper bound* clears ``phi * total`` — no false
        negatives among true phi-heavy-hitters."""
        threshold = phi * self.total
        return [
            (item, count)
            for item, count in self.top()
            if count + self.decremented > threshold
        ]
