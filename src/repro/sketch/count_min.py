"""The Count-Min Sketch of Cormode & Muthukrishnan (2005).

Width ``w``, depth ``s``: each key hashes to one bucket per row (no
signs); the point estimate is the *minimum* across rows, which for
non-negative streams is a one-sided overestimate:
``v_i <= est_i <= v_i + eps * ||v||_1`` with width Theta(1/eps) and depth
Theta(log(d/delta)).

Used here for (a) the Count-Min Frequent Features classifier baseline and
(b) the paired-Count-Min relative-deltoid baseline of Fig. 10 (Cormode &
Muthukrishnan 2005a estimate per-item ratios from two CM sketches).

The ``conservative`` flag enables conservative update (Estan & Varghese),
an ablation the library offers beyond the paper: only buckets that equal
the current minimum estimate are raised, reducing overestimation for
skewed streams.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.family import HashFamily
from repro.heap.topk import TopKStore


class CountMinSketch:
    """Count-Min sketch for non-negative frequency estimation.

    Parameters
    ----------
    width:
        Buckets per row.
    depth:
        Number of rows.
    seed:
        Seed for the hash family.
    conservative:
        Enable conservative update (only meaningful for scalar,
        non-negative increments).
    track_heavy:
        If > 0, maintain a heap of the keys with the largest estimated
        counts.
    """

    def __init__(
        self,
        width: int,
        depth: int,
        seed: int = 0,
        conservative: bool = False,
        track_heavy: int = 0,
    ):
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.width = width
        self.depth = depth
        self.conservative = conservative
        self.family = HashFamily(width, depth, seed=seed)
        self.table = np.zeros((depth, width), dtype=np.float64)
        self.total = 0.0
        self.heavy: TopKStore | None = TopKStore(track_heavy) if track_heavy > 0 else None

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update_one(self, key: int, delta: float = 1.0) -> None:
        """Scalar fast path: add ``delta`` to one key's count.

        Equivalent to ``update(key, delta)`` for non-conservative
        sketches, with no NumPy per-call overhead (used by the paired-CM
        deltoid baseline, which updates one address per packet).
        """
        if delta < 0:
            raise ValueError("Count-Min requires non-negative increments")
        if self.conservative:
            self.update(key, delta)
            return
        self.total += delta
        for j in range(self.depth):
            bucket, _ = self.family.bucket_sign_one(key, j)
            self.table[j, bucket] += delta
        if self.heavy is not None:
            self.heavy.push(int(key), self.estimate_one(key))

    def update(self, keys: np.ndarray | int, deltas: np.ndarray | float = 1.0) -> None:
        """Add non-negative ``deltas`` to the counts of ``keys``."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        deltas = np.broadcast_to(
            np.asarray(deltas, dtype=np.float64), keys.shape
        ).copy()
        if np.any(deltas < 0):
            raise ValueError("Count-Min requires non-negative increments")
        self.total += float(deltas.sum())
        if self.conservative:
            self._conservative_update(keys, deltas)
        else:
            for j in range(self.depth):
                buckets = self.family.buckets(keys, j)
                np.add.at(self.table[j], buckets, deltas)
        if self.heavy is not None:
            for key, est in zip(keys.tolist(), self.estimate(keys).tolist()):
                self.heavy.push(int(key), est)

    def _conservative_update(self, keys: np.ndarray, deltas: np.ndarray) -> None:
        """Raise each key's buckets only up to (current estimate + delta)."""
        all_buckets = np.empty((self.depth, keys.size), dtype=np.int64)
        for j in range(self.depth):
            all_buckets[j] = self.family.buckets(keys, j)
        # Process keys one by one: conservative update is inherently
        # sequential (each update depends on the current estimate).
        for t in range(keys.size):
            cols = all_buckets[:, t]
            current = self.table[np.arange(self.depth), cols]
            target = current.min() + deltas[t]
            np.maximum(current, target, out=current)
            self.table[np.arange(self.depth), cols] = current

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self, keys: np.ndarray | int) -> np.ndarray:
        """Min-of-rows (one-sided) count estimates for ``keys``."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        rows = np.empty((self.depth, keys.size), dtype=np.float64)
        for j in range(self.depth):
            buckets = self.family.buckets(keys, j)
            rows[j] = self.table[j, buckets]
        return rows.min(axis=0)

    def estimate_one(self, key: int) -> float:
        """Count estimate for a single key (scalar fast path)."""
        best = np.inf
        for j in range(self.depth):
            bucket, _ = self.family.bucket_sign_one(key, j)
            value = self.table[j, bucket]
            if value < best:
                best = value
        return float(best)

    def heavy_hitters(self, k: int | None = None) -> list[tuple[int, float]]:
        """Top tracked keys by estimated count, descending."""
        if self.heavy is None:
            raise RuntimeError("construct with track_heavy > 0 to use heavy_hitters")
        out = self.heavy.top(k)
        return [(key, self.estimate_one(key)) for key, _ in out]

    def merge(self, other: "CountMinSketch") -> None:
        """Merge a sketch with identical (width, depth, seed) parameters."""
        if (self.width, self.depth, self.family.seed) != (
            other.width,
            other.depth,
            other.family.seed,
        ):
            raise ValueError("can only merge sketches with identical parameters")
        if self.conservative or other.conservative:
            raise ValueError("conservative-update sketches are not mergeable")
        self.table += other.table
        self.total += other.total
