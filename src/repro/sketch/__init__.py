"""Classical streaming-sketch substrate.

These are the frequency-oriented data structures the paper builds on and
compares against:

* :class:`~repro.sketch.count_sketch.CountSketch` — Charikar et al. 2002;
  the projection shape reused by the WM-Sketch (Lemma 1 recovery).
* :class:`~repro.sketch.count_min.CountMinSketch` — Cormode &
  Muthukrishnan 2005; used in the paired-CM relative-deltoid baseline
  (Fig. 10) and the Count-Min Frequent Features baseline.
* :class:`~repro.sketch.space_saving.SpaceSaving` — Metwally et al. 2005;
  the counter-based heavy-hitter algorithm behind the Space Saving
  Frequent Features baseline and the MacroBase-style explainer.
* :class:`~repro.sketch.reservoir.UniformReservoir` /
  :class:`~repro.sketch.reservoir.WeightedReservoir` — reservoir samplers
  used by Probabilistic Truncation (Algorithm 4) and the PMI unigram
  sampler (Section 8.3).
"""

from repro.sketch.count_min import CountMinSketch
from repro.sketch.count_sketch import CountSketch
from repro.sketch.reservoir import UniformReservoir, WeightedReservoir
from repro.sketch.space_saving import SpaceSaving

__all__ = [
    "CountSketch",
    "CountMinSketch",
    "SpaceSaving",
    "UniformReservoir",
    "WeightedReservoir",
]
