"""The Count-Sketch of Charikar, Chen & Farach-Colton (2002).

A Count-Sketch of width ``w`` and depth ``s`` maintains an ``s x w`` array
of counters.  Each key ``i`` hashes to one bucket per row (``h_j(i)``)
with a random sign (``sigma_j(i)``); increments are added to all ``s``
assigned buckets after sign-flipping, and the point estimate of a key is
the *median* across rows of the sign-corrected bucket values.

Lemma 1 (recovery guarantee): with width Theta(1/eps^2) and depth
Theta(log(d/delta)), the estimate vector satisfies
``max_i |x_i - est_i| <= eps * ||x||_2`` with probability 1 - delta.

This class is the direct substrate of the WM-Sketch: the WM-Sketch uses
the same array shape and the same query rule, but replaces the count
increments with sketched gradient-descent updates (Section 5.1).
"""

from __future__ import annotations

import numpy as np

from repro.hashing.family import HashFamily
from repro.heap.topk import TopKStore


class CountSketch:
    """Count-Sketch for approximate point queries over a count vector.

    Parameters
    ----------
    width:
        Buckets per row.
    depth:
        Number of rows (each with an independent hash pair).
    seed:
        Seed for the hash family.
    track_heavy:
        If > 0, maintain a heap of this capacity holding the keys with
        the largest estimated magnitude seen so far (the standard
        Count-Sketch + heap construction for heavy hitters).
    hash_kind:
        Forwarded to :class:`repro.hashing.family.HashFamily`.
    """

    def __init__(
        self,
        width: int,
        depth: int,
        seed: int = 0,
        track_heavy: int = 0,
        hash_kind: str = "tabulation",
    ):
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.width = width
        self.depth = depth
        self.family = HashFamily(width, depth, seed=seed, kind=hash_kind)
        self.table = np.zeros((depth, width), dtype=np.float64)
        self.heavy: TopKStore | None = TopKStore(track_heavy) if track_heavy > 0 else None
        self._total_updates = 0

    @property
    def size(self) -> int:
        """Total number of counters (width * depth)."""
        return self.width * self.depth

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, keys: np.ndarray | int, deltas: np.ndarray | float = 1.0) -> None:
        """Add ``deltas`` to the sketched counts of ``keys``.

        Parameters
        ----------
        keys:
            Key or array of keys.
        deltas:
            Scalar or per-key increments (default +1 per key, the classic
            frequent-items update).
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        deltas = np.broadcast_to(np.asarray(deltas, dtype=np.float64), keys.shape)
        for j in range(self.depth):
            buckets = self.family.buckets(keys, j)
            signs = self.family.signs(keys, j)
            np.add.at(self.table[j], buckets, signs * deltas)
        self._total_updates += keys.size
        if self.heavy is not None:
            for key, est in zip(keys.tolist(), self.estimate(keys).tolist()):
                self.heavy.push(int(key), est)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self, keys: np.ndarray | int) -> np.ndarray:
        """Median-of-rows point estimates for ``keys``.

        Returns a float64 array of the same length as ``keys`` (scalars
        are promoted to length-1 arrays).
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        rows = np.empty((self.depth, keys.size), dtype=np.float64)
        for j in range(self.depth):
            buckets = self.family.buckets(keys, j)
            signs = self.family.signs(keys, j)
            rows[j] = signs * self.table[j, buckets]
        return np.median(rows, axis=0)

    def estimate_one(self, key: int) -> float:
        """Point estimate for a single key."""
        return float(self.estimate(key)[0])

    def heavy_hitters(self, k: int | None = None) -> list[tuple[int, float]]:
        """Top tracked keys by estimated magnitude, descending.

        Requires ``track_heavy > 0`` at construction.
        """
        if self.heavy is None:
            raise RuntimeError("construct with track_heavy > 0 to use heavy_hitters")
        out = self.heavy.top(k)
        # Refresh estimates (heap values may be stale snapshots).
        return [(key, self.estimate_one(key)) for key, _ in out]

    # ------------------------------------------------------------------
    # Linear-map view (used by theory tests)
    # ------------------------------------------------------------------
    def project(self, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Apply the (unscaled) Count-Sketch matrix A to a sparse vector.

        Returns the flattened ``depth * width`` image ``A x`` without
        mutating the sketch state.  Used to check linearity properties.
        """
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        values = np.atleast_1d(np.asarray(values, dtype=np.float64))
        out = np.zeros((self.depth, self.width), dtype=np.float64)
        for j in range(self.depth):
            buckets = self.family.buckets(indices, j)
            signs = self.family.signs(indices, j)
            np.add.at(out[j], buckets, signs * values)
        return out.ravel()

    def merge(self, other: "CountSketch") -> None:
        """Merge another sketch built with identical (width, depth, seed).

        Count-Sketches are linear, so merging is elementwise addition.
        """
        if (self.width, self.depth, self.family.seed) != (
            other.width,
            other.depth,
            other.family.seed,
        ):
            raise ValueError("can only merge sketches with identical parameters")
        self.table += other.table
        self._total_updates += other._total_updates
