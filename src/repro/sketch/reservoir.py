"""Reservoir sampling.

Two variants are needed by the paper's methods:

* :class:`UniformReservoir` — classic Algorithm R.  Used by the streaming
  PMI estimator (Section 8.3) to approximate sampling from the unigram
  distribution: a uniform reservoir over the token stream is, at any
  time, an unbiased sample of the empirical unigram distribution.
* :class:`WeightedReservoir` — the A-Res scheme of Efraimidis &
  Spirakis: item ``i`` with weight ``w_i`` gets key ``u_i**(1/w_i)`` and
  the top-K keys are kept, yielding a sample where inclusion probability
  is proportional to weight.  Probabilistic Truncation (Algorithm 4)
  applies exactly this keying to model weights, with the paper's
  re-keying rule ``W[i] <- W[i]**(w_old / w_new)`` when a weight changes.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.heap.topk import TopKStore, identity


class UniformReservoir:
    """Uniform random sample of fixed capacity over a stream (Algorithm R).

    Parameters
    ----------
    capacity:
        Sample size.
    seed:
        Seed for the internal RNG.
    """

    def __init__(self, capacity: int, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = np.random.Generator(np.random.PCG64(seed))
        self._items: list = []
        self.n_seen = 0

    def __len__(self) -> int:
        return len(self._items)

    def add(self, item) -> None:
        """Observe one stream element."""
        self.n_seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        j = int(self._rng.integers(0, self.n_seen))
        if j < self.capacity:
            self._items[j] = item

    def extend(self, items: Iterable) -> None:
        """Observe a sequence of stream elements."""
        for item in items:
            self.add(item)

    def sample(self, n: int = 1) -> list:
        """Draw ``n`` items uniformly (with replacement) from the reservoir."""
        if not self._items:
            raise RuntimeError("cannot sample from an empty reservoir")
        idx = self._rng.integers(0, len(self._items), size=n)
        return [self._items[i] for i in idx]

    def contents(self) -> list:
        """A copy of the current reservoir contents."""
        return list(self._items)


class WeightedReservoir:
    """Weighted reservoir sample (A-Res keys, top-K by key).

    Each inserted item receives key ``u ** (1 / w)`` with
    ``u ~ Uniform(0, 1)``; the reservoir retains the ``capacity`` largest
    keys.  Larger weights give keys closer to 1 and hence higher
    retention probability.

    This class additionally supports the *re-keying* rule used by
    Probabilistic Truncation (Algorithm 4): when a retained item's weight
    changes from ``w_old`` to ``w_new``, its key is raised to the power
    ``w_old / w_new``, preserving the A-Res distribution.
    """

    def __init__(self, capacity: int, seed: int = 0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = np.random.Generator(np.random.PCG64(seed))
        # Min-store over keys (keys are in (0, 1), priority = identity;
        # the module-level helper keeps the summary picklable).
        self._heap = TopKStore(capacity, priority=identity)
        self.n_seen = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, item: int) -> bool:
        return item in self._heap

    def offer(self, item: int, weight: float) -> int | None:
        """Offer ``item`` with positive ``weight``; maybe admit it.

        Returns the identifier evicted to make room (or the offered item
        itself if it was not admitted), ``None`` if admitted without
        eviction or if the item was already present (in which case it is
        re-keyed as if freshly offered — callers wanting the Algorithm 4
        semantics should use :meth:`rekey` for weight changes instead).
        """
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.n_seen += 1
        u = float(self._rng.random())
        # Guard against u == 0.0 (log undefined / key 0).
        u = max(u, np.finfo(float).tiny)
        key = u ** (1.0 / weight)
        evicted = self._heap.push(item, key)
        if evicted is None:
            return None
        return evicted[0]

    def rekey(self, item: int, w_old: float, w_new: float) -> None:
        """Adjust a retained item's key after its weight changes.

        Applies ``key <- key ** (w_old / w_new)`` (Algorithm 4's
        ``W[i] <- W[i] ** |S_t[i] / S_{t+1}[i]|``).
        """
        if item not in self._heap:
            raise KeyError(item)
        if w_old <= 0 or w_new <= 0:
            raise ValueError("weights must be positive for rekeying")
        key = self._heap.value(item)
        self._heap.push(item, key ** (w_old / w_new))

    def key(self, item: int) -> float:
        """The current A-Res key of a retained item."""
        return self._heap.value(item)

    def remove(self, item: int) -> None:
        """Drop a retained item."""
        self._heap.remove(item)

    def items(self) -> list[int]:
        """Identifiers currently retained, arbitrary order."""
        return [k for k, _ in self._heap.items()]

    def min_key(self) -> float:
        """Smallest retained key (the eviction threshold when full)."""
        if len(self._heap) == 0:
            return 0.0
        return self._heap.min_priority()
