"""Resilience: deterministic fault injection, recovery, degradation.

The PS loop and serving layer are correctness-obsessed; this package
makes them *failure*-obsessed too, ahead of the real socket transport
that will make every failure mode here routine:

* :mod:`~repro.resilience.faults` — a seeded :class:`FaultPlan` of
  scheduled fault events (worker crashes, stalls, dropped / duplicated
  / corrupted wire payloads, failing publishes and flushes) consumed
  at named hook points in ``parallel/ps.py`` and ``serving/``.  Same
  plan, same seed, same faults — chaos runs are replayable and the
  chaos suite asserts exact outcomes (bit-identical tables), not just
  survival.
* :mod:`~repro.resilience.breaker` — a :class:`CircuitBreaker` with an
  injectable clock, wrapped around snapshot publication (and reusable
  for any transport call).
* :mod:`~repro.resilience.chaos` — the reusable chaos harness behind
  ``repro chaos`` and ``benchmarks/bench_resilience.py``: runs a
  seeded fault schedule against the PS loop in the data-linear regime
  and reports recovery telemetry plus bit-identity against the
  fault-free single-stream reference.

Recovery rests on three mechanisms living in the layers themselves:
CRC-checksummed wire payloads rejected before apply
(:class:`~repro.parallel.delta.PayloadCorruptionError`), per-worker
round sequence numbers deduping duplicated pushes, and heartbeat-based
respawn from the driver's state with deterministic shard replay
(:meth:`~repro.parallel.ps.PSWorker.recover`).
"""

from repro.resilience.breaker import CircuitBreaker, CircuitOpenError
from repro.resilience.faults import (
    FaultEvent,
    FaultPlan,
    InjectedCrash,
    InjectedFault,
)

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "FaultEvent",
    "FaultPlan",
    "InjectedCrash",
    "InjectedFault",
]
