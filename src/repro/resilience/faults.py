"""Seeded deterministic fault injection.

Failure is an *input* here, not an accident: a :class:`FaultPlan` is a
seeded schedule of fault events — worker crashes, stalls, dropped /
duplicated / corrupted wire payloads, failing publishes and flushes —
consumed at **named hook points** threaded through
:mod:`repro.parallel.ps` and :mod:`repro.serving`.  Two runs with the
same plan, seed, and workload replay the same faults at the same
points, so the chaos suite (``tests/test_resilience.py``) can assert
exact outcomes (bit-identical final tables, checker acceptance) rather
than "it didn't crash" — the fault-schedule discipline of eXtreme
Modelling applied to this codebase.

Hook points and the actions they honour
---------------------------------------
===============  =======================  ==========================
hook             fired by                 actions
===============  =======================  ==========================
``ps.round``     ``PSHarness`` before a   ``crash`` (kill worker),
                 worker trains a round    ``stall`` (slowdown, param
                                          = modelled seconds)
``ps.push.wire`` each push transmission   ``drop``, ``corrupt``,
                 attempt                  ``duplicate``
``ps.pull.wire`` each pull transmission   ``drop``, ``corrupt``
                 attempt
``serve.publish``  ``SnapshotManager``    ``fail`` (raise inside the
                   before copying state   publish critical section)
``serve.flush``  coalescer worker before  ``fail`` (raise inside the
                 the batched kernel call  flush handler)
===============  =======================  ==========================

Events match on the keyword context the hook supplies (``worker=``,
``round=``, ``op=``, ...): an event fires when every key it names
equals the fired context, and is consumed after ``times`` firings.
Injection sites own the interpretation — a matched ``crash`` raises
:class:`InjectedCrash`, wire actions transform the payload — and every
firing is appended to :attr:`FaultPlan.fired`, the raw material of the
``repro chaos`` recovery report.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "InjectedCrash",
    "InjectedFault",
]


class InjectedFault(RuntimeError):
    """An injected fault surfaced as an exception (``fail`` actions)."""

    def __init__(self, hook: str, action: str, ctx: dict):
        super().__init__(f"injected {action} at {hook} ({ctx})")
        self.hook = hook
        self.action = action
        self.ctx = ctx


class InjectedCrash(InjectedFault):
    """A worker-kill injection (``crash`` at ``ps.round``)."""


class FaultEvent:
    """One scheduled fault: fire ``action`` at ``hook`` whenever the
    fired context matches ``match``, at most ``times`` times."""

    __slots__ = ("hook", "action", "match", "times", "param")

    def __init__(self, hook: str, action: str, *,
                 times: int = 1, param: float | None = None,
                 match: dict | None = None):
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        self.hook = hook
        self.action = action
        self.match = dict(match or {})
        self.times = int(times)
        self.param = param

    def matches(self, hook: str, ctx: dict) -> bool:
        if self.times <= 0 or hook != self.hook:
            return False
        return all(k in ctx and ctx[k] == v for k, v in self.match.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultEvent({self.hook!r}, {self.action!r}, "
                f"match={self.match}, times={self.times})")


class FaultPlan:
    """A seeded, ordered schedule of :class:`FaultEvent`\\ s.

    The seed drives only the *content* of corruptions (which byte,
    which bit); *when* faults fire is fully determined by the event
    matches — so a plan is replayable and two identical runs observe
    identical faults.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self.events: list[FaultEvent] = []
        #: Every firing, in order: ``(hook, action, ctx)`` — the
        #: injection log the chaos report prints.
        self.fired: list[tuple[str, str, dict]] = []

    # -- schedule construction ----------------------------------------
    def add(self, hook: str, action: str, *, times: int = 1,
            param: float | None = None, **match) -> "FaultPlan":
        self.events.append(
            FaultEvent(hook, action, times=times, param=param, match=match)
        )
        return self

    def crash_worker(self, worker: int, round: int) -> "FaultPlan":
        """Kill ``worker`` as it begins global round ``round``."""
        return self.add("ps.round", "crash", worker=worker, round=round)

    def stall_worker(self, worker: int, round: int,
                     slowdown: float = 4.0) -> "FaultPlan":
        """Add ``slowdown`` modelled seconds to ``worker``'s schedule
        position from round ``round`` on (a straggler, not a death)."""
        return self.add("ps.round", "stall", param=float(slowdown),
                        worker=worker, round=round)

    def drop_push(self, worker: int, round: int,
                  times: int = 1) -> "FaultPlan":
        return self.add("ps.push.wire", "drop", times=times,
                        worker=worker, round=round)

    def duplicate_push(self, worker: int, round: int) -> "FaultPlan":
        return self.add("ps.push.wire", "duplicate",
                        worker=worker, round=round)

    def corrupt_push(self, worker: int, round: int,
                     times: int = 1) -> "FaultPlan":
        return self.add("ps.push.wire", "corrupt", times=times,
                        worker=worker, round=round)

    def drop_pull(self, worker: int, times: int = 1) -> "FaultPlan":
        return self.add("ps.pull.wire", "drop", times=times, worker=worker)

    def corrupt_pull(self, worker: int, times: int = 1) -> "FaultPlan":
        return self.add("ps.pull.wire", "corrupt", times=times,
                        worker=worker)

    def fail_publish(self, times: int = 1, **match) -> "FaultPlan":
        return self.add("serve.publish", "fail", times=times, **match)

    def fail_flush(self, times: int = 1, **match) -> "FaultPlan":
        return self.add("serve.flush", "fail", times=times, **match)

    # -- consumption at hook points ------------------------------------
    def next_event(self, hook: str, **ctx) -> FaultEvent | None:
        """Consume and return the first event matching ``(hook, ctx)``,
        or None.  At most one event fires per call — a retry loop that
        fires the hook once per attempt drains stacked events in
        schedule order."""
        for ev in self.events:
            if ev.matches(hook, ctx):
                ev.times -= 1
                self.fired.append((hook, ev.action, dict(ctx)))
                return ev
        return None

    def raise_if(self, hook: str, **ctx) -> None:
        """Raise for ``fail``/``crash`` events at exception-style hooks."""
        ev = self.next_event(hook, **ctx)
        if ev is None:
            return
        if ev.action == "crash":
            raise InjectedCrash(hook, ev.action, ctx)
        raise InjectedFault(hook, ev.action, ctx)

    # -- payload corruption --------------------------------------------
    def corrupt_payload(self, payload: tuple) -> tuple:
        """Return a copy of a wire tuple with one deterministic bit
        flipped in one array field (or a scalar perturbed when every
        array is empty).  The original tuple's arrays are never
        mutated — the sender retains a pristine copy to retransmit."""
        fields = list(payload)
        arrays = [
            i for i, f in enumerate(fields)
            if isinstance(f, np.ndarray) and f.nbytes > 0
        ]
        if arrays:
            idx = int(self.rng.choice(arrays))
            buf = fields[idx].copy()
            flat = buf.view(np.uint8).reshape(-1)
            pos = int(self.rng.integers(flat.size))
            flat[pos] ^= np.uint8(1 << int(self.rng.integers(8)))
            fields[idx] = buf
        else:
            nums = [i for i, f in enumerate(fields)
                    if isinstance(f, (int, float))]
            idx = int(self.rng.choice(nums))
            fields[idx] = fields[idx] + 1
        return tuple(fields)

    # -- reporting -----------------------------------------------------
    def remaining(self) -> int:
        """Scheduled firings not yet consumed."""
        return sum(max(0, ev.times) for ev in self.events)

    def report(self) -> dict:
        """Counts per fired action plus the un-fired residue."""
        by_action: dict[str, int] = {}
        for _, action, _ in self.fired:
            by_action[action] = by_action.get(action, 0) + 1
        return {
            "seed": self.seed,
            "fired": len(self.fired),
            "by_action": by_action,
            "unfired": self.remaining(),
        }
