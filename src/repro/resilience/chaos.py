"""The chaos harness: seeded fault schedules vs the fault-free truth.

This module is the executable core of the resilience story — the code
behind ``repro chaos`` and ``benchmarks/bench_resilience.py``.  It runs
the PS loop under a :class:`~repro.resilience.faults.FaultPlan` in the
**data-linear regime** (constant-gradient loss, ``lambda = 0``, dyadic
learning rate), where every example's update is an exactly-representable
float64 addend independent of model state.  Sums of such addends are
order-independent, so the fault-free single-stream table is not a
tolerance band but the *bit-exact* answer — and any recovery bug
(a lost round, a double-applied duplicate, a corrupt chunk slipped past
the CRC) shows up as a hard ``np.array_equal`` failure, not a drift.

Why each fault family still converges to that answer:

* **stall** only reorders the modelled schedule — exact sums commute;
* **duplicate push** is dropped whole by the driver's per-worker round
  sequence numbers (at-least-once delivery, idempotent apply);
* **corrupt payload** is rejected by the CRC before any state is
  touched, and the pristine copy is retransmitted after backoff;
* **crash** loses only the in-flight round's never-pushed local
  updates; the respawned replica pulls the driver's full state and
  replays exactly that round onward from its durable ``rounds_done``
  cursor, so every shard example still lands exactly once.

:func:`run_chaos` additionally validates the *serving* side of the
faulty run: it reconstructs the replay stream in push order from the
harness history and hands the publish log + read records (captured live
at each publish) to
:func:`~repro.serving.checker.check_snapshot_consistency` — every
snapshot published mid-fault must be a state sequential training could
have produced.
"""

from __future__ import annotations

import numpy as np

from repro.core.wm_sketch import WMSketch
from repro.data.batch import SparseBatch
from repro.data.partition import partition_batch
from repro.data.synthetic import SyntheticStream
from repro.learning.losses import Loss
from repro.learning.schedules import ConstantSchedule
from repro.parallel.ps import PSHarness
from repro.resilience.faults import FaultPlan
from repro.serving.checker import check_snapshot_consistency
from repro.serving.client import ReadRecord
from repro.serving.server import scalar_answer
from repro.telemetry import hooks

__all__ = ["ConstGradLoss", "default_chaos_plan", "run_chaos"]


class ConstGradLoss(Loss):
    """``loss(tau) = -tau`` — the data-linear probe loss.

    ``dloss == -1`` everywhere, so each example's update is
    ``eta * y * R x``: independent of the current weights, and with a
    dyadic ``eta`` and unit-magnitude values, exactly representable in
    float64.  Not a statistical loss (it is unbounded below) — it
    exists to make parallel-training algebra *exact* so schedules,
    merges, and fault recovery can be asserted bit-for-bit.
    ``kernel_id`` stays ``None``: models take the unfused per-kernel
    chain — same arithmetic, no fused-path special cases.
    """

    smoothness = 0.0
    lipschitz = 1.0

    def value(self, tau: float) -> float:
        return -tau

    def dloss(self, tau: float) -> float:
        return -1.0


def default_chaos_plan(seed: int = 0, *, n_workers: int = 4,
                       n_rounds: int = 2) -> FaultPlan:
    """One seeded schedule covering every fault family the loop honours.

    Which worker suffers what (and at which round, bounded by
    ``n_rounds``) is drawn from the plan's own rng, so the schedule —
    like the corruption content — is a pure function of ``seed``.
    Every family lands on a *distinct* worker where the fleet allows,
    keeping the fault interactions interpretable in the report.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_rounds < 1:
        raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
    plan = FaultPlan(seed)
    order = plan.rng.permutation(n_workers)

    def worker(i: int) -> int:
        return int(order[i % n_workers])

    def rnd() -> int:
        return int(plan.rng.integers(n_rounds))

    plan.crash_worker(worker(0), rnd())
    plan.stall_worker(worker(1), rnd(), slowdown=3.0)
    plan.duplicate_push(worker(2), rnd())
    plan.corrupt_push(worker(3), rnd())
    plan.drop_push(worker(0), rnd())
    plan.corrupt_pull(worker(1))
    plan.drop_pull(worker(2))
    return plan


def _zipf_examples(n: int, d: int, seed: int):
    """The chaos workload: the same Zipf-feature synthetic stream the
    data-linear test suites train on."""
    return SyntheticStream(
        d=d, n_signal=50, avg_nnz=15, seed=seed
    ).materialize(n)


def run_chaos(
    *,
    plan: FaultPlan | None = None,
    seed: int = 0,
    n_workers: int = 4,
    staleness: int = 0,
    n_examples: int = 600,
    d: int = 1200,
    width: int = 64,
    depth: int = 4,
    sync_every: int = 50,
    batch_size: int = 50,
    publish_every: int = 1,
    heartbeat_timeout: int = 2,
    learning_rate: float = 0.0625,
    check_consistency: bool = True,
    query_keys: int = 16,
    speeds=None,
) -> dict:
    """Run one seeded chaos experiment and report what recovery cost.

    Three runs-worth of evidence in one call:

    1. **fault-free reference** — single-stream training on the same
       example order (the bit-exact ground truth in this regime);
    2. **faulty PS run** — the same examples through :class:`PSHarness`
       with ``plan`` injected at the ``ps.round`` / ``ps.push.wire`` /
       ``ps.pull.wire`` hook points;
    3. **consistency check** — the faulty run's publish log and
       at-publish read records validated by the black-box checker
       against a sequential re-execution of the pushes in schedule
       order.

    Returns a JSON-able report: ``bit_identical`` (the headline),
    ``max_abs_diff``, the fault schedule's firing report, recovery
    telemetry (crash / recover / retry / dedup / corrupt-reject
    counters, recovery wall-seconds), the harness fault events, and the
    checker's counts (or the violation message).

    The default plan (:func:`default_chaos_plan`) assumes at least two
    rounds per worker: ``n_examples / n_workers`` must comfortably
    exceed ``2 * sync_every`` (the defaults give ~3 rounds each).
    """
    if plan is None:
        plan = default_chaos_plan(seed, n_workers=n_workers)
    factory_kwargs = dict(
        width=width,
        depth=depth,
        loss=ConstGradLoss(),
        lambda_=0.0,
        learning_rate=ConstantSchedule(learning_rate),
        seed=9,
        heap_capacity=0,
    )

    def make_model():
        return WMSketch(**factory_kwargs)

    examples = _zipf_examples(n_examples, d, seed + 31)
    batch = SparseBatch.from_examples(examples)

    # 1. Fault-free single-stream reference: the exact answer.
    single = make_model()
    single.fit(examples, batch_size=batch_size)

    # 2. The faulty run.  Read records are captured *live* at each
    # publish (the manager only retains the latest snapshot), giving
    # the checker real mid-fault reads, not just the final state.
    harness = PSHarness(
        WMSketch, factory_kwargs,
        n_workers=n_workers, staleness=staleness, sync_every=sync_every,
        batch_size=batch_size, seed=seed, publish_every=publish_every,
        fault_plan=plan, heartbeat_timeout=heartbeat_timeout,
        speeds=speeds,
    )
    read_rng = np.random.default_rng(seed + 7)
    records: list[ReadRecord] = []

    def _capture(version: int, t: int, seconds: float) -> None:
        mgr = harness.manager
        if mgr is None:  # version 0 publishes during manager construction
            return
        snap = mgr.current
        keys = read_rng.integers(0, d, size=query_keys, dtype=np.int64)
        records.append(ReadRecord(
            op="query",
            payload=keys,
            result=scalar_answer(snap.model, "query", keys),
            version=snap.version,
        ))

    hooks.on_publish.append(_capture)
    try:
        model = harness.fit(batch)
    finally:
        hooks.on_publish.remove(_capture)

    bit_identical = bool(np.array_equal(model.table, single.table))
    max_abs_diff = float(np.max(np.abs(
        np.asarray(model.table, dtype=np.float64)
        - np.asarray(single.table, dtype=np.float64)
    ))) if np.shape(model.table) == np.shape(single.table) else float("inf")

    # 3. Black-box consistency over the faulty run's publish log: the
    # replay stream is the per-round shard windows in the exact order
    # the schedule pushed them (history carries 1-based round numbers).
    consistency: dict = {"checked": False}
    if check_consistency and harness.manager is not None:
        shards = partition_batch(batch, n_workers, seed=seed)
        windows = [list(sh.windows(sync_every)) for sh in shards]
        replay = [
            windows[row["worker"]][row["round"] - 1]
            for row in harness.history
        ]
        try:
            result = check_snapshot_consistency(
                make_model, replay, harness.manager.publish_log, [records],
            )
            consistency = {"checked": True, "ok": True, **result}
        except AssertionError as exc:
            consistency = {"checked": True, "ok": False, "error": str(exc)}

    stats = harness.stats()
    counters = stats["counters"]
    recover_hist = stats["histograms"].get("ps.recover.wall_seconds", {})
    return {
        "seed": seed,
        "staleness": staleness,
        "n_workers": n_workers,
        "n_examples": n_examples,
        "sync_every": sync_every,
        "bit_identical": bit_identical,
        "max_abs_diff": max_abs_diff,
        "faults": plan.report(),
        "events": list(harness.events),
        "counters": {
            "crashes": counters.get("ps.crash.count", 0),
            "recoveries": counters.get("ps.recover.count", 0),
            "heartbeats_missed": counters.get("ps.heartbeat.missed", 0),
            "retries": counters.get("ps.retry.count", 0),
            "wire_dropped": counters.get("ps.wire.dropped", 0),
            "corrupt_rejected": counters.get("ps.wire.corrupt_rejected", 0),
            "duplicates_deduped": counters.get("ps.push.duplicates", 0),
            "pushes_applied": counters.get("ps.push.count", 0),
        },
        "recovery_seconds": {
            "count": recover_hist.get("count", 0),
            "sum": recover_hist.get("sum", 0.0),
            "max": recover_hist.get("max"),
        },
        "publishes": len(harness.manager.publish_log)
        if harness.manager is not None else 0,
        "reads_recorded": len(records),
        "consistency": consistency,
        "modeled_wall_seconds": harness.modeled_wall_seconds(),
    }
