"""A small circuit breaker for repeatedly-failing critical sections.

Wraps an operation that can fail transiently (snapshot publication,
a future transport send) with the classic three-state automaton:

* **closed** — calls flow; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the
  breaker trips: :meth:`allow` answers False (callers fail fast with
  :class:`CircuitOpenError` instead of re-running a doomed operation)
  until ``reset_timeout`` seconds pass.
* **half-open** — after the timeout, exactly one probe call is let
  through; its success closes the breaker, its failure re-opens it
  (and restarts the timeout).

The clock is injectable so tests drive the state machine without
sleeping, and every transition lands in the optional telemetry
registry (``<name>.trips`` / ``<name>.rejected`` / ``<name>.probes``).
"""

from __future__ import annotations

import threading
import time

__all__ = ["CircuitBreaker", "CircuitOpenError"]


class CircuitOpenError(RuntimeError):
    """Fail-fast rejection: the breaker is open, the call never ran."""


class CircuitBreaker:
    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_timeout: float = 1.0,
        clock=time.monotonic,
        registry=None,
        name: str = "breaker",
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        if registry is not None:
            self._m_trips = registry.counter(f"{name}.trips")
            self._m_rejected = registry.counter(f"{name}.rejected")
            self._m_probes = registry.counter(f"{name}.probes")
        else:
            self._m_trips = self._m_rejected = self._m_probes = None

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  Moving open -> half-open
        consumes the single probe slot, so concurrent callers see at
        most one True until the probe reports back."""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at >= self.reset_timeout:
                    self._state = "half_open"
                    if self._m_probes is not None:
                        self._m_probes.inc()
                    return True
                if self._m_rejected is not None:
                    self._m_rejected.inc()
                return False
            # half_open: a probe is already in flight.
            if self._m_rejected is not None:
                self._m_rejected.inc()
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            tripping = (
                self._state == "half_open"
                or (self._state == "closed"
                    and self._failures >= self.failure_threshold)
            )
            if tripping:
                self._state = "open"
                self._opened_at = self._clock()
                if self._m_trips is not None:
                    self._m_trips.inc()

    def call(self, fn, *args, **kwargs):
        """Run ``fn`` under the breaker (convenience wrapper)."""
        if not self.allow():
            raise CircuitOpenError(
                f"{self.name} is open after {self._failures} consecutive "
                f"failures; retry after {self.reset_timeout:.3g}s"
            )
        try:
            result = fn(*args, **kwargs)
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result
