"""The common interface of all memory-budgeted streaming classifiers.

Every method in the paper's evaluation — WM-Sketch, AWM-Sketch, the
truncation baselines, the frequent-feature baselines, feature hashing and
the unconstrained reference — implements :class:`StreamingClassifier`:

* ``update(example)`` — one online-gradient step on a labelled example;
* ``predict_margin(example)`` — the current model's raw score ``w . x``;
* ``estimate_weights(indices)`` — point estimates of individual weights
  of the (conceptual) uncompressed model;
* ``top_weights(k)`` — the k heaviest (feature, weight) estimates;
* ``memory_cost_bytes`` — the method's footprint under the paper's cost
  model (Section 7.1: 4 bytes per feature identifier, feature weight,
  or auxiliary value).

:func:`run_stream` drives a classifier over a stream with
progressive-validation error accounting (predict-then-update, Blum et
al. 1999), which is exactly the "online classification error rate" of
Section 7.3.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.data.sparse import SparseExample

#: Bytes charged per feature identifier, weight, or auxiliary value
#: (Section 7.1's memory cost model).
CELL_BYTES = 4


class StreamingClassifier(ABC):
    """Abstract base for online linear classifiers over sparse streams."""

    #: Number of updates performed so far.
    t: int = 0

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    @abstractmethod
    def predict_margin(self, x: SparseExample) -> float:
        """The raw score ``w . x`` of the current model."""

    @abstractmethod
    def update(self, x: SparseExample) -> None:
        """One online learning step on a labelled example."""

    @abstractmethod
    def estimate_weights(self, indices: np.ndarray) -> np.ndarray:
        """Point estimates of the given features' weights."""

    @abstractmethod
    def top_weights(self, k: int) -> list[tuple[int, float]]:
        """The ``k`` heaviest (feature id, estimated weight) pairs,
        sorted by descending magnitude."""

    @property
    @abstractmethod
    def memory_cost_bytes(self) -> int:
        """Footprint under the 4-bytes-per-cell cost model."""

    # ------------------------------------------------------------------
    # Derived conveniences
    # ------------------------------------------------------------------
    def predict(self, x: SparseExample) -> int:
        """The predicted label sign(w . x) in {-1, +1}.

        Ties (margin exactly 0) resolve to +1, matching the paper's
        ``sign`` convention (+1 for non-negative inner product).
        """
        return 1 if self.predict_margin(x) >= 0.0 else -1

    def estimate_weight(self, index: int) -> float:
        """Point estimate of a single feature's weight."""
        return float(
            self.estimate_weights(np.asarray([index], dtype=np.int64))[0]
        )

    def fit(self, stream: Iterable[SparseExample]) -> "StreamingClassifier":
        """Consume a stream (single pass) without error accounting."""
        for example in stream:
            self.update(example)
        return self


@dataclass
class OnlineErrorTracker:
    """Progressive-validation error accounting.

    Records, for each observed example, whether the prediction made
    *before* the model update was correct; the online error rate is the
    cumulative mistake count over iterations (Section 7.3).
    """

    mistakes: int = 0
    n: int = 0
    #: Cumulative error after each step (recorded at ``checkpoint_every``
    #: intervals as (t, error) pairs for learning-curve plots).
    curve: list[tuple[int, float]] = field(default_factory=list)
    checkpoint_every: int = 1000

    def record(self, predicted: int, actual: int) -> None:
        """Record one prediction/label pair."""
        self.n += 1
        if predicted != actual:
            self.mistakes += 1
        if self.checkpoint_every and self.n % self.checkpoint_every == 0:
            self.curve.append((self.n, self.error_rate))

    @property
    def error_rate(self) -> float:
        """Cumulative mistakes / examples seen (0.0 before any example)."""
        if self.n == 0:
            return 0.0
        return self.mistakes / self.n


def run_stream(
    classifier: StreamingClassifier,
    stream: Iterable[SparseExample],
    tracker: OnlineErrorTracker | None = None,
) -> OnlineErrorTracker:
    """Drive ``classifier`` over ``stream`` with predict-then-update.

    Returns the (possibly caller-provided) tracker holding the online
    error rate.
    """
    if tracker is None:
        tracker = OnlineErrorTracker()
    for example in stream:
        prediction = classifier.predict(example)
        tracker.record(prediction, example.label)
        classifier.update(example)
    return tracker
