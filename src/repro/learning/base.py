"""The common interface of all memory-budgeted streaming classifiers.

Every method in the paper's evaluation — WM-Sketch, AWM-Sketch, the
truncation baselines, the frequent-feature baselines, feature hashing and
the unconstrained reference — implements :class:`StreamingClassifier`:

* ``update(example)`` — one online-gradient step on a labelled example;
* ``predict_margin(example)`` — the current model's raw score ``w . x``;
* ``estimate_weights(indices)`` — point estimates of individual weights
  of the (conceptual) uncompressed model;
* ``top_weights(k)`` — the k heaviest (feature, weight) estimates;
* ``memory_cost_bytes`` — the method's footprint under the paper's cost
  model (Section 7.1: 4 bytes per feature identifier, feature weight,
  or auxiliary value).

:func:`run_stream` drives a classifier over a stream with
progressive-validation error accounting (predict-then-update, Blum et
al. 1999), which is exactly the "online classification error rate" of
Section 7.3.

Batched streaming
-----------------
``fit_batch`` / ``predict_batch`` / ``fit_stream`` form the batched
engine: a classifier consumes :class:`~repro.data.batch.SparseBatch`
windows instead of one example at a time, which lets vectorized
implementations hash and gather whole batches at once.  The contract is
*sequential equivalence*: ``fit_batch`` must leave the classifier in the
same state as updating on the batch's examples in order, and must return
the pre-update margins (what ``predict_margin`` would have said just
before each example's own update) so progressive validation comes for
free.  The defaults here implement that contract by plain iteration;
hot classifiers override ``fit_batch`` with vectorized kernels.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.data.batch import SparseBatch, iter_batches
from repro.data.sparse import SparseExample
from repro.telemetry.hooks import hooks as _hooks

#: Bytes charged per feature identifier, weight, or auxiliary value
#: (Section 7.1's memory cost model).
CELL_BYTES = 4


def sum_merge_scaled_tables(target, others) -> None:
    """Shared sum-merge body for lazily-scaled linear tables.

    Both the Count-Sketch classifiers and feature hashing store
    ``scaled state = _scale * table``; merging sums those states by
    folding each model's lazy scale into its raw table (one
    exactly-rounded elementwise product per model) and accumulating in
    donor order — the merged scaled table is bit-for-bit
    ``sum_i(scale_i * table_i)`` evaluated left to right.  ``t`` and
    ``merged_from`` accumulate.  Compatibility checks are the caller's
    responsibility (they differ per class).
    """
    target.table *= target._scale
    target._scale = 1.0
    total = target.merged_from
    for other in others:
        target.table += other._scale * other.table
        target.t += other.t
        total += other.merged_from
    target.merged_from = total


class StreamingClassifier(ABC):
    """Abstract base for online linear classifiers over sparse streams."""

    #: Number of updates performed so far.
    t: int = 0

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    @abstractmethod
    def predict_margin(self, x: SparseExample) -> float:
        """The raw score ``w . x`` of the current model."""

    @abstractmethod
    def update(self, x: SparseExample) -> None:
        """One online learning step on a labelled example."""

    @abstractmethod
    def estimate_weights(self, indices: np.ndarray) -> np.ndarray:
        """Point estimates of the given features' weights."""

    @abstractmethod
    def top_weights(self, k: int) -> list[tuple[int, float]]:
        """The ``k`` heaviest (feature id, estimated weight) pairs,
        sorted by descending magnitude."""

    @property
    @abstractmethod
    def memory_cost_bytes(self) -> int:
        """Footprint under the 4-bytes-per-cell cost model."""

    # ------------------------------------------------------------------
    # Derived conveniences
    # ------------------------------------------------------------------
    def predict(self, x: SparseExample) -> int:
        """The predicted label sign(w . x) in {-1, +1}.

        Ties (margin exactly 0) resolve to +1, matching the paper's
        ``sign`` convention (+1 for non-negative inner product).
        """
        return 1 if self.predict_margin(x) >= 0.0 else -1

    def estimate_weight(self, index: int) -> float:
        """Point estimate of a single feature's weight."""
        return float(
            self.estimate_weights(np.asarray([index], dtype=np.int64))[0]
        )

    def fit(
        self,
        stream: Iterable[SparseExample],
        batch_size: int | None = None,
    ) -> "StreamingClassifier":
        """Consume a stream (single pass) without error accounting.

        With ``batch_size`` set, the stream is chunked into
        :class:`~repro.data.batch.SparseBatch` windows and driven through
        :meth:`fit_batch` — same final state, fewer Python-level
        per-example round trips for classifiers with vectorized kernels.
        """
        if batch_size is None:
            for example in stream:
                self.update(example)
        else:
            for batch in iter_batches(stream, batch_size):
                self.fit_batch(batch)
        return self

    # ------------------------------------------------------------------
    # Batched streaming engine
    # ------------------------------------------------------------------
    def predict_batch(self, batch: SparseBatch) -> np.ndarray:
        """Margins ``w . x`` for every example of a batch (read-only).

        The default delegates to :meth:`predict_margin` per example;
        vectorized classifiers override it.
        """
        margins = np.empty(len(batch), dtype=np.float64)
        for i, ex in enumerate(batch):
            margins[i] = self.predict_margin(ex)
        return margins

    def fit_batch(self, batch: SparseBatch) -> np.ndarray:
        """Update on every example of a batch, in stream order.

        Returns
        -------
        numpy.ndarray
            The *pre-update* margin of each example — the prediction the
            model would have made immediately before that example's own
            update, exactly as in predict-then-update driving.

        The default implementation iterates; it is the reference
        semantics that every vectorized override must reproduce (state
        and margins alike).
        """
        margins = np.empty(len(batch), dtype=np.float64)
        for i, ex in enumerate(batch):
            margins[i] = self.predict_margin(ex)
            self.update(ex)
        return margins

    def fit_stream(
        self,
        stream: Iterable[SparseExample],
        batch_size: int = 256,
        tracker: "OnlineErrorTracker | None" = None,
    ) -> "OnlineErrorTracker":
        """Batched predict-then-update pass with progressive validation.

        The batched analogue of :func:`run_stream`: the stream is chunked
        into batches, each batch is consumed by :meth:`fit_batch`, and
        the returned pre-update margins feed the error tracker — so the
        progressive-validation error equals the per-example path's.
        """
        if tracker is None:
            tracker = OnlineErrorTracker()
        for batch in iter_batches(stream, batch_size):
            if _hooks.on_batch_end:
                t0 = time.perf_counter()
                margins = self.fit_batch(batch)
                _hooks.batch_end(self, len(batch), time.perf_counter() - t0)
            else:
                margins = self.fit_batch(batch)
            for m, y in zip(margins.tolist(), batch.labels.tolist()):
                tracker.record(1 if m >= 0.0 else -1, y)
        return tracker


@dataclass
class OnlineErrorTracker:
    """Progressive-validation error accounting.

    Records, for each observed example, whether the prediction made
    *before* the model update was correct; the online error rate is the
    cumulative mistake count over iterations (Section 7.3).
    """

    mistakes: int = 0
    n: int = 0
    #: Cumulative error after each step (recorded at ``checkpoint_every``
    #: intervals as (t, error) pairs for learning-curve plots).
    curve: list[tuple[int, float]] = field(default_factory=list)
    checkpoint_every: int = 1000

    def record(self, predicted: int, actual: int) -> None:
        """Record one prediction/label pair."""
        self.n += 1
        if predicted != actual:
            self.mistakes += 1
        if self.checkpoint_every and self.n % self.checkpoint_every == 0:
            self.curve.append((self.n, self.error_rate))

    @property
    def error_rate(self) -> float:
        """Cumulative mistakes / examples seen (0.0 before any example)."""
        if self.n == 0:
            return 0.0
        return self.mistakes / self.n


def run_stream(
    classifier: StreamingClassifier,
    stream: Iterable[SparseExample],
    tracker: OnlineErrorTracker | None = None,
) -> OnlineErrorTracker:
    """Drive ``classifier`` over ``stream`` with predict-then-update.

    Returns the (possibly caller-provided) tracker holding the online
    error rate.
    """
    if tracker is None:
        tracker = OnlineErrorTracker()
    for example in stream:
        prediction = classifier.predict(example)
        tracker.record(prediction, example.label)
        classifier.update(example)
    return tracker
