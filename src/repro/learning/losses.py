"""Margin-based convex losses for binary linear classification.

Every loss is a function of the margin ``tau = y * (w . x)`` (Section 4,
Eq. 1).  Besides the value and derivative, each loss exposes the two
constants the theoretical analysis depends on:

* ``smoothness`` — the beta in beta-strong smoothness w.r.t. ``|.|``
  (Theorems 1-2 require finite beta; the plain hinge has beta = inf and
  is provided for completeness / ablations only).
* ``lipschitz`` — the H bounding ``|loss'(tau)|`` (Theorem 2).

The derivative convention matches Algorithm 1: ``dloss(tau)`` returns
``d loss / d tau``, so the gradient of ``loss(y z^T R x)`` w.r.t. ``z``
is ``y * dloss(y z^T R x) * R x``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


class Loss(ABC):
    """A differentiable (a.e.) convex margin loss."""

    #: Strong-smoothness constant beta (inf if not smooth).
    smoothness: float = math.inf
    #: Lipschitz constant H of the derivative's magnitude.
    lipschitz: float = math.inf
    #: Integer id the fused update kernels use to select the derivative
    #: formula inside a single backend call (see
    #: :mod:`repro.kernels.api`).  ``None`` marks a loss the kernels do
    #: not know — models then transparently fall back to the unfused
    #: per-kernel chain, so custom losses keep working unchanged.
    kernel_id: int | None = None
    #: Scalar parameter forwarded to the fused kernels alongside
    #: :attr:`kernel_id` (only the smoothed hinge uses it, for gamma).
    kernel_param: float = 0.0

    @abstractmethod
    def value(self, tau: float) -> float:
        """The loss at margin ``tau``."""

    @abstractmethod
    def dloss(self, tau: float) -> float:
        """The derivative d loss / d tau at ``tau``."""

    def predict_probability(self, margin: float) -> float:
        """P(y = +1 | margin), when the loss has a probabilistic reading.

        Only the logistic loss overrides this; other losses raise.
        """
        raise NotImplementedError(f"{type(self).__name__} is not probabilistic")


class LogisticLoss(Loss):
    """loss(tau) = log(1 + exp(-tau)) — logistic regression.

    beta = 1 (the paper notes beta = 1 for the logistic loss; the second
    derivative is at most 1/4, so any beta >= 1/4 works — we report the
    paper's constant), H = 1.
    """

    smoothness = 1.0
    lipschitz = 1.0
    kernel_id = 0

    def value(self, tau: float) -> float:
        # log(1 + e^-tau), stable for both signs of tau.
        if tau >= 0:
            return math.log1p(math.exp(-tau))
        return -tau + math.log1p(math.exp(tau))

    def dloss(self, tau: float) -> float:
        # -sigmoid(-tau) = -1 / (1 + e^tau)
        if tau >= 0:
            e = math.exp(-tau)
            return -e / (1.0 + e)
        return -1.0 / (1.0 + math.exp(tau))

    def predict_probability(self, margin: float) -> float:
        """The logistic link: P(y=+1 | margin) = sigmoid(margin)."""
        if margin >= 0:
            return 1.0 / (1.0 + math.exp(-margin))
        e = math.exp(margin)
        return e / (1.0 + e)


class SmoothedHingeLoss(Loss):
    """Quadratically-smoothed hinge loss (close relative of linear SVM).

    ::

        loss(tau) = 0                      if tau >= 1
                  = (1 - tau)^2 / (2 g)    if 1 - g <= tau < 1
                  = 1 - tau - g / 2        if tau < 1 - g

    with smoothing parameter ``g`` (gamma).  beta = 1/g, H = 1.  At
    ``g = 1`` this is the standard smooth hinge with beta = 1, matching
    the paper's "smoothed versions of the hinge loss ... beta = 1".
    """

    kernel_id = 1

    def __init__(self, gamma: float = 1.0):
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.gamma = gamma
        self.smoothness = 1.0 / gamma
        self.lipschitz = 1.0
        self.kernel_param = gamma

    def value(self, tau: float) -> float:
        if tau >= 1.0:
            return 0.0
        if tau >= 1.0 - self.gamma:
            return (1.0 - tau) ** 2 / (2.0 * self.gamma)
        return 1.0 - tau - self.gamma / 2.0

    def dloss(self, tau: float) -> float:
        if tau >= 1.0:
            return 0.0
        if tau >= 1.0 - self.gamma:
            return (tau - 1.0) / self.gamma
        return -1.0


class HingeLoss(Loss):
    """loss(tau) = max(0, 1 - tau) — not smooth (beta = inf).

    Included for ablations; the recovery theory does not cover it, and
    the subgradient at the kink is taken to be -1.
    """

    smoothness = math.inf
    lipschitz = 1.0
    kernel_id = 2

    def value(self, tau: float) -> float:
        return max(0.0, 1.0 - tau)

    def dloss(self, tau: float) -> float:
        return -1.0 if tau <= 1.0 else 0.0


class SquaredLoss(Loss):
    """loss(tau) = (1 - tau)^2 / 2 — least-squares classification.

    beta = 1, but the derivative is unbounded (H = inf), so Theorem 2's
    online bound does not apply without clipping.
    """

    smoothness = 1.0
    lipschitz = math.inf
    kernel_id = 3

    def value(self, tau: float) -> float:
        return 0.5 * (1.0 - tau) ** 2

    def dloss(self, tau: float) -> float:
        return tau - 1.0
