"""Learning-rate schedules for online gradient descent.

The paper uses an initial learning rate ``eta_0 = 0.1`` across all
experiments (Section 7.1) with OGD.  The classic choices are provided;
all are callables ``schedule(t) -> eta_t`` with ``t`` counted from 0.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np


class Schedule(ABC):
    """A learning-rate schedule: ``eta_t = schedule(t)``."""

    @abstractmethod
    def __call__(self, t: int) -> float:
        """The learning rate for step ``t`` (0-indexed)."""

    def many(self, t0: int, n: int) -> list[float]:
        """``[schedule(t0), ..., schedule(t0 + n - 1)]`` in one call.

        Batched update kernels precompute a window of learning rates;
        overrides must return *bit-identical* floats to per-``t`` calls
        (IEEE ``sqrt`` and division are exactly rounded, so vectorized
        NumPy evaluation qualifies).
        """
        return [self(t) for t in range(t0, t0 + n)]


class ConstantSchedule(Schedule):
    """eta_t = eta0."""

    def __init__(self, eta0: float = 0.1):
        if eta0 <= 0:
            raise ValueError(f"eta0 must be positive, got {eta0}")
        self.eta0 = eta0

    def __call__(self, t: int) -> float:
        return self.eta0

    def many(self, t0: int, n: int) -> list[float]:
        return [self.eta0] * n


class InverseSqrtSchedule(Schedule):
    """eta_t = eta0 / sqrt(1 + t) — the standard OGD rate for convex losses.

    This is the default across the library, matching the O(1/sqrt(T))
    regret bound invoked in the proof of Theorem 2 (Zinkevich 2003).
    """

    def __init__(self, eta0: float = 0.1):
        if eta0 <= 0:
            raise ValueError(f"eta0 must be positive, got {eta0}")
        self.eta0 = eta0

    def __call__(self, t: int) -> float:
        return self.eta0 / math.sqrt(1.0 + t)

    def many(self, t0: int, n: int) -> list[float]:
        ts = np.arange(t0, t0 + n, dtype=np.float64)
        return (self.eta0 / np.sqrt(1.0 + ts)).tolist()


class InverseSchedule(Schedule):
    """eta_t = eta0 / (1 + eta0 * lambda * t) — the rate for strongly
    convex objectives (Pegasos-style; Shalev-Shwartz et al. 2011)."""

    def __init__(self, eta0: float = 0.1, lambda_: float = 1e-5):
        if eta0 <= 0:
            raise ValueError(f"eta0 must be positive, got {eta0}")
        if lambda_ <= 0:
            raise ValueError(f"lambda_ must be positive, got {lambda_}")
        self.eta0 = eta0
        self.lambda_ = lambda_

    def __call__(self, t: int) -> float:
        return self.eta0 / (1.0 + self.eta0 * self.lambda_ * t)


def as_schedule(value: "Schedule | float") -> Schedule:
    """Coerce a bare float into an :class:`InverseSqrtSchedule`.

    Lets every learner accept ``learning_rate=0.1`` as shorthand for the
    paper's default schedule.
    """
    if isinstance(value, Schedule):
        return value
    return InverseSqrtSchedule(float(value))
