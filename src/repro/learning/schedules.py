"""Learning-rate schedules for online gradient descent.

The paper uses an initial learning rate ``eta_0 = 0.1`` across all
experiments (Section 7.1) with OGD.  The classic choices are provided;
all are callables ``schedule(t) -> eta_t`` with ``t`` counted from 0.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


class Schedule(ABC):
    """A learning-rate schedule: ``eta_t = schedule(t)``."""

    @abstractmethod
    def __call__(self, t: int) -> float:
        """The learning rate for step ``t`` (0-indexed)."""


class ConstantSchedule(Schedule):
    """eta_t = eta0."""

    def __init__(self, eta0: float = 0.1):
        if eta0 <= 0:
            raise ValueError(f"eta0 must be positive, got {eta0}")
        self.eta0 = eta0

    def __call__(self, t: int) -> float:
        return self.eta0


class InverseSqrtSchedule(Schedule):
    """eta_t = eta0 / sqrt(1 + t) — the standard OGD rate for convex losses.

    This is the default across the library, matching the O(1/sqrt(T))
    regret bound invoked in the proof of Theorem 2 (Zinkevich 2003).
    """

    def __init__(self, eta0: float = 0.1):
        if eta0 <= 0:
            raise ValueError(f"eta0 must be positive, got {eta0}")
        self.eta0 = eta0

    def __call__(self, t: int) -> float:
        return self.eta0 / math.sqrt(1.0 + t)


class InverseSchedule(Schedule):
    """eta_t = eta0 / (1 + eta0 * lambda * t) — the rate for strongly
    convex objectives (Pegasos-style; Shalev-Shwartz et al. 2011)."""

    def __init__(self, eta0: float = 0.1, lambda_: float = 1e-5):
        if eta0 <= 0:
            raise ValueError(f"eta0 must be positive, got {eta0}")
        if lambda_ <= 0:
            raise ValueError(f"lambda_ must be positive, got {lambda_}")
        self.eta0 = eta0
        self.lambda_ = lambda_

    def __call__(self, t: int) -> float:
        return self.eta0 / (1.0 + self.eta0 * self.lambda_ * t)


def as_schedule(value: "Schedule | float") -> Schedule:
    """Coerce a bare float into an :class:`InverseSqrtSchedule`.

    Lets every learner accept ``learning_rate=0.1`` as shorthand for the
    paper's default schedule.
    """
    if isinstance(value, Schedule):
        return value
    return InverseSqrtSchedule(float(value))
