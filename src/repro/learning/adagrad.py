"""Per-feature learning rates under a memory budget (Section 9).

Section 9 poses an open question: "whether variable learning rate
across features is worth the associated memory cost in the streaming
setting" — per-feature step sizes (McMahan et al. 2013's ad-click
systems use them) need one accumulator per weight, doubling the
footprint under the Section 7.1 cost model.

This module implements diagonal AdaGrad (Duchi et al. 2011) for the two
hashing-based learners so the question can be answered empirically at
*equal memory*:

* :class:`AdaGradFeatureHashing` — the hashing-trick classifier with a
  per-bucket squared-gradient accumulator.  A ``width``-bucket AdaGrad
  table costs ``2 * width`` cells, the same as a ``2 * width``-bucket
  plain table: the ablation bench compares exactly those two.
* :class:`AdaGradAWMSketch` — the AWM-Sketch with per-bucket
  accumulators on the (depth-1) sketch tail; active-set entries use the
  accumulator of the bucket they hash to, so no extra per-feature state
  is required beyond the tail table.

The AdaGrad step for bucket b is ``eta0 / sqrt(1 + G_b)`` where ``G_b``
accumulates squared gradient components routed into b.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.awm_sketch import AWMSketch
from repro.data.batch import SparseBatch
from repro.data.sparse import SparseExample
from repro.hashing.family import HashFamily
from repro.learning.base import CELL_BYTES, StreamingClassifier
from repro.learning.losses import LogisticLoss, Loss

_RENORM_THRESHOLD = 1e-150


class AdaGradFeatureHashing(StreamingClassifier):
    """Feature hashing with diagonal-AdaGrad per-bucket learning rates.

    Parameters
    ----------
    width:
        Hash-table size.  The cost model charges 2 cells per bucket
        (weight + accumulator).
    eta0:
        Base learning rate (scaled down per bucket as gradients
        accumulate).
    lambda_:
        L2 strength, applied per-update to touched buckets only (lazy
        global scaling is incompatible with per-bucket step sizes, so
        decay here is proportional and local — the standard choice in
        per-coordinate systems).
    """

    def __init__(
        self,
        width: int,
        loss: Loss | None = None,
        lambda_: float = 1e-6,
        eta0: float = 0.1,
        seed: int = 0,
    ):
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.width = width
        self.loss = loss if loss is not None else LogisticLoss()
        self.lambda_ = lambda_
        self.eta0 = eta0
        self.family = HashFamily(width, depth=1, seed=seed)
        self.table = np.zeros(width, dtype=np.float64)
        self.accumulator = np.zeros(width, dtype=np.float64)
        self.t = 0

    def _hashed(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        buckets = self.family.buckets(indices, 0)
        signs = self.family.signs(indices, 0)
        return buckets, signs

    def predict_margin(self, x: SparseExample) -> float:
        buckets, signs = self._hashed(x.indices)
        return float(self.table[buckets] @ (signs * x.values))

    def update(self, x: SparseExample) -> None:
        y = x.label
        buckets, signs = self._hashed(x.indices)
        tau = float(self.table[buckets] @ (signs * x.values))
        g = self.loss.dloss(y * tau)
        # Per-bucket gradient components of the hashed example.
        grads = y * g * signs * x.values
        np.add.at(self.accumulator, buckets, grads**2)
        etas = self.eta0 / np.sqrt(1.0 + self.accumulator[buckets])
        if self.lambda_ > 0.0:
            # Local proportional decay on touched buckets.
            self.table[buckets] *= 1.0 - etas * self.lambda_
        np.add.at(self.table, buckets, -etas * grads)
        self.t += 1

    def estimate_weights(self, indices: np.ndarray) -> np.ndarray:
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        buckets, signs = self._hashed(indices)
        return signs * self.table[buckets]

    #: Number of independently trained models folded in via :meth:`merge`.
    merged_from: int = 1

    def merge(self, *others: "AdaGradFeatureHashing") -> "AdaGradFeatureHashing":
        """Sum-merge sharded AdaGrad hashing models.

        Weight tables sum (same linearity argument as plain feature
        hashing; there is no lazy scale here, decay is local) and the
        squared-gradient accumulators — plain sums over the stream —
        sum too, so continued training after a merge sees the full
        gradient history of every shard.
        """
        if not others:
            return self
        for other in others:
            if type(other) is not type(self):
                raise TypeError(
                    f"cannot merge {type(other).__name__} into "
                    f"{type(self).__name__}"
                )
            if other.width != self.width:
                raise ValueError(
                    f"width mismatch: {self.width} vs {other.width}"
                )
            if other.family.seed != self.family.seed:
                raise ValueError("merged models must share hash seed")
        for other in others:
            self.table += other.table
            self.accumulator += other.accumulator
            self.t += other.t
            self.merged_from += other.merged_from
        return self

    def top_weights(self, k: int) -> list[tuple[int, float]]:
        raise NotImplementedError(
            "feature hashing stores no identifiers; use "
            "top_weights_from_candidates(candidates, k)"
        )

    def top_weights_from_candidates(
        self, candidates: np.ndarray, k: int
    ) -> list[tuple[int, float]]:
        """Top-k estimated weights among explicit candidate features."""
        candidates = np.atleast_1d(np.asarray(candidates, dtype=np.int64))
        est = self.estimate_weights(candidates)
        order = np.argsort(-np.abs(est))
        return [(int(candidates[i]), float(est[i])) for i in order[:k]]

    @property
    def memory_cost_bytes(self) -> int:
        return CELL_BYTES * 2 * self.width


class AdaGradAWMSketch(AWMSketch):
    """AWM-Sketch (depth 1) with per-bucket AdaGrad on the sketch tail.

    Heap entries use the learning rate of the bucket their feature
    hashes to, so the per-feature adaptation survives promotion without
    extra per-entry state.  The cost model charges the extra ``width``
    accumulator cells.
    """

    def __init__(self, width: int, heap_capacity: int = 128, **kwargs):
        kwargs.setdefault("scalar_fast_path", False)
        super().__init__(
            width=width, depth=1, heap_capacity=heap_capacity, **kwargs
        )
        self.accumulator = np.zeros(width, dtype=np.float64)

    def _eta_for(self, bucket: int) -> float:
        return self.schedule(0) / math.sqrt(1.0 + self.accumulator[bucket])

    def update(self, x: SparseExample) -> None:  # noqa: C901
        y = x.label
        in_heap, in_sketch = self._split(x)
        heap_idx = x.indices[in_heap]
        heap_val = x.values[in_heap]
        tail_idx = x.indices[in_sketch]
        tail_val = x.values[in_sketch]

        tau = 0.0
        for idx, val in zip(heap_idx.tolist(), heap_val.tolist()):
            tau += self.heap.value(idx) * val
        if tail_idx.size:
            tail_buckets, tail_signs = self.family.all_rows(tail_idx)
            tau += self._margin_from_rows(tail_buckets, tail_signs, tail_val)

        g = self.loss.dloss(y * tau)

        # Accumulate squared gradients for every touched bucket (heap
        # features also hash somewhere; use that bucket's accumulator).
        all_buckets, _ = self.family.all_rows(x.indices)
        np.add.at(
            self.accumulator, all_buckets[0], (y * g * x.values) ** 2
        )

        # Heap update with per-feature steps + local decay.
        for idx, val in zip(heap_idx.tolist(), heap_val.tolist()):
            bucket, _ = self.family.bucket_sign_one(idx, 0)
            eta = self._eta_for(bucket)
            w = self.heap.value(idx)
            w *= 1.0 - eta * self.lambda_
            self.heap.push(idx, w - eta * y * g * val)

        # Tail update (promotion logic as in Algorithm 2).
        if tail_idx.size:
            queries = self._estimate_from_rows(tail_buckets, tail_signs)
            for pos, (idx, val, q) in enumerate(
                zip(tail_idx.tolist(), tail_val.tolist(), queries.tolist())
            ):
                bucket = int(tail_buckets[0, pos])
                eta = self._eta_for(bucket)
                candidate = q - eta * y * g * val
                if not self.heap.is_full:
                    self.heap.push(idx, candidate)
                    self.n_promotions += 1
                    continue
                min_key, min_weight = self.heap.min_entry()
                if abs(candidate) > abs(min_weight):
                    self.heap.pop_min()
                    self.heap.push(idx, candidate)
                    self.n_promotions += 1
                    evict_q = float(
                        self._sketch_estimate(
                            np.array([min_key], dtype=np.int64)
                        )[0]
                    )
                    self._sketch_add(min_key, min_weight - evict_q)
                else:
                    self._sketch_add(idx, -eta * y * g * val)
        self.t += 1

    def fit_batch(self, batch: SparseBatch) -> np.ndarray:
        """Per-example fallback: the AdaGrad update rule differs from
        Algorithm 2, so the AWM batched kernel must not be inherited."""
        return StreamingClassifier.fit_batch(self, batch)

    def merge(self, *others: "AdaGradAWMSketch") -> "AdaGradAWMSketch":
        """AWM merge plus summed squared-gradient accumulators.

        The inherited merge handles tables and the active set; the
        per-bucket accumulator is a plain sum over the stream, so
        summing the donors' accumulators gives the merged model the
        full gradient history (and therefore correctly damped
        per-bucket step sizes) for continued training.
        """
        if not others:
            return self
        super().merge(*others)
        for other in others:
            self.accumulator += other.accumulator
        return self

    @property
    def memory_cost_bytes(self) -> int:
        return super().memory_cost_bytes + CELL_BYTES * self.width
