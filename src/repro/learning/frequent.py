"""Frequent-features baselines: learn weights only for frequent features.

The paper's heavy-hitters-based baselines pick *which* features get
explicit weights by tracking feature occurrence frequency, on the theory
that frequent features matter most.  (Sections 7.2-7.3 show this heuristic
is unreliable: frequent features need not be discriminative.)

* :class:`SpaceSavingFrequent` ("SS" in the figures) tracks the
  most frequent features with a Space Saving summary; only currently
  tracked features hold weights.  When Space Saving evicts a feature,
  its learned weight is discarded and the replacement starts at zero.
* :class:`CountMinFrequent` ("CM") estimates all frequencies in a
  Count-Min sketch and keeps explicit weights for the features whose
  estimated counts are in the current top-K (heap-maintained).  The
  paper reports Space Saving consistently beats this baseline, which is
  why most figures omit it.
"""

from __future__ import annotations

import numpy as np

from repro.data.sparse import SparseExample
from repro.heap.topk import TopKStore
from repro.learning.base import CELL_BYTES, StreamingClassifier
from repro.learning.losses import LogisticLoss, Loss
from repro.learning.schedules import Schedule, as_schedule
from repro.sketch.count_min import CountMinSketch
from repro.sketch.space_saving import SpaceSaving

_RENORM_THRESHOLD = 1e-150


class _FrequentBase(StreamingClassifier):
    """Shared weight-map-with-lazy-decay machinery."""

    def __init__(
        self,
        loss: Loss | None,
        lambda_: float,
        learning_rate: Schedule | float,
    ):
        self.loss = loss if loss is not None else LogisticLoss()
        self.lambda_ = lambda_
        self.schedule = as_schedule(learning_rate)
        self.t = 0
        self._weights: dict[int, float] = {}  # raw (multiply by scale)
        self._scale = 1.0

    def _decay(self, eta: float) -> None:
        if self.lambda_ > 0.0:
            self._scale *= 1.0 - eta * self.lambda_
            if self._scale < _RENORM_THRESHOLD:
                for idx in self._weights:
                    self._weights[idx] *= self._scale
                self._scale = 1.0

    def predict_margin(self, x: SparseExample) -> float:
        total = 0.0
        for idx, val in zip(x.indices.tolist(), x.values.tolist()):
            w = self._weights.get(idx)
            if w is not None:
                total += w * self._scale * val
        return total

    def _gradient_step(self, x: SparseExample, tracked_only: bool = True) -> None:
        """One OGD step applied to tracked features of ``x``."""
        y = x.label
        tau = self.predict_margin(x)
        g = self.loss.dloss(y * tau)
        eta = self.schedule(self.t)
        self._decay(eta)
        step = eta * y * g / self._scale
        for idx, val in zip(x.indices.tolist(), x.values.tolist()):
            if idx in self._weights:
                self._weights[idx] -= step * val
        self.t += 1

    def estimate_weights(self, indices: np.ndarray) -> np.ndarray:
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        return np.array(
            [self._weights.get(int(i), 0.0) * self._scale for i in indices],
            dtype=np.float64,
        )

    def top_weights(self, k: int) -> list[tuple[int, float]]:
        entries = [(i, w * self._scale) for i, w in self._weights.items()]
        entries.sort(key=lambda kv: abs(kv[1]), reverse=True)
        return entries[:k]


class SpaceSavingFrequent(_FrequentBase):
    """Space Saving feature selection + per-feature weights.

    Parameters
    ----------
    capacity:
        Space Saving slots.  Cost model: 3 cells per slot (id + count +
        weight).
    """

    def __init__(
        self,
        capacity: int,
        loss: Loss | None = None,
        lambda_: float = 1e-6,
        learning_rate: Schedule | float = 0.1,
    ):
        super().__init__(loss, lambda_, learning_rate)
        self.capacity = capacity
        self.summary = SpaceSaving(capacity)

    def update(self, x: SparseExample) -> None:
        # Phase 1: frequency tracking; evicted features lose their weights.
        for idx, val in zip(x.indices.tolist(), x.values.tolist()):
            evicted = self.summary.update(idx, abs(val) if val != 0 else 1.0)
            if evicted is not None:
                self._weights.pop(evicted, None)
            if idx in self.summary and idx not in self._weights:
                self._weights[idx] = 0.0
        # Phase 2: gradient step on the tracked features.
        self._gradient_step(x)

    @property
    def memory_cost_bytes(self) -> int:
        return CELL_BYTES * 3 * self.capacity


class CountMinFrequent(_FrequentBase):
    """Count-Min frequency estimation + top-K-by-count active weights.

    Parameters
    ----------
    heap_capacity:
        Number of features holding explicit weights (2 cells each:
        id + weight; the heap's count copy adds 1 aux cell each).
    width, depth:
        Count-Min sketch dimensions (width * depth aux cells).
    """

    def __init__(
        self,
        heap_capacity: int,
        width: int,
        depth: int = 2,
        loss: Loss | None = None,
        lambda_: float = 1e-6,
        learning_rate: Schedule | float = 0.1,
        seed: int = 0,
        conservative: bool = False,
    ):
        super().__init__(loss, lambda_, learning_rate)
        self.heap_capacity = heap_capacity
        self.cm = CountMinSketch(width, depth, seed=seed, conservative=conservative)
        # Min-store of active features keyed by estimated count.
        self._count_heap = TopKStore(heap_capacity)

    def update(self, x: SparseExample) -> None:
        self.cm.update(x.indices, np.abs(x.values) + (x.values == 0))
        counts = self.cm.estimate(x.indices)
        for idx, est in zip(x.indices.tolist(), counts.tolist()):
            evicted = self._count_heap.push(int(idx), est)
            if evicted is not None and evicted[0] != idx:
                self._weights.pop(evicted[0], None)
            if idx in self._count_heap and idx not in self._weights:
                self._weights[idx] = 0.0
        self._gradient_step(x)

    @property
    def memory_cost_bytes(self) -> int:
        sketch_cells = self.cm.width * self.cm.depth
        return CELL_BYTES * (sketch_cells + 3 * self.heap_capacity)
