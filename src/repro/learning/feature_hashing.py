"""The feature-hashing ("hashing trick") baseline.

Shi et al. 2009 / Weinberger et al. 2009: train on features hashed into a
fixed-size table with random signs (the signed variant makes the inner
product an unbiased estimate of the original).  This is the ``Hash`` line
in Figs. 3-7.

Feature hashing stores *no* feature identifiers, so its entire budget
goes to weights — but colliding features can never be disambiguated,
which is why its recovery error is poor (Fig. 3) even though its
classification accuracy is strong.  Weight estimates are produced by
querying the single table at the feature's hashed position (depth-1
Count-Sketch-style query).
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.data.batch import SparseBatch
from repro.data.sparse import SparseExample
from repro.hashing.batch import BatchHasher
from repro.hashing.family import HashFamily
from repro.learning.base import (
    CELL_BYTES,
    StreamingClassifier,
    sum_merge_scaled_tables,
)
from repro.learning.losses import LogisticLoss, Loss
from repro.learning.schedules import Schedule, as_schedule

_RENORM_THRESHOLD = 1e-150


class FeatureHashing(StreamingClassifier):
    """Signed feature hashing into a single weight table.

    Parameters
    ----------
    width:
        Hash-table size in weights (all of the memory budget).
    loss, lambda_, learning_rate:
        As for every learner (Eq. 1 objective, lazy L2 decay).
    seed:
        Hash-function seed.
    signed:
        Use random sign flips (the unbiased "hash kernel"); disable for
        the plain unsigned variant (ablation).
    backend:
        Kernel-backend override for hashing / margin / scatter
        (``None`` = follow the process default; see
        :mod:`repro.kernels`).  Bit-identical across backends.
    """

    #: Number of independently trained models folded in via :meth:`merge`.
    merged_from: int = 1

    #: Route ``fit_batch`` through the fused update mega-kernel (see
    #: :class:`repro.core.sketch_table.ScaledSketchTable.use_fused`).
    use_fused: bool = True

    def __init__(
        self,
        width: int,
        loss: Loss | None = None,
        lambda_: float = 1e-6,
        learning_rate: Schedule | float = 0.1,
        seed: int = 0,
        signed: bool = True,
        backend: str | None = None,
    ):
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.width = width
        self.loss = loss if loss is not None else LogisticLoss()
        self.lambda_ = lambda_
        self.schedule = as_schedule(learning_rate)
        self.signed = signed
        self.backend = backend
        self.family = HashFamily(width, depth=1, seed=seed, backend=backend)
        self._batch_hasher = BatchHasher(self.family)
        self.table = np.zeros(width, dtype=np.float64)
        self._scale = 1.0
        self._kb = kernels.BackendHandle(backend)
        self._ws: kernels.KernelWorkspace | None = None
        self.t = 0

    # ------------------------------------------------------------------
    # Pickling: the backend handle, workspace and hash cache are pure
    # per-process caches — dropped on save, rebuilt (lazily) on load.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        for key in ("_kb", "_ws"):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._kb = kernels.BackendHandle(self.backend)
        self._ws = None

    def snapshot(
        self,
        batch_hasher: "BatchHasher | None" = None,
        workspace: "kernels.KernelWorkspace | None" = None,
    ) -> "FeatureHashing":
        """A consistent read-only copy for concurrent serving — the
        lazy scale folded into the copied table at publish time (same
        contract as :meth:`repro.core.sketch_table.ScaledSketchTable.
        snapshot`, which documents the cache-threading parameters)."""
        snap = object.__new__(type(self))
        state = self.__dict__.copy()
        for key in ("table", "_scale", "_batch_hasher", "_kb", "_ws"):
            state.pop(key, None)
        snap.__dict__.update(state)
        snap.table = np.multiply(self.table, self._scale)
        snap._scale = 1.0
        if batch_hasher is not None and batch_hasher.family is not self.family:
            raise ValueError(
                "batch_hasher must wrap the model's own hash family"
            )
        snap._batch_hasher = (
            batch_hasher
            if batch_hasher is not None
            else BatchHasher(self.family)
        )
        snap._kb = self._kb
        snap._ws = workspace
        return snap

    @property
    def kernels(self) -> "kernels.KernelBackend":
        """The kernel backend the margin / scatter loops dispatch
        through (cached handle; one epoch compare per access)."""
        return self._kb.get()

    def _workspace(self) -> "kernels.KernelWorkspace":
        ws = self._ws
        if ws is None:
            ws = self._ws = kernels.KernelWorkspace()
        return ws

    # ------------------------------------------------------------------
    def _hashed(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        buckets = self.family.buckets(indices, 0)
        if self.signed:
            signs = self.family.signs(indices, 0)
        else:
            signs = np.ones(buckets.shape, dtype=np.float64)
        return buckets, signs

    def predict_margin(self, x: SparseExample) -> float:
        buckets, signs = self._hashed(x.indices)
        # The margin kernel's exactly-rounded sum (rather than BLAS dot
        # / SIMD sum) keeps the reduction independent of buffer layout,
        # so per-example and batched (CSR-view) driving stay
        # bit-identical.  The depth-1 table needs no sqrt(s) factor.
        return self.kernels.margin(
            self.table, buckets, signs * x.values, self._scale, 1.0
        )

    def _decay(self, eta: float) -> None:
        """One lazy L2 decay step with the same validity check the
        sketches apply (``eta * lambda >= 1`` would flip or zero the
        model — historically this corrupted silently; now it raises on
        every path, so fused, unfused and per-example stay equivalent
        in the pathological regime too)."""
        decay = 1.0 - eta * self.lambda_
        if decay <= 0.0:
            raise ValueError(
                f"eta * lambda = {eta * self.lambda_} >= 1; decrease eta0"
            )
        self._scale *= decay
        if self._scale < _RENORM_THRESHOLD:
            self.table *= self._scale
            self._scale = 1.0

    def _check_decay_window(self, etas: np.ndarray) -> None:
        """Whole-window pre-validation for the fused kernel (same
        trigger condition as :meth:`_decay`, raised up front)."""
        lam = self.lambda_
        if lam <= 0.0 or etas.size == 0:
            return
        if float(etas.max()) * lam < 1.0:
            return
        first = int(np.argmax(etas * lam >= 1.0))
        eta = float(etas[first])
        raise ValueError(
            f"eta * lambda = {eta * lam} >= 1; decrease eta0"
        )

    def update(self, x: SparseExample) -> None:
        y = x.label
        kb = self.kernels
        buckets, signs = self._hashed(x.indices)
        sign_values = signs * x.values
        tau = kb.margin(self.table, buckets, sign_values, self._scale, 1.0)
        g = self.loss.dloss(y * tau)
        eta = self.schedule(self.t)
        if self.lambda_ > 0.0:
            self._decay(eta)
        kb.scatter_add(
            self.table, buckets, -(eta * y * g / self._scale) * sign_values
        )
        self.t += 1

    def predict_batch(self, batch: SparseBatch) -> np.ndarray:
        """Batched margins via ``fused_predict`` — one cached hash and
        one kernel call, bit-identical to per-example
        :meth:`predict_margin` (exactly-rounded sums)."""
        n = len(batch)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        ws = self._workspace()
        nnz = batch.indices.size
        buckets = ws.array("p_buckets", (1, nnz), np.int64)
        signs = ws.array("p_signs", (1, nnz))
        self._batch_hasher.rows_into(batch.indices, buckets, signs)
        if self.signed:
            sv = ws.array("p_sv", (1, nnz))
            np.multiply(signs, batch.values, out=sv)
        else:
            sv = batch.values.reshape(1, -1)
        out = np.empty(n, dtype=np.float64)
        self.kernels.fused_predict(
            self.table, buckets, sv, batch.indptr, self._scale, 1.0,
            out, kernels.EMPTY_SCRATCH,
        )
        return out

    def query_many(self, indices: np.ndarray) -> np.ndarray:
        """Serving-path weight estimates with cached hashing —
        bit-identical to :meth:`estimate_weights`."""
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        n = indices.size
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        ws = self._workspace()
        buckets = ws.array("q_buckets", (1, n), np.int64)
        signs = ws.array("q_signs", (1, n))
        self._batch_hasher.rows_into(indices, buckets, signs)
        gathered = ws.array("q_gathered", n)
        np.take(self.table, buckets[0], out=gathered)
        out = np.empty(n, dtype=np.float64)
        if self.signed:
            # estimate_weights computes (scale * signs) * table[buckets].
            scaled = ws.array("q_scaled", n)
            np.multiply(signs[0], self._scale, out=scaled)
            np.multiply(scaled, gathered, out=out)
        else:
            # Unsigned: signs are all ones, so (scale * 1) * gathered.
            np.multiply(gathered, self._scale, out=out)
        return out

    def fit_batch(
        self,
        batch: SparseBatch,
        rows: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Mini-batch updates with one (deduplicated, cached) hash and
        one fused kernel call per batch.

        The whole per-example chain — exactly-rounded margin, loss
        derivative, lazy decay, gradient scatter — runs inside a single
        ``fused_update`` over workspace buffers; state is bit-identical
        to per-example updates and to the retained unfused chain
        (:meth:`_fit_batch_unfused`, used for custom losses or
        ``use_fused=False``).  Returns the pre-update margins.  ``rows``
        may carry precomputed ``(buckets, signs)`` from the pipelined
        prefetch hasher.
        """
        n = len(batch)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        if not self.use_fused or self.loss.kernel_id is None:
            return self._fit_batch_unfused(batch, rows)
        ws = self._workspace()
        nnz = batch.indices.size
        if rows is None:
            buckets = ws.array("b_buckets", (1, nnz), np.int64)
            signs = ws.array("b_signs", (1, nnz))
            self._batch_hasher.rows_into(batch.indices, buckets, signs)
        else:
            buckets, signs = rows[0][:1], rows[1][:1]
        if self.signed:
            sv = ws.array("b_sv", (1, nnz))
            np.multiply(signs, batch.values, out=sv)
        else:
            sv = batch.values.reshape(1, -1)
        etas = ws.array("etas", n)
        etas[:] = self.schedule.many(self.t, n)
        self._check_decay_window(etas)
        margins = np.empty(n, dtype=np.float64)
        # Depth-1 table: flat buckets are the buckets themselves, and
        # the margin normalization is sqrt(s) = 1.
        self._scale = self.kernels.fused_update(
            self.table, buckets, sv, batch.indptr, batch.labels, etas,
            self.lambda_, self._scale, 1.0,
            self.loss.kernel_id, self.loss.kernel_param,
            margins, kernels.EMPTY_GATHER, kernels.EMPTY_SCALES,
            kernels.EMPTY_SCRATCH, kernels.EMPTY_TOUCHED,
        )
        self.t += n
        return margins

    def _fit_batch_unfused(
        self,
        batch: SparseBatch,
        rows: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """The original per-kernel mini-batch chain — the executable
        reference the fused path is fuzz-checked against."""
        n = len(batch)
        margins = np.empty(n, dtype=np.float64)
        if n == 0:
            return margins
        if rows is None:
            all_buckets, all_signs = self._batch_hasher.rows(batch.indices)
        else:
            all_buckets, all_signs = rows
        buckets = all_buckets[0]
        if self.signed:
            sign_values = all_signs[0] * batch.values
        else:
            sign_values = batch.values
        indptr = batch.indptr.tolist()
        labels = batch.labels.tolist()
        table = self.table
        kb = self.kernels
        margin_k = kb.margin
        scatter_k = kb.scatter_add
        for i in range(n):
            lo, hi = indptr[i], indptr[i + 1]
            b = buckets[lo:hi]
            sv = sign_values[lo:hi]
            tau = margin_k(table, b, sv, self._scale, 1.0)
            margins[i] = tau
            y = labels[i]
            g = self.loss.dloss(y * tau)
            eta = self.schedule(self.t)
            if self.lambda_ > 0.0:
                self._decay(eta)
            scatter_k(table, b, -(eta * y * g / self._scale) * sv)
            self.t += 1
        return margins

    # ------------------------------------------------------------------
    # Merging (distributed / sharded training)
    # ------------------------------------------------------------------
    def merge(self, *others: "FeatureHashing") -> "FeatureHashing":
        """Sum-merge sharded feature-hashing models.

        The hashed weight table is linear in the updates the same way a
        Count-Sketch row is, so summing the workers' scaled tables gives
        exactly the table of the summed model; each lazy L2 scale is
        folded into its raw table before the sum, making the merged
        scaled table bit-for-bit ``sum_i(scale_i * table_i)``.  As with
        the sketches, estimates recover the *sum* of the workers' models
        (divide by :attr:`merged_from` for the mean).
        """
        if not others:
            return self
        for other in others:
            if not isinstance(other, FeatureHashing):
                raise TypeError(
                    f"cannot merge {type(other).__name__} into "
                    f"FeatureHashing"
                )
            if other.width != self.width:
                raise ValueError(
                    f"width mismatch: {self.width} vs {other.width}"
                )
            if (other.family.seed, other.signed) != (
                self.family.seed,
                self.signed,
            ):
                raise ValueError(
                    "merged models must share hash seed and signedness"
                )
        sum_merge_scaled_tables(self, others)
        return self

    # ------------------------------------------------------------------
    def estimate_weights(self, indices: np.ndarray) -> np.ndarray:
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        buckets, signs = self._hashed(indices)
        return self._scale * signs * self.table[buckets]

    def top_weights(self, k: int) -> list[tuple[int, float]]:
        """Feature hashing cannot enumerate features — only buckets.

        Raises
        ------
        NotImplementedError
            Callers that evaluate recovery for this baseline must supply
            a candidate set and use :meth:`top_weights_from_candidates`
            (the paper's recovery evaluation queries candidate features
            post hoc; identifiers are never stored by the method itself).
        """
        raise NotImplementedError(
            "feature hashing stores no identifiers; use "
            "top_weights_from_candidates(candidates, k)"
        )

    def top_weights_from_candidates(
        self, candidates: np.ndarray, k: int
    ) -> list[tuple[int, float]]:
        """Top-k estimated weights among an externally-supplied candidate
        feature set (used by the recovery-error harness)."""
        candidates = np.atleast_1d(np.asarray(candidates, dtype=np.int64))
        est = self.estimate_weights(candidates)
        if k < candidates.size:
            part = np.argpartition(-np.abs(est), k)[:k]
        else:
            part = np.arange(candidates.size)
        order = part[np.argsort(-np.abs(est[part]))]
        return [(int(candidates[i]), float(est[i])) for i in order[:k]]

    @property
    def memory_cost_bytes(self) -> int:
        return CELL_BYTES * self.width
