"""Online-learning substrate and all memory-budgeted baselines.

This package contains everything about *learning* that is not the
WM/AWM-Sketch itself:

* :mod:`~repro.learning.losses` — margin losses (logistic, smoothed
  hinge, hinge, squared) with the smoothness/Lipschitz constants the
  theory needs.
* :mod:`~repro.learning.schedules` — learning-rate schedules for online
  gradient descent.
* :mod:`~repro.learning.base` — the :class:`StreamingClassifier`
  interface every method implements (update / margin / weight estimates /
  top-K / memory cost), plus progressive-validation driving.
* :mod:`~repro.learning.ogd` — the memory-*unconstrained* logistic
  regression reference (the ``LR`` line in the paper's figures).
* :mod:`~repro.learning.feature_hashing` — the hashing-trick baseline.
* :mod:`~repro.learning.truncation` — Simple Truncation (Algorithm 3)
  and Probabilistic Truncation (Algorithm 4).
* :mod:`~repro.learning.frequent` — Space Saving Frequent and Count-Min
  Frequent feature selectors.
* :mod:`~repro.learning.adagrad` — per-feature (AdaGrad) learning-rate
  extensions (imported lazily at the top level to avoid a cycle with
  :mod:`repro.core`).
"""

from repro.learning.base import StreamingClassifier, OnlineErrorTracker, run_stream
from repro.learning.feature_hashing import FeatureHashing
from repro.learning.frequent import CountMinFrequent, SpaceSavingFrequent
from repro.learning.losses import (
    HingeLoss,
    Loss,
    LogisticLoss,
    SmoothedHingeLoss,
    SquaredLoss,
)
from repro.learning.ogd import UncompressedClassifier
from repro.learning.schedules import (
    ConstantSchedule,
    InverseSchedule,
    InverseSqrtSchedule,
    Schedule,
)
from repro.learning.truncation import ProbabilisticTruncation, SimpleTruncation

__all__ = [
    "StreamingClassifier",
    "OnlineErrorTracker",
    "run_stream",
    "Loss",
    "LogisticLoss",
    "SmoothedHingeLoss",
    "HingeLoss",
    "SquaredLoss",
    "Schedule",
    "ConstantSchedule",
    "InverseSqrtSchedule",
    "InverseSchedule",
    "UncompressedClassifier",
    "FeatureHashing",
    "SimpleTruncation",
    "ProbabilisticTruncation",
    "SpaceSavingFrequent",
    "CountMinFrequent",
]
