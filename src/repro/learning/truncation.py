"""Truncation baselines: Algorithms 3 and 4 of the paper.

Both maintain at most ``capacity`` explicit (feature, weight) pairs and
drop everything else after each update:

* :class:`SimpleTruncation` (Algorithm 3) keeps the top-``capacity``
  entries *by weight magnitude* — a deterministic hard threshold.
* :class:`ProbabilisticTruncation` (Algorithm 4) keeps a *weighted
  reservoir sample*: each entry carries an A-Res key
  ``u ** (1 / |weight|)`` re-keyed whenever its weight changes, and the
  top-``capacity`` entries by key survive.  Randomization lets
  lower-weight features occasionally persist, which the paper shows can
  beat both Simple Truncation and frequency-based selection on datasets
  where the discriminative features are not the most frequent (URL,
  Fig. 3).

Implementation notes
--------------------
The A-Res key of feature ``i`` is ``W_i = u_i ** (1 / m_i)`` with
``m_i = |weight_i|``, i.e. ``log W_i = log(u_i) / m_i``.  Writing
``c_i = -log u_i > 0`` (fixed at insertion), keeping the *largest* keys
is keeping the *smallest* ``c_i / m_i``.  Two consequences exploited
here:

* re-keying after a weight change (Algorithm 4's
  ``W[i] <- W[i] ** |S_t[i] / S_{t+1}[i]|``) is just using the new
  ``m_i`` in ``c_i / m_i``;
* the uniform weight decay ``(1 - eta * lambda)`` rescales every ``m_i``
  equally, multiplying every ``c_i / m_i`` by the same constant — the
  *ordering* is unchanged, so lazy global scaling applies to reservoir
  keys exactly as it does to weights.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.sparse import SparseExample
from repro.heap.topk import TopKStore, negate
from repro.learning.base import CELL_BYTES, StreamingClassifier
from repro.learning.losses import LogisticLoss, Loss
from repro.learning.schedules import Schedule, as_schedule

_TINY = 1e-300


class _TruncationBase(StreamingClassifier):
    """Shared machinery: sparse weight map with lazy L2 via a heap scale."""

    def __init__(
        self,
        capacity: int,
        loss: Loss | None,
        lambda_: float,
        learning_rate: Schedule | float,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.loss = loss if loss is not None else LogisticLoss()
        self.lambda_ = lambda_
        self.schedule = as_schedule(learning_rate)
        self.t = 0

    def estimate_weights(self, indices: np.ndarray) -> np.ndarray:
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        return np.array(
            [self._weight_of(int(i)) for i in indices], dtype=np.float64
        )

    def _weight_of(self, index: int) -> float:
        raise NotImplementedError


class SimpleTruncation(_TruncationBase):
    """Algorithm 3: OGD on a weight map truncated to top-K by magnitude.

    Parameters
    ----------
    capacity:
        Number of retained (feature, weight) pairs; the cost model
        charges 2 cells (id + weight) per slot.
    """

    def __init__(
        self,
        capacity: int,
        loss: Loss | None = None,
        lambda_: float = 1e-6,
        learning_rate: Schedule | float = 0.1,
    ):
        super().__init__(capacity, loss, lambda_, learning_rate)
        # Min-store by |weight|: pushing every touched feature and
        # letting the store evict minima implements truncation to the
        # top-K of the union (old entries + updated entries).
        self._heap = TopKStore(capacity)

    def predict_margin(self, x: SparseExample) -> float:
        total = 0.0
        for idx, val in zip(x.indices.tolist(), x.values.tolist()):
            total += self._heap.get(idx) * val
        return total

    def update(self, x: SparseExample) -> None:
        y = x.label
        tau = self.predict_margin(x)
        g = self.loss.dloss(y * tau)
        eta = self.schedule(self.t)
        if self.lambda_ > 0.0:
            self._heap.decay(1.0 - eta * self.lambda_)
        step = eta * y * g
        for idx, val in zip(x.indices.tolist(), x.values.tolist()):
            new_w = self._heap.get(idx) - step * val
            self._heap.push(idx, new_w)
        self.t += 1

    def _weight_of(self, index: int) -> float:
        return self._heap.get(index)

    def top_weights(self, k: int) -> list[tuple[int, float]]:
        return self._heap.top(k)

    @property
    def memory_cost_bytes(self) -> int:
        return CELL_BYTES * 2 * self.capacity


class ProbabilisticTruncation(_TruncationBase):
    """Algorithm 4: OGD on a weight map kept as a weighted reservoir.

    Parameters
    ----------
    capacity:
        Number of retained entries; the cost model charges 3 cells per
        slot (id + weight + reservoir key).
    seed:
        Seed for the reservoir randomness.
    """

    def __init__(
        self,
        capacity: int,
        loss: Loss | None = None,
        lambda_: float = 1e-6,
        learning_rate: Schedule | float = 0.1,
        seed: int = 0,
    ):
        super().__init__(capacity, loss, lambda_, learning_rate)
        self._rng = np.random.Generator(np.random.PCG64(seed))
        # Per-feature state for retained features.
        self._weights: dict[int, float] = {}  # raw weights (x scale)
        self._cost: dict[int, float] = {}  # c_i = -log u_i, fixed at insert
        self._scale = 1.0
        # Min-store of retained features storing the ratio c_i / m_i
        # with *negated* priority: the minimum priority is the largest
        # ratio, i.e. the smallest reservoir key — evicting it is
        # exactly A-Res retention of the top-``capacity`` keys.  The
        # module-level ``negate`` (not a lambda) keeps the model
        # picklable for the parallel worker pool.
        self._heap = TopKStore(capacity, priority=negate)

    # ------------------------------------------------------------------
    def _ratio(self, idx: int) -> float:
        """c_i / |raw weight| (the negated heap value)."""
        m = abs(self._weights[idx])
        return self._cost[idx] / max(m, _TINY)

    def predict_margin(self, x: SparseExample) -> float:
        total = 0.0
        for idx, val in zip(x.indices.tolist(), x.values.tolist()):
            w = self._weights.get(idx)
            if w is not None:
                total += w * self._scale * val
        return total

    def update(self, x: SparseExample) -> None:
        y = x.label
        tau = self.predict_margin(x)
        g = self.loss.dloss(y * tau)
        eta = self.schedule(self.t)
        if self.lambda_ > 0.0:
            # Uniform decay: rescales all |m_i| equally; reservoir-key
            # ordering is preserved, so only the scale changes.
            self._scale *= 1.0 - eta * self.lambda_
            if self._scale < 1e-150:
                for idx in self._weights:
                    self._weights[idx] *= self._scale
                self._scale = 1.0
        step = eta * y * g
        for idx, val in zip(x.indices.tolist(), x.values.tolist()):
            raw_delta = -step * val / self._scale
            if idx in self._weights:
                self._weights[idx] += raw_delta
                # Re-key: new ratio with the updated weight.
                self._heap.push(idx, self._ratio(idx))
            else:
                u = max(float(self._rng.random()), _TINY)
                cost = -math.log(u)
                self._weights[idx] = raw_delta
                self._cost[idx] = cost
                evicted = self._heap.push(idx, self._ratio(idx))
                if evicted is not None:
                    gone = evicted[0]
                    del self._weights[gone]
                    del self._cost[gone]
        self.t += 1

    def _weight_of(self, index: int) -> float:
        w = self._weights.get(index)
        return 0.0 if w is None else w * self._scale

    def top_weights(self, k: int) -> list[tuple[int, float]]:
        entries = [
            (idx, raw * self._scale) for idx, raw in self._weights.items()
        ]
        entries.sort(key=lambda kv: abs(kv[1]), reverse=True)
        return entries[:k]

    @property
    def memory_cost_bytes(self) -> int:
        return CELL_BYTES * 3 * self.capacity
