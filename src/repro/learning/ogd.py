"""The memory-unconstrained online logistic regression reference.

This is the ``LR`` line in Figs. 6-10: plain online gradient descent on
the L2-regularized loss (Eq. 1) with a dense weight vector of dimension
``d``.  It is both

* the *reference model* whose weights define ``w*`` in the RelErr
  recovery metric (Section 7.2), and
* the *runtime baseline* of Fig. 7 (weights in a flat array, heaviest
  K = 128 features tracked with a min-heap).

L2 weight decay uses the same global-scale trick as the sketches
(Section 5.1), so an update costs O(nnz(x)) rather than O(d).
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.batch import SparseBatch
from repro.data.sparse import SparseExample
from repro.heap.topk import TopKStore
from repro.learning.base import CELL_BYTES, StreamingClassifier
from repro.learning.losses import LogisticLoss, Loss
from repro.learning.schedules import Schedule, as_schedule

_RENORM_THRESHOLD = 1e-150


class UncompressedClassifier(StreamingClassifier):
    """Dense-weight online linear classifier (no memory budget).

    Parameters
    ----------
    d:
        Feature dimension (weights array size).
    loss:
        Margin loss; defaults to logistic regression.
    lambda_:
        L2-regularization strength (the lambda of Eq. 1).
    learning_rate:
        A :class:`~repro.learning.schedules.Schedule` or a float eta0
        (shorthand for the inverse-sqrt schedule with that eta0).
    track_top:
        Capacity of the min-heap tracking the heaviest weights (the paper
        uses K = 128 for its runtime experiments).  0 disables tracking;
        ``top_weights`` then sorts the dense array directly.
    """

    #: Number of independently trained models folded in via :meth:`merge`.
    merged_from: int = 1

    def __init__(
        self,
        d: int,
        loss: Loss | None = None,
        lambda_: float = 1e-6,
        learning_rate: Schedule | float = 0.1,
        track_top: int = 128,
    ):
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if lambda_ < 0:
            raise ValueError(f"lambda_ must be >= 0, got {lambda_}")
        self.d = d
        self.loss = loss if loss is not None else LogisticLoss()
        self.lambda_ = lambda_
        self.schedule = as_schedule(learning_rate)
        self.t = 0
        self._raw = np.zeros(d, dtype=np.float64)
        self._scale = 1.0
        self.heap: TopKStore | None = (
            TopKStore(track_top) if track_top > 0 else None
        )

    # ------------------------------------------------------------------
    def predict_margin(self, x: SparseExample) -> float:
        # Exactly-rounded fsum rather than BLAS dot / SIMD sum: the
        # reduction is then independent of buffer layout, so per-example
        # and batched (CSR-view) driving produce bit-identical margins.
        return self._scale * math.fsum(
            (self._raw[x.indices] * x.values).tolist()
        )

    def update(self, x: SparseExample) -> None:
        self._update_arrays(x.indices, x.values, x.label)

    def _update_arrays(
        self, indices: np.ndarray, values: np.ndarray, y: int
    ) -> float:
        """One OGD step on raw arrays; returns the pre-update margin."""
        tau = self._scale * math.fsum((self._raw[indices] * values).tolist())
        g = self.loss.dloss(y * tau)
        eta = self.schedule(self.t)
        if self.lambda_ > 0.0:
            decay = 1.0 - eta * self.lambda_
            if decay <= 0.0:
                raise ValueError(
                    f"eta * lambda = {eta * self.lambda_} >= 1; decrease eta0"
                )
            self._scale *= decay
            if self._scale < _RENORM_THRESHOLD:
                self._raw *= self._scale
                self._scale = 1.0
        self._raw[indices] -= (eta * y * g / self._scale) * values
        self.t += 1
        if self.heap is not None:
            # Sequential-equivalent batched pushes: members refresh in
            # place, and when the store is full the candidates that
            # cannot beat the admission threshold are rejected in one
            # vectorized screen.
            self.heap.push_many(indices, self._scale * self._raw[indices])
        return tau

    def fit_batch(self, batch: SparseBatch) -> np.ndarray:
        """Mini-batch OGD: replay the sequence over CSR slices.

        No hashing to amortize here; the win over the default path is
        computing each example's margin once (shared by the gradient and
        the returned prediction) and skipping per-example object
        plumbing.  State is bit-identical to per-example updates.
        """
        n = len(batch)
        margins = np.empty(n, dtype=np.float64)
        indptr = batch.indptr.tolist()
        labels = batch.labels.tolist()
        for i in range(n):
            lo, hi = indptr[i], indptr[i + 1]
            margins[i] = self._update_arrays(
                batch.indices[lo:hi], batch.values[lo:hi], labels[i]
            )
        return margins

    # ------------------------------------------------------------------
    # Merging (distributed / sharded training)
    # ------------------------------------------------------------------
    def merge(self, *others: "UncompressedClassifier") -> "UncompressedClassifier":
        """**Mean**-merge sharded dense models (parameter averaging).

        Unlike the sketches — whose tables are summed because Count-
        Sketch linearity makes the sum *exact* for the summed model —
        the uncompressed baseline keeps its weights on the w* scale by
        averaging (Zinkevich et al. 2010 parallelized SGD): each worker
        independently approximates the same optimum, so the mean is the
        natural combination and stays directly comparable to a
        single-stream model's weights.  Inputs that are themselves
        merged models count with weight :attr:`merged_from`, so the
        result is always the flat mean over every *constituent*
        single-stream model, however the merges were grouped.  This is
        an approximation of single-stream training, not an identity;
        the top-K heap is rebuilt from the averaged dense vector, which
        is authoritative.
        """
        if not others:
            return self
        models = (self,) + others
        for other in others:
            if not isinstance(other, UncompressedClassifier):
                raise TypeError(
                    f"cannot merge {type(other).__name__} into "
                    f"UncompressedClassifier"
                )
            if other.d != self.d:
                raise ValueError(f"d mismatch: {self.d} vs {other.d}")
        total = sum(m.merged_from for m in models)
        mean = (
            sum(m.merged_from * m.dense_weights() for m in models) / total
        )
        self._raw = mean
        self._scale = 1.0
        self.t = sum(m.t for m in models)
        self.merged_from = total
        if self.heap is not None:
            capacity = self.heap.capacity
            self.heap = TopKStore(capacity)
            for idx, w in self.top_weights(capacity):
                self.heap.push(idx, w)
        return self

    # ------------------------------------------------------------------
    def estimate_weights(self, indices: np.ndarray) -> np.ndarray:
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        return self._scale * self._raw[indices]

    def dense_weights(self) -> np.ndarray:
        """The full weight vector (this *is* w* for recovery evaluation)."""
        return self._scale * self._raw

    def top_weights(self, k: int) -> list[tuple[int, float]]:
        # The dense array is authoritative; the heap only tracks a
        # superset approximation for runtime parity with the paper.
        w = self.dense_weights()
        if k >= self.d:
            order = np.argsort(-np.abs(w))
        else:
            cand = np.argpartition(-np.abs(w), k)[:k]
            order = cand[np.argsort(-np.abs(w[cand]))]
        return [(int(i), float(w[i])) for i in order[:k]]

    @property
    def memory_cost_bytes(self) -> int:
        heap_cells = 2 * self.heap.capacity if self.heap is not None else 0
        return CELL_BYTES * (self.d + heap_cells)
