"""Saving and restoring sketch state.

Deployed sketches outlive processes: a router or mobile device needs to
checkpoint its compressed classifier and resume later.  Since the hash
functions are derived deterministically from the seed, a sketch's full
state is its constructor parameters plus the table, scale, step counter
and (for the AWM variant) heap contents — a few KB, matching the
sketch's own budget.

The format is a single ``numpy.savez`` archive; no pickling of code
objects, so snapshots are portable across library versions that keep
the documented fields.

The top-K store serializes as its (key, true-value) pairs in slot
order — the lazy scale is folded into the values, exactly what
:meth:`~repro.heap.topk.TopKStore.items` returns — and is rebuilt on
load with one :meth:`~repro.heap.topk.TopKStore.push_many` (pure
appends: at most ``capacity`` distinct keys are stored, so nothing can
evict during the rebuild and slot order round-trips).  In-process
transport (the parallel worker pool) instead pickles sketches directly:
``ScaledSketchTable.__getstate__`` rebuilds the ``_table_flat`` view
aliasing and ``TopKStore.__getstate__`` ships only the live slot
prefix, reconstructing the position map and caches on load.
"""

from __future__ import annotations

import io
from typing import BinaryIO

import numpy as np

from repro.core.awm_sketch import AWMSketch
from repro.core.wm_sketch import WMSketch
from repro.learning.losses import (
    HingeLoss,
    LogisticLoss,
    SmoothedHingeLoss,
    SquaredLoss,
)
from repro.learning.schedules import (
    ConstantSchedule,
    InverseSqrtSchedule,
)

_LOSSES = {
    "LogisticLoss": LogisticLoss,
    "SmoothedHingeLoss": SmoothedHingeLoss,
    "HingeLoss": HingeLoss,
    "SquaredLoss": SquaredLoss,
}

_SCHEDULES = {
    "ConstantSchedule": ConstantSchedule,
    "InverseSqrtSchedule": InverseSqrtSchedule,
}


def _common_meta(sketch) -> dict:
    loss_name = type(sketch.loss).__name__
    schedule = sketch.schedule
    schedule_name = type(schedule).__name__
    if loss_name not in _LOSSES:
        raise ValueError(f"cannot serialize custom loss {loss_name}")
    if schedule_name not in _SCHEDULES:
        raise ValueError(f"cannot serialize custom schedule {schedule_name}")
    return {
        "width": sketch.width,
        "depth": sketch.depth,
        "lambda_": sketch.lambda_,
        "seed": sketch.family.seed,
        "hash_kind": sketch.family.kind,
        "loss": loss_name,
        "schedule": schedule_name,
        "eta0": schedule.eta0,
        "t": sketch.t,
        "scale": sketch._scale,
        # Parallel-training provenance: how many independently trained
        # models were sum-merged into this one (1 = single-stream), so
        # restored checkpoints know their estimates sit on the
        # merged_from * w* scale.
        "merged_from": getattr(sketch, "merged_from", 1),
        # Kernel-backend provenance: the model's explicit override ("" =
        # none, follow the process default) round-trips through load;
        # trained_backend records which backend computed the state when
        # it was *first* checkpointed — a restored model keeps its
        # original provenance across re-saves instead of adopting the
        # current host's backend (informational either way: every
        # backend is bit-equivalent, so a checkpoint trained under
        # numba restores exactly on a numpy-only host).
        "backend": getattr(sketch, "backend", None) or "",
        "trained_backend": (
            getattr(sketch, "trained_backend", None) or sketch.kernels.name
        ),
    }


def save_sketch(sketch: WMSketch | AWMSketch, target: str | BinaryIO) -> None:
    """Serialize a WM- or AWM-Sketch to ``target`` (path or file object).

    Raises
    ------
    ValueError
        For custom (non-library) losses or schedules, which cannot be
        reconstructed from a name.
    """
    meta = _common_meta(sketch)
    arrays = {"table": sketch.table}
    if isinstance(sketch, AWMSketch):
        meta["kind"] = "awm"
        meta["heap_capacity"] = sketch.heap.capacity
        meta["n_promotions"] = sketch.n_promotions
        items = sketch.heap.items()
        arrays["heap_keys"] = np.array([k for k, _ in items], dtype=np.int64)
        arrays["heap_values"] = np.array(
            [v for _, v in items], dtype=np.float64
        )
    elif isinstance(sketch, WMSketch):
        meta["kind"] = "wm"
        meta["l1"] = sketch.l1
        meta["heap_capacity"] = (
            sketch.heap.capacity if sketch.heap is not None else 0
        )
        items = sketch.heap.items() if sketch.heap is not None else []
        arrays["heap_keys"] = np.array([k for k, _ in items], dtype=np.int64)
        arrays["heap_values"] = np.array(
            [v for _, v in items], dtype=np.float64
        )
    else:
        raise TypeError(f"cannot serialize {type(sketch).__name__}")
    meta_items = {f"meta_{k}": np.asarray(v) for k, v in meta.items()}
    np.savez(target, **arrays, **meta_items)


def load_sketch(source: str | BinaryIO) -> WMSketch | AWMSketch:
    """Reconstruct a sketch saved with :func:`save_sketch`."""
    with np.load(source, allow_pickle=False) as archive:
        meta = {
            key[5:]: archive[key].item()
            for key in archive.files
            if key.startswith("meta_")
        }
        table = archive["table"]
        heap_keys = archive["heap_keys"]
        heap_values = archive["heap_values"]

    loss = _LOSSES[meta["loss"]]()
    schedule = _SCHEDULES[meta["schedule"]](meta["eta0"])
    common = dict(
        width=int(meta["width"]),
        depth=int(meta["depth"]),
        loss=loss,
        lambda_=float(meta["lambda_"]),
        learning_rate=schedule,
        seed=int(meta["seed"]),
        hash_kind=str(meta["hash_kind"]),
        # Archives written before the kernels layer carry no backend:
        # those models follow the process default, exactly as before.
        backend=str(meta.get("backend", "")) or None,
    )
    if meta["kind"] == "awm":
        sketch = AWMSketch(
            heap_capacity=int(meta["heap_capacity"]), **common
        )
        sketch.n_promotions = int(meta["n_promotions"])
    else:
        sketch = WMSketch(
            heap_capacity=int(meta["heap_capacity"]),
            l1=float(meta["l1"]),
            **common,
        )
    sketch.table[:] = table
    sketch._scale = float(meta["scale"])
    sketch.t = int(meta["t"])
    # Archives written before the parallel subsystem lack the key;
    # those are single-stream models by definition.
    sketch.merged_from = int(meta.get("merged_from", 1))
    # Which backend computed the checkpointed state (provenance only).
    sketch.trained_backend = str(meta.get("trained_backend", "")) or None
    heap = sketch.heap
    if heap is not None and heap_keys.size:
        heap.push_many(heap_keys, heap_values)
    return sketch


def roundtrip_bytes(sketch: WMSketch | AWMSketch) -> bytes:
    """Serialize to an in-memory byte string (convenience for tests and
    message-passing deployments)."""
    buffer = io.BytesIO()
    save_sketch(sketch, buffer)
    return buffer.getvalue()


def from_bytes(payload: bytes) -> WMSketch | AWMSketch:
    """Inverse of :func:`roundtrip_bytes`."""
    return load_sketch(io.BytesIO(payload))
