"""The Weight-Median Sketch (Algorithm 1).

The WM-Sketch maintains a Count-Sketch-shaped array ``z`` (depth ``s``,
width ``k/s``) that holds a randomly-projected linear classifier.  The
projection is ``R = A / sqrt(s)`` where ``A`` is the Count-Sketch matrix
implicitly defined by per-row bucket hashes ``h_j`` and sign hashes
``sigma_j`` — the sparse Johnson-Lindenstrauss transform of Kane & Nelson
(2014), which is what makes the recovery analysis (Theorem 1) go through.

Update (online gradient descent on the compressed loss):

.. math::

    z \\leftarrow (1 - \\lambda \\eta_t) z
        - \\eta_t \\, y \\, \\ell'(y z^T R x) \\, R x

Query (Count-Sketch recovery on ``sqrt(s) z``):

.. math::

    \\hat w_i = \\mathrm{median}_j \\{ \\sqrt{s} \\,
        \\sigma_j(i) \\, z_{j, h_j(i)} \\}

The L2 decay is applied lazily through a global scale ``alpha``
(Section 5.1, "Efficient Regularization"), giving O(s * nnz(x)) updates.
The table / scale / margin / recovery machinery is shared with the
AWM-Sketch through :class:`~repro.core.sketch_table.ScaledSketchTable`.

For the evaluation's top-K queries, the class can *passively* maintain a
heap of the heaviest estimated weights over features it has seen — the
same construction heavy-hitters sketches use.  Unlike the AWM-Sketch's
active set, this heap never feeds back into the learning updates.

Batched updates: :meth:`WMSketch.fit_batch` consumes a whole
:class:`~repro.data.batch.SparseBatch`, hashing the batch's (deduped)
index set in one vectorized call and replaying the per-example gradient
sequence over the precomputed rows — bit-identical state to calling
:meth:`update` per example, at a fraction of the interpreter overhead.
"""

from __future__ import annotations

import numpy as np

from repro.core.sketch_table import _RENORM_THRESHOLD, ScaledSketchTable
from repro.data.batch import SparseBatch
from repro.data.sparse import SparseExample
from repro.heap.topk import BatchSlotCache, TopKStore
from repro.learning.base import CELL_BYTES
from repro.learning.losses import Loss
from repro.learning.schedules import Schedule

__all__ = ["WMSketch", "_RENORM_THRESHOLD"]


class WMSketch(ScaledSketchTable):
    """Weight-Median Sketch: a sketched online linear classifier.

    Parameters
    ----------
    width:
        Buckets per row (``k / s`` in the paper's notation).
    depth:
        Number of rows ``s``.
    loss:
        Margin loss defining the model (default: logistic regression).
    lambda_:
        L2-regularization strength (Eq. 1); Theorem 1's sketch sizes
        scale as 1/lambda, and Fig. 5 shows recovery error falling as
        lambda grows.
    learning_rate:
        Schedule or float eta0 (paper default 0.1).
    seed:
        Hash-family seed (the randomness the guarantee is over).
    heap_capacity:
        If > 0, passively track the top features by estimated weight so
        ``top_weights`` is O(K log K) instead of requiring a candidate
        scan.  Charged 2 cells (id + weight) per slot.
    l1:
        Optional elastic-net-style l1 shrinkage applied to sketch
        estimates at query time (soft threshold); Section 6.1's "Weight
        Sparsity" remark.  0 disables.
    hash_kind:
        "tabulation" (default) or "polynomial" hash family.
    backend:
        Kernel-backend override for every hot loop (hashing, margins,
        scatters, recovery, heap screens); ``None`` follows the process
        default (see :mod:`repro.kernels`).  Results are bit-identical
        across backends.
    """

    def __init__(
        self,
        width: int,
        depth: int,
        loss: Loss | None = None,
        lambda_: float = 1e-6,
        learning_rate: Schedule | float = 0.1,
        seed: int = 0,
        heap_capacity: int = 128,
        l1: float = 0.0,
        hash_kind: str = "tabulation",
        backend: str | None = None,
    ):
        if l1 < 0:
            raise ValueError(f"l1 must be >= 0, got {l1}")
        super().__init__(
            width,
            depth,
            loss=loss,
            lambda_=lambda_,
            learning_rate=learning_rate,
            seed=seed,
            hash_kind=hash_kind,
            backend=backend,
        )
        self.l1 = l1
        self.heap: TopKStore | None = (
            TopKStore(heap_capacity, backend=backend)
            if heap_capacity > 0 else None
        )

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_margin(self, x: SparseExample) -> float:
        buckets, signs = self._rows(x.indices)
        return self._margin_from_rows(buckets, signs, x.values)

    def predict_batch(self, batch: SparseBatch) -> np.ndarray:
        """Margins for a whole batch with one hash + one segment-sum.

        Read-only, so this is fully vectorized (no sequential replay);
        margins agree with per-example :meth:`predict_margin` to float
        summation-order differences (<= 1e-12 relative in practice).
        """
        n = len(batch)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        buckets, signs = self._batch_hasher.rows(batch.indices)
        rows = np.arange(self.depth)[:, None]
        contrib = (self.table[rows, buckets] * (signs * batch.values)).sum(
            axis=0
        )
        seg = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(batch.indptr)
        )
        sums = np.bincount(seg, weights=contrib, minlength=n)
        return self._scale * sums / self._sqrt_s

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def update(self, x: SparseExample) -> None:
        y = x.label
        buckets, signs = self._rows(x.indices)
        sign_values = signs * x.values
        tau = self._margin_from_products(buckets, sign_values)
        g = self.loss.dloss(y * tau)
        eta = self.schedule(self.t)
        if self.lambda_ > 0.0:
            self._decay_scale(self._decay_factor(eta))
        # z <- z - eta * y * g * R x   (R = A / sqrt(s)), done on the raw
        # table so the stored state is z / scale.
        coeff = -eta * y * g / (self._sqrt_s * self._scale)
        self._scatter_add(buckets, coeff * sign_values)
        self.t += 1
        if self.heap is not None:
            self._maintain_heap(x.indices, buckets, signs)

    def fit_batch(
        self,
        batch: SparseBatch,
        rows: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Mini-batch update kernel: hash once, replay the sequence.

        The batch's whole index set is hashed in a single deduplicated
        vectorized call and the sign*value products are formed once;
        the per-example gradient steps are then replayed in stream
        order over array views, preserving the sequential semantics
        (state is bit-identical to per-example :meth:`update` calls).
        Returns the pre-update margins.

        ``rows`` may carry precomputed ``(buckets, signs)`` for
        ``batch.indices`` (shape ``(depth, nnz)``), as produced by the
        pipelined ingestion path's prefetch hasher; hashes are pure, so
        supplied rows are interchangeable with hashing here.
        """
        n = len(batch)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        if rows is None:
            buckets, signs = self._batch_hasher.rows(batch.indices)
        else:
            buckets, signs = rows
        sign_values = signs * batch.values
        flat = buckets + self._row_offsets
        etas = self.schedule.many(self.t, n)
        indptr = batch.indptr.tolist()
        labels = batch.labels.tolist()
        indices = batch.indices
        heap = self.heap
        # Heap membership for the whole batch, answered once and patched
        # per admission/eviction (see BatchSlotCache).
        slot_cache: BatchSlotCache | None = None
        promo_log: list = []
        if heap is not None:
            slot_cache = BatchSlotCache(heap, indices)
        # The loop below is the same arithmetic as :meth:`update` with
        # the margin / decay / scatter helpers inlined — every method
        # call costs ~0.5us of frame overhead at this granularity.  The
        # kernel backend is resolved once and its functions bound to
        # locals for the whole batch.
        kb = self.kernels
        margin_k = kb.margin
        scatter_k = kb.scatter_add
        dloss = self.loss.dloss
        table_flat = self._table_flat
        sqrt_s = self._sqrt_s
        lam = self.lambda_
        margins = [0.0] * n
        lo = indptr[0]
        for i in range(n):
            hi = indptr[i + 1]
            fb = flat[:, lo:hi]
            sv = sign_values[:, lo:hi]
            scale = self._scale
            tau = margin_k(table_flat, fb, sv, scale, sqrt_s)
            margins[i] = tau
            y = labels[i]
            g = dloss(y * tau)
            eta = etas[i]
            if lam > 0.0:
                decay = 1.0 - eta * lam
                if decay <= 0.0:
                    raise ValueError(
                        f"eta * lambda = {eta * lam} >= 1; decrease eta0"
                    )
                scale *= decay
                if scale < _RENORM_THRESHOLD:
                    self.table *= scale
                    scale = 1.0
                self._scale = scale
            scatter_k(table_flat, fb, (-eta * y * g / (sqrt_s * scale)) * sv)
            self.t += 1
            if heap is not None:
                if slot_cache.stale:
                    slot_cache = BatchSlotCache(
                        heap, indices, reuse=slot_cache
                    )
                self._maintain_heap(
                    indices[lo:hi],
                    buckets[:, lo:hi],
                    signs[:, lo:hi],
                    flat_buckets=fb,
                    slots=slot_cache.slice(lo, hi),
                    promo_log=promo_log,
                )
                if promo_log:
                    for admitted, evicted in promo_log:
                        slot_cache.apply(admitted, evicted)
                    promo_log.clear()
            lo = hi
        return np.asarray(margins)

    def _maintain_heap(
        self,
        indices: np.ndarray,
        buckets: np.ndarray,
        signs: np.ndarray,
        flat_buckets: np.ndarray | None = None,
        slots: np.ndarray | None = None,
        promo_log: list | None = None,
    ) -> None:
        """Passive heavy-weight tracking after one example's update.

        Only touches the heap when an estimate could change its contents
        (member refresh, free slot, or beating the current minimum).
        When the heap is full, none of the example's features are
        members, and even the largest row magnitude cannot beat the
        admission threshold, the median recovery is skipped entirely —
        no candidate could be admitted, so recomputing estimates would
        be pure waste.

        The store turned the per-feature probe-and-sift loop into three
        vectorized strokes: one membership probe (or a precomputed
        ``slots`` view from the batched kernel's
        :class:`~repro.heap.topk.BatchSlotCache`), one
        :meth:`~repro.heap.topk.TopKStore.set_many` refreshing every
        member's estimate, and one screen selecting the candidates that
        beat the admission threshold — members are refreshed before
        candidates are judged (the threshold candidates face is the one
        left by this example's refreshed members), and the surviving
        candidates re-check the live minimum in order, exactly as
        sequential pushes would.
        """
        heap = self.heap
        screen_k = self.kernels.screen_abs_gt
        if slots is None:
            slots = heap.member_slots(indices)
        member = slots >= 0
        any_member = bool(member.any())
        if heap.is_full:
            if not any_member:
                bound = self._estimate_bound(
                    buckets, flat_buckets=flat_buckets
                )
                if bound <= heap.min_priority():
                    return
                estimates = self._estimate_from_rows(
                    buckets, signs, flat_buckets=flat_buckets
                )
                cand = screen_k(estimates, heap.min_priority())
            else:
                estimates = self._estimate_from_rows(
                    buckets, signs, flat_buckets=flat_buckets
                )
                heap.set_many(slots[member], estimates[member])
                if member.all():
                    return
                cand = screen_k(estimates, heap.min_priority())
                cand = cand[~member[cand]]
            for pos in cand.tolist():
                idx = int(indices[pos])
                w = float(estimates[pos])
                # Re-check the live threshold: earlier admissions can
                # only have raised it.  A duplicate feature admitted
                # earlier in this example updates in place via push.
                if idx in heap:
                    heap.push(idx, w)
                elif abs(w) > heap.min_priority():
                    evicted = heap.push(idx, w)
                    if promo_log is not None:
                        promo_log.append(
                            (idx, evicted[0] if evicted else None)
                        )
        else:
            estimates = self._estimate_from_rows(
                buckets, signs, flat_buckets=flat_buckets
            )
            # Free slots remain: sequential admits (the heap can fill
            # mid-example, after which the threshold rule applies).
            push = heap.push
            minp = None
            for idx, w in zip(indices.tolist(), estimates.tolist()):
                if idx in heap:
                    push(idx, w)
                    minp = None
                elif not heap.is_full:
                    push(idx, w)
                    minp = None
                    if promo_log is not None:
                        promo_log.append((idx, None))
                else:
                    if minp is None:
                        minp = heap.min_priority()
                    if abs(w) > minp:
                        evicted = push(idx, w)
                        minp = None
                        if promo_log is not None:
                            promo_log.append(
                                (idx, evicted[0] if evicted else None)
                            )

    # ------------------------------------------------------------------
    # Merging (distributed / sharded training)
    # ------------------------------------------------------------------
    def merge(self, *others: "WMSketch") -> "WMSketch":
        """Sum-merge sharded WM-Sketches; rebuild the passive heap.

        The table merge is the exact linear summation of
        :meth:`ScaledSketchTable.merge`.  The passive top-K heap is then
        *re-estimated*: worker heaps hold estimates against their own
        (pre-merge) tables, which are stale once tables are summed, so
        the union of all workers' tracked feature ids is re-queried
        against the merged table and the heaviest ``capacity`` survive.
        Recovery over the union of tracked candidates is approximate in
        the same sense single-stream passive tracking is — features
        never tracked by any worker cannot surface.

        A heap-less ``self`` *adopts* tracking (at the largest donor
        capacity) when any donor carries a heap, so merging never
        silently discards a model's tracked candidates whichever side
        of the merge it lands on.
        """
        if not others:
            return self
        super().merge(*others)
        capacity = self.heap.capacity if self.heap is not None else 0
        candidates: set[int] = (
            {k for k, _ in self.heap.items()} if self.heap is not None
            else set()
        )
        for other in others:
            if other.heap is not None:
                capacity = max(capacity, other.heap.capacity)
                candidates.update(k for k, _ in other.heap.items())
        if capacity > 0:
            self.heap = TopKStore(capacity, backend=self.backend)
            self._repromote(self.heap, candidates, self.estimate_weights)
        return self

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def estimate_weights(self, indices: np.ndarray) -> np.ndarray:
        """Count-Sketch recovery: median over rows of sqrt(s)*alpha*sigma*z."""
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        buckets, signs = self._rows(indices)
        return self._estimate_from_rows(buckets, signs)

    def top_weights(self, k: int) -> list[tuple[int, float]]:
        """Top-k features among the passively tracked heap.

        Estimates are refreshed against the current sketch state before
        ranking, since heap snapshots can be stale.
        """
        if self.heap is None:
            raise RuntimeError(
                "construct with heap_capacity > 0 (or query "
                "estimate_weights over a candidate set) for top_weights"
            )
        candidates = np.array([i for i, _ in self.heap.items()], dtype=np.int64)
        if candidates.size == 0:
            return []
        est = self.estimate_weights(candidates)
        order = np.argsort(-np.abs(est))
        return [(int(candidates[i]), float(est[i])) for i in order[:k]]

    def top_weights_from_candidates(
        self, candidates: np.ndarray, k: int
    ) -> list[tuple[int, float]]:
        """Top-k estimated weights over an explicit candidate feature set."""
        candidates = np.atleast_1d(np.asarray(candidates, dtype=np.int64))
        est = self.estimate_weights(candidates)
        if k < candidates.size:
            part = np.argpartition(-np.abs(est), k)[:k]
        else:
            part = np.arange(candidates.size)
        order = part[np.argsort(-np.abs(est[part]))]
        return [(int(candidates[i]), float(est[i])) for i in order[:k]]

    # ------------------------------------------------------------------
    @property
    def memory_cost_bytes(self) -> int:
        heap_cells = 2 * self.heap.capacity if self.heap is not None else 0
        return CELL_BYTES * (self.size + heap_cells)
