"""The Weight-Median Sketch (Algorithm 1).

The WM-Sketch maintains a Count-Sketch-shaped array ``z`` (depth ``s``,
width ``k/s``) that holds a randomly-projected linear classifier.  The
projection is ``R = A / sqrt(s)`` where ``A`` is the Count-Sketch matrix
implicitly defined by per-row bucket hashes ``h_j`` and sign hashes
``sigma_j`` — the sparse Johnson-Lindenstrauss transform of Kane & Nelson
(2014), which is what makes the recovery analysis (Theorem 1) go through.

Update (online gradient descent on the compressed loss):

.. math::

    z \\leftarrow (1 - \\lambda \\eta_t) z
        - \\eta_t \\, y \\, \\ell'(y z^T R x) \\, R x

Query (Count-Sketch recovery on ``sqrt(s) z``):

.. math::

    \\hat w_i = \\mathrm{median}_j \\{ \\sqrt{s} \\,
        \\sigma_j(i) \\, z_{j, h_j(i)} \\}

The L2 decay is applied lazily through a global scale ``alpha``
(Section 5.1, "Efficient Regularization"), giving O(s * nnz(x)) updates.
The table / scale / margin / recovery machinery is shared with the
AWM-Sketch through :class:`~repro.core.sketch_table.ScaledSketchTable`.

For the evaluation's top-K queries, the class can *passively* maintain a
heap of the heaviest estimated weights over features it has seen — the
same construction heavy-hitters sketches use.  Unlike the AWM-Sketch's
active set, this heap never feeds back into the learning updates.

Batched updates: :meth:`WMSketch.fit_batch` consumes a whole
:class:`~repro.data.batch.SparseBatch`, hashing the batch's (deduped)
index set in one vectorized call and replaying the per-example gradient
sequence over the precomputed rows — bit-identical state to calling
:meth:`update` per example, at a fraction of the interpreter overhead.
"""

from __future__ import annotations

import math

import numpy as np

from repro import kernels
from repro.core.sketch_table import _RENORM_THRESHOLD, ScaledSketchTable
from repro.data.batch import SparseBatch
from repro.data.sparse import SparseExample
from repro.heap.topk import BatchSlotCache, TopKStore
from repro.learning.base import CELL_BYTES
from repro.learning.losses import Loss
from repro.learning.schedules import Schedule
from repro.telemetry import trace as _trace

__all__ = ["WMSketch", "_RENORM_THRESHOLD"]


class WMSketch(ScaledSketchTable):
    """Weight-Median Sketch: a sketched online linear classifier.

    Parameters
    ----------
    width:
        Buckets per row (``k / s`` in the paper's notation).
    depth:
        Number of rows ``s``.
    loss:
        Margin loss defining the model (default: logistic regression).
    lambda_:
        L2-regularization strength (Eq. 1); Theorem 1's sketch sizes
        scale as 1/lambda, and Fig. 5 shows recovery error falling as
        lambda grows.
    learning_rate:
        Schedule or float eta0 (paper default 0.1).
    seed:
        Hash-family seed (the randomness the guarantee is over).
    heap_capacity:
        If > 0, passively track the top features by estimated weight so
        ``top_weights`` is O(K log K) instead of requiring a candidate
        scan.  Charged 2 cells (id + weight) per slot.
    l1:
        Optional elastic-net-style l1 shrinkage applied to sketch
        estimates at query time (soft threshold); Section 6.1's "Weight
        Sparsity" remark.  0 disables.
    hash_kind:
        "tabulation" (default) or "polynomial" hash family.
    backend:
        Kernel-backend override for every hot loop (hashing, margins,
        scatters, recovery, heap screens); ``None`` follows the process
        default (see :mod:`repro.kernels`).  Results are bit-identical
        across backends.
    """

    #: The WM-Sketch is fully described by (raw chunks, scale, fold
    #: log, clock) + a re-estimable passive heap, so it supports the
    #: O(dirty) parameter-server protocol (:mod:`repro.parallel.ps`).
    ps_delta_sync = True

    def __init__(
        self,
        width: int,
        depth: int,
        loss: Loss | None = None,
        lambda_: float = 1e-6,
        learning_rate: Schedule | float = 0.1,
        seed: int = 0,
        heap_capacity: int = 128,
        l1: float = 0.0,
        hash_kind: str = "tabulation",
        backend: str | None = None,
    ):
        if l1 < 0:
            raise ValueError(f"l1 must be >= 0, got {l1}")
        super().__init__(
            width,
            depth,
            loss=loss,
            lambda_=lambda_,
            learning_rate=learning_rate,
            seed=seed,
            hash_kind=hash_kind,
            backend=backend,
        )
        self.l1 = l1
        self.heap: TopKStore | None = (
            TopKStore(heap_capacity, backend=backend)
            if heap_capacity > 0 else None
        )

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_margin(self, x: SparseExample) -> float:
        buckets, signs = self._rows(x.indices)
        return self._margin_from_rows(buckets, signs, x.values)

    def predict_batch(self, batch: SparseBatch) -> np.ndarray:
        """Margins for a whole batch — the serving fast path.

        One cached, deduplicated hash for the whole batch plus a single
        ``fused_predict`` kernel call over workspace buffers.  Unlike
        the earlier segment-sum implementation (which agreed with the
        scalar path only to summation-order float differences), the
        fused kernel computes each example's *exactly rounded* margin —
        **bit-identical** to per-example :meth:`predict_margin`, so a
        served score does not depend on how requests were batched.
        """
        n = len(batch)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        _, _, sign_values, flat = self._batch_rows(batch, None)
        out = np.empty(n, dtype=np.float64)
        self.kernels.fused_predict(
            self._table_flat, self._translate_flat(flat), sign_values,
            batch.indptr, self._scale, self._sqrt_s, out,
            kernels.EMPTY_SCRATCH,
        )
        return out

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def update(self, x: SparseExample) -> None:
        y = x.label
        buckets, signs = self._rows(x.indices)
        sign_values = signs * x.values
        tau = self._margin_from_products(buckets, sign_values)
        g = self.loss.dloss(y * tau)
        eta = self.schedule(self.t)
        if self.lambda_ > 0.0:
            self._decay_scale(self._decay_factor(eta))
        # z <- z - eta * y * g * R x   (R = A / sqrt(s)), done on the raw
        # table so the stored state is z / scale.
        coeff = -eta * y * g / (self._sqrt_s * self._scale)
        self._scatter_add(buckets, coeff * sign_values)
        self.t += 1
        if self.heap is not None:
            self._maintain_heap(x.indices, buckets, signs)

    def fit_batch(
        self,
        batch: SparseBatch,
        rows: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Mini-batch update kernel: hash once, fuse the replay.

        The batch's whole index set is hashed in a single deduplicated
        (cached) call into workspace arenas, and the entire per-example
        sequence — exactly-rounded margin, loss derivative, lazy decay,
        eta-scaled scatter — runs as **one** ``fused_update`` kernel
        call over preallocated buffers: zero steady-state allocations
        and no per-example kernel dispatch, with state bit-identical to
        per-example :meth:`update` calls.  Returns the pre-update
        margins.

        With a passive heap attached, the fused kernel additionally
        records each example's post-update gathered cells and scale, and
        the heap-maintain pass replays its admission decisions from the
        recording afterwards — the WM heap never feeds back into the
        table, so the decoupling is exact (fuzz-checked in
        ``tests/test_fused_kernels.py``).

        ``rows`` may carry precomputed ``(buckets, signs)`` for
        ``batch.indices`` (shape ``(depth, nnz)``), as produced by the
        pipelined ingestion path's prefetch hasher; hashes are pure, so
        supplied rows are interchangeable with hashing here.

        Losses without a kernel id (custom losses) and
        ``use_fused=False`` take the original per-kernel chain
        (:meth:`_fit_batch_unfused`) — the executable reference for the
        fused path.  One visible difference: an invalid decay
        (``eta * lambda >= 1``) raises *before* any update on the fused
        path, where the unfused chain raises mid-batch.
        """
        n = len(batch)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        if not self.use_fused or self.loss.kernel_id is None:
            return self._fit_batch_unfused(batch, rows)
        # The enabled check runs before any span allocation, so the
        # disabled cost is one flag read plus one extra call — the
        # telemetry overhead contract gated by BENCH_telemetry.json.
        if _trace.enabled:
            with _trace.span("fit_batch", model="WMSketch", n=n):
                return self._fit_batch_fused(batch, rows, n)
        return self._fit_batch_fused(batch, rows, n)

    def _fit_batch_fused(
        self,
        batch: SparseBatch,
        rows: tuple[np.ndarray, np.ndarray] | None,
        n: int,
    ) -> np.ndarray:
        """The fused :meth:`fit_batch` body, with per-phase trace spans
        (no-ops while tracing is disabled)."""
        with _trace.span("hash"):
            buckets, signs, sign_values, flat = self._batch_rows(batch, rows)
        ws = self._ws
        nnz = batch.indices.size
        etas = ws.array("etas", n)
        etas[:] = self.schedule.many(self.t, n)
        self._check_decay_window(etas)
        margins = np.empty(n, dtype=np.float64)
        heap = self.heap
        if heap is None:
            gathered = kernels.EMPTY_GATHER
            scales = kernels.EMPTY_SCALES
        else:
            gathered = ws.array("gathered", (nnz, self.depth))
            scales = ws.array("scales", n)
        # Full-recording touched stream: the kernel writes every
        # scattered flat index (plus the renorm-fold count in slot 0),
        # and the dirty bitmap is fed from the recording afterwards —
        # the kernel has no mid-batch raise paths (the decay window was
        # validated above), so marking after the call cannot miss
        # writes.
        touched = ws.array("touched", 1 + self.depth * nnz, np.int64)
        with _trace.span("fused_update"):
            self._scale = self.kernels.fused_update(
                self._table_flat, flat, sign_values, batch.indptr,
                batch.labels, etas, self.lambda_, self._scale, self._sqrt_s,
                self.loss.kernel_id, self.loss.kernel_param,
                margins, gathered, scales, kernels.EMPTY_SCRATCH, touched,
            )
        if touched[0]:
            # A renorm fold rewrote every bucket mid-batch.
            self._note_renorm_folds(int(touched[0]))
            self._mark_dirty_all()
        else:
            self._mark_dirty_flat(touched[1:])
        self.t += n
        if heap is not None and nnz:
            with _trace.span("heap_maintain"):
                self._maintain_batch_recorded(batch, signs, gathered, scales)
        return margins

    def _maintain_batch_recorded(
        self,
        batch: SparseBatch,
        signs: np.ndarray,
        gathered: np.ndarray,
        scales: np.ndarray,
    ) -> None:
        """Replay the passive heap maintenance from the fused kernel's
        recording.

        ``gathered[lo:hi]`` holds example ``i``'s table cells exactly
        as they stood after its own update (and any renormalization),
        and ``scales[i]`` the scale at that moment — everything
        :meth:`_maintain_heap` read from the live table mid-replay, so
        admission decisions are identical.  The per-example estimate
        *bounds* collapse to one vectorized max-reduce over the whole
        batch, and the raw medians (factor-independent) are computed in
        one vectorized pass over workspace arenas, lazily, only if some
        example actually needs estimates.
        """
        heap = self.heap
        indices = batch.indices
        nnz = indices.size
        n = len(batch)
        ws = self._ws
        absg = ws.array("absg", (nnz, self.depth))
        np.abs(gathered, out=absg)
        rowmax = ws.array("rowmax", nnz)
        np.max(absg, axis=1, out=rowmax)
        raw_bounds = ws.array("raw_bounds", n)
        # reduceat over the *non-empty* segment starts only: an empty
        # example's start equals its successor's, and a trailing empty
        # one would force an out-of-range (or, if clipped, segment-
        # splitting) offset that corrupts the preceding example's
        # bound.  Dropping empty starts keeps every remaining segment
        # [lo_i, lo_next) == [lo_i, hi_i) exactly; the skipped
        # examples' bound slots are never read (the replay loop skips
        # empty examples).
        nonempty = np.flatnonzero(np.diff(batch.indptr) > 0)
        if nonempty.size:
            compact = ws.array("raw_bounds_c", nonempty.size)
            np.maximum.reduceat(
                rowmax, batch.indptr[:-1][nonempty], out=compact
            )
            raw_bounds[nonempty] = compact
        est_arena = ws.array("est", nnz)
        raw_med: np.ndarray | None = None
        slot_cache = BatchSlotCache(heap, indices, ws=ws)
        promo_log: list = []
        indptr = batch.indptr.tolist()
        sqrt_s = self._sqrt_s
        depth_one = self.depth == 1
        lo = indptr[0]
        for i in range(n):
            hi = indptr[i + 1]
            if hi == lo:
                continue
            if slot_cache.stale:
                slot_cache = BatchSlotCache(
                    heap, indices, reuse=slot_cache, ws=ws
                )
            scale = float(scales[i])
            factor = scale if depth_one else sqrt_s * scale

            def estimates_for(lo=lo, hi=hi, factor=factor):
                nonlocal raw_med
                if raw_med is None:
                    # Raw (factor = 1) medians for the whole batch in
                    # one pass over workspace arenas — the exact value
                    # selection of the median_estimate kernel (product,
                    # row sort, middle pick); per-example estimates are
                    # then the recorded factor times the slice, the
                    # same floats median_estimate(..., factor) yields.
                    raw_med = ws.array("med", nnz)
                    if self.depth == 1:
                        np.multiply(
                            signs[0], gathered[:, 0], out=raw_med
                        )
                    else:
                        rows = ws.array("med_rows", (nnz, self.depth))
                        np.multiply(signs.T, gathered, out=rows)
                        rows.sort(axis=1)
                        mid = self.depth // 2
                        if self.depth % 2:
                            np.copyto(raw_med, rows[:, mid])
                        else:
                            np.add(
                                rows[:, mid - 1], rows[:, mid],
                                out=raw_med,
                            )
                            raw_med *= 0.5
                est = est_arena[lo:hi]
                np.multiply(raw_med[lo:hi], factor, out=est)
                if self.l1 > 0.0:
                    est = np.sign(est) * np.maximum(
                        np.abs(est) - self.l1, 0.0
                    )
                return est

            if depth_one:
                bound = scale * float(raw_bounds[i])
            else:
                bound = sqrt_s * scale * float(raw_bounds[i])
            if self.l1 > 0.0:
                bound = max(bound - self.l1, 0.0)
            self._maintain_decide(
                indices[lo:hi],
                slot_cache.slice(lo, hi),
                lambda bound=bound: bound,
                estimates_for,
                promo_log,
            )
            if promo_log:
                for admitted, evicted in promo_log:
                    slot_cache.apply(admitted, evicted)
                promo_log.clear()
            lo = hi

    def _maintain_decide(
        self,
        indices: np.ndarray,
        slots: np.ndarray,
        bound_for,
        estimates_for,
        promo_log: list | None,
    ) -> None:
        """The admission-decision core shared by the live
        (:meth:`_maintain_heap`) and recorded
        (:meth:`_maintain_batch_recorded`) maintain paths.

        ``bound_for()`` / ``estimates_for()`` lazily provide the
        estimate bound and the per-feature estimates — from the live
        table on the unfused path, from the fused kernel's recording on
        the fused path — so the decision structure exists exactly once
        and the two paths cannot drift apart.
        """
        heap = self.heap
        screen_k = self.kernels.screen_abs_gt
        member = slots >= 0
        any_member = bool(member.any())
        if heap.is_full:
            if not any_member:
                if bound_for() <= heap.min_priority():
                    return
                estimates = estimates_for()
                cand = screen_k(estimates, heap.min_priority())
            else:
                estimates = estimates_for()
                heap.set_many(slots[member], estimates[member])
                if member.all():
                    return
                cand = screen_k(estimates, heap.min_priority())
                cand = cand[~member[cand]]
            for pos in cand.tolist():
                idx = int(indices[pos])
                w = float(estimates[pos])
                # Re-check the live threshold: earlier admissions can
                # only have raised it.  A duplicate feature admitted
                # earlier in this example updates in place via push.
                if idx in heap:
                    heap.push(idx, w)
                elif abs(w) > heap.min_priority():
                    evicted = heap.push(idx, w)
                    if promo_log is not None:
                        promo_log.append(
                            (idx, evicted[0] if evicted else None)
                        )
        else:
            estimates = estimates_for()
            # Free slots remain: sequential admits (the heap can fill
            # mid-example, after which the threshold rule applies).
            push = heap.push
            minp = None
            for idx, w in zip(indices.tolist(), estimates.tolist()):
                if idx in heap:
                    push(idx, w)
                    minp = None
                elif not heap.is_full:
                    push(idx, w)
                    minp = None
                    if promo_log is not None:
                        promo_log.append((idx, None))
                else:
                    if minp is None:
                        minp = heap.min_priority()
                    if abs(w) > minp:
                        evicted = push(idx, w)
                        minp = None
                        if promo_log is not None:
                            promo_log.append(
                                (idx, evicted[0] if evicted else None)
                            )

    def _fit_batch_unfused(
        self,
        batch: SparseBatch,
        rows: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """The original per-kernel mini-batch chain (pre-fusion).

        Retained verbatim as the executable reference the fused path is
        fuzz-checked against, and as the fallback for custom losses the
        kernels cannot represent.  State is bit-identical to per-example
        :meth:`update` calls *and* to the fused path.
        """
        n = len(batch)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        if rows is None:
            buckets, signs = self._batch_hasher.rows(batch.indices)
        else:
            buckets, signs = rows
        sign_values = signs * batch.values
        flat = buckets + self._row_offsets
        # Mark the whole batch's scatter targets dirty up front: the
        # decay check below can raise mid-batch, after some examples
        # already scattered — over-marking is always safe, a missed
        # write never is.
        self._mark_dirty_flat(flat)
        etas = self.schedule.many(self.t, n)
        indptr = batch.indptr.tolist()
        labels = batch.labels.tolist()
        indices = batch.indices
        heap = self.heap
        # Heap membership for the whole batch, answered once and patched
        # per admission/eviction (see BatchSlotCache).
        slot_cache: BatchSlotCache | None = None
        promo_log: list = []
        if heap is not None:
            slot_cache = BatchSlotCache(heap, indices)
        # The loop below is the same arithmetic as :meth:`update` with
        # the margin / decay / scatter helpers inlined — every method
        # call costs ~0.5us of frame overhead at this granularity.  The
        # kernel backend is resolved once and its functions bound to
        # locals for the whole batch.
        kb = self.kernels
        margin_k = kb.margin
        scatter_k = kb.scatter_add
        dloss = self.loss.dloss
        table_flat = self._table_flat
        sqrt_s = self._sqrt_s
        lam = self.lambda_
        margins = [0.0] * n
        lo = indptr[0]
        for i in range(n):
            hi = indptr[i + 1]
            fb = flat[:, lo:hi]
            sv = sign_values[:, lo:hi]
            scale = self._scale
            tau = margin_k(table_flat, fb, sv, scale, sqrt_s)
            margins[i] = tau
            y = labels[i]
            g = dloss(y * tau)
            eta = etas[i]
            if lam > 0.0:
                decay = 1.0 - eta * lam
                if decay <= 0.0:
                    raise ValueError(
                        f"eta * lambda = {eta * lam} >= 1; decrease eta0"
                    )
                scale *= decay
                if scale < _RENORM_THRESHOLD:
                    self._fold_log += math.log(scale)
                    self.table *= scale
                    scale = 1.0
                    self._mark_dirty_all()
                self._scale = scale
            scatter_k(table_flat, fb, (-eta * y * g / (sqrt_s * scale)) * sv)
            self.t += 1
            if heap is not None:
                if slot_cache.stale:
                    slot_cache = BatchSlotCache(
                        heap, indices, reuse=slot_cache
                    )
                self._maintain_heap(
                    indices[lo:hi],
                    buckets[:, lo:hi],
                    signs[:, lo:hi],
                    flat_buckets=fb,
                    slots=slot_cache.slice(lo, hi),
                    promo_log=promo_log,
                )
                if promo_log:
                    for admitted, evicted in promo_log:
                        slot_cache.apply(admitted, evicted)
                    promo_log.clear()
            lo = hi
        return np.asarray(margins)

    def _maintain_heap(
        self,
        indices: np.ndarray,
        buckets: np.ndarray,
        signs: np.ndarray,
        flat_buckets: np.ndarray | None = None,
        slots: np.ndarray | None = None,
        promo_log: list | None = None,
    ) -> None:
        """Passive heavy-weight tracking after one example's update.

        Only touches the heap when an estimate could change its contents
        (member refresh, free slot, or beating the current minimum).
        When the heap is full, none of the example's features are
        members, and even the largest row magnitude cannot beat the
        admission threshold, the median recovery is skipped entirely —
        no candidate could be admitted, so recomputing estimates would
        be pure waste.

        The store turned the per-feature probe-and-sift loop into three
        vectorized strokes: one membership probe (or a precomputed
        ``slots`` view from the batched kernel's
        :class:`~repro.heap.topk.BatchSlotCache`), one
        :meth:`~repro.heap.topk.TopKStore.set_many` refreshing every
        member's estimate, and one screen selecting the candidates that
        beat the admission threshold — members are refreshed before
        candidates are judged (the threshold candidates face is the one
        left by this example's refreshed members), and the surviving
        candidates re-check the live minimum in order, exactly as
        sequential pushes would.  The decision structure itself lives
        in :meth:`_maintain_decide`, shared with the fused replay.
        """
        if slots is None:
            slots = self.heap.member_slots(indices)
        self._maintain_decide(
            indices,
            slots,
            lambda: self._estimate_bound(
                buckets, flat_buckets=flat_buckets
            ),
            lambda: self._estimate_from_rows(
                buckets, signs, flat_buckets=flat_buckets
            ),
            promo_log,
        )

    # ------------------------------------------------------------------
    # Merging (distributed / sharded training)
    # ------------------------------------------------------------------
    def merge(self, *others: "WMSketch") -> "WMSketch":
        """Sum-merge sharded WM-Sketches; rebuild the passive heap.

        The table merge is the exact linear summation of
        :meth:`ScaledSketchTable.merge`.  The passive top-K heap is then
        *re-estimated*: worker heaps hold estimates against their own
        (pre-merge) tables, which are stale once tables are summed, so
        the union of all workers' tracked feature ids is re-queried
        against the merged table and the heaviest ``capacity`` survive.
        Recovery over the union of tracked candidates is approximate in
        the same sense single-stream passive tracking is — features
        never tracked by any worker cannot surface.

        A heap-less ``self`` *adopts* tracking (at the largest donor
        capacity) when any donor carries a heap, so merging never
        silently discards a model's tracked candidates whichever side
        of the merge it lands on.
        """
        if not others:
            return self
        super().merge(*others)
        capacity = self.heap.capacity if self.heap is not None else 0
        candidates: set[int] = (
            {k for k, _ in self.heap.items()} if self.heap is not None
            else set()
        )
        for other in others:
            if other.heap is not None:
                capacity = max(capacity, other.heap.capacity)
                candidates.update(k for k, _ in other.heap.items())
        if capacity > 0:
            self.heap = TopKStore(capacity, backend=self.backend)
            self._repromote(self.heap, candidates, self.estimate_weights)
        return self

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def estimate_weights(self, indices: np.ndarray) -> np.ndarray:
        """Count-Sketch recovery: median over rows of sqrt(s)*alpha*sigma*z."""
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        buckets, signs = self._rows(indices)
        return self._estimate_from_rows(buckets, signs)

    def top_weights(self, k: int) -> list[tuple[int, float]]:
        """Top-k features among the passively tracked heap.

        Estimates are refreshed against the current sketch state before
        ranking, since heap snapshots can be stale.
        """
        if self.heap is None:
            raise RuntimeError(
                "construct with heap_capacity > 0 (or query "
                "estimate_weights over a candidate set) for top_weights"
            )
        candidates = np.array([i for i, _ in self.heap.items()], dtype=np.int64)
        if candidates.size == 0:
            return []
        est = self.estimate_weights(candidates)
        order = np.argsort(-np.abs(est))
        return [(int(candidates[i]), float(est[i])) for i in order[:k]]

    def top_weights_from_candidates(
        self, candidates: np.ndarray, k: int
    ) -> list[tuple[int, float]]:
        """Top-k estimated weights over an explicit candidate feature set."""
        candidates = np.atleast_1d(np.asarray(candidates, dtype=np.int64))
        est = self.estimate_weights(candidates)
        if k < candidates.size:
            part = np.argpartition(-np.abs(est), k)[:k]
        else:
            part = np.arange(candidates.size)
        order = part[np.argsort(-np.abs(est[part]))]
        return [(int(candidates[i]), float(est[i])) for i in order[:k]]

    # ------------------------------------------------------------------
    @property
    def memory_cost_bytes(self) -> int:
        heap_cells = 2 * self.heap.capacity if self.heap is not None else 0
        return CELL_BYTES * (self.size + heap_cells)
