"""The Weight-Median Sketch (Algorithm 1).

The WM-Sketch maintains a Count-Sketch-shaped array ``z`` (depth ``s``,
width ``k/s``) that holds a randomly-projected linear classifier.  The
projection is ``R = A / sqrt(s)`` where ``A`` is the Count-Sketch matrix
implicitly defined by per-row bucket hashes ``h_j`` and sign hashes
``sigma_j`` — the sparse Johnson-Lindenstrauss transform of Kane & Nelson
(2014), which is what makes the recovery analysis (Theorem 1) go through.

Update (online gradient descent on the compressed loss):

.. math::

    z \\leftarrow (1 - \\lambda \\eta_t) z
        - \\eta_t \\, y \\, \\ell'(y z^T R x) \\, R x

Query (Count-Sketch recovery on ``sqrt(s) z``):

.. math::

    \\hat w_i = \\mathrm{median}_j \\{ \\sqrt{s} \\,
        \\sigma_j(i) \\, z_{j, h_j(i)} \\}

The L2 decay is applied lazily through a global scale ``alpha``
(Section 5.1, "Efficient Regularization"), giving O(s * nnz(x)) updates.

For the evaluation's top-K queries, the class can *passively* maintain a
heap of the heaviest estimated weights over features it has seen — the
same construction heavy-hitters sketches use.  Unlike the AWM-Sketch's
active set, this heap never feeds back into the learning updates.
"""

from __future__ import annotations

import numpy as np

from repro.data.sparse import SparseExample
from repro.hashing.family import HashFamily
from repro.heap.topk import TopKHeap
from repro.learning.base import CELL_BYTES, StreamingClassifier
from repro.learning.losses import LogisticLoss, Loss
from repro.learning.schedules import Schedule, as_schedule

_RENORM_THRESHOLD = 1e-150


class WMSketch(StreamingClassifier):
    """Weight-Median Sketch: a sketched online linear classifier.

    Parameters
    ----------
    width:
        Buckets per row (``k / s`` in the paper's notation).
    depth:
        Number of rows ``s``.
    loss:
        Margin loss defining the model (default: logistic regression).
    lambda_:
        L2-regularization strength (Eq. 1); Theorem 1's sketch sizes
        scale as 1/lambda, and Fig. 5 shows recovery error falling as
        lambda grows.
    learning_rate:
        Schedule or float eta0 (paper default 0.1).
    seed:
        Hash-family seed (the randomness the guarantee is over).
    heap_capacity:
        If > 0, passively track the top features by estimated weight so
        ``top_weights`` is O(K log K) instead of requiring a candidate
        scan.  Charged 2 cells (id + weight) per slot.
    l1:
        Optional elastic-net-style l1 shrinkage applied to sketch
        estimates at query time (soft threshold); Section 6.1's "Weight
        Sparsity" remark.  0 disables.
    hash_kind:
        "tabulation" (default) or "polynomial" hash family.
    """

    def __init__(
        self,
        width: int,
        depth: int,
        loss: Loss | None = None,
        lambda_: float = 1e-6,
        learning_rate: Schedule | float = 0.1,
        seed: int = 0,
        heap_capacity: int = 128,
        l1: float = 0.0,
        hash_kind: str = "tabulation",
    ):
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if lambda_ < 0:
            raise ValueError(f"lambda_ must be >= 0, got {lambda_}")
        if l1 < 0:
            raise ValueError(f"l1 must be >= 0, got {l1}")
        self.width = width
        self.depth = depth
        self.loss = loss if loss is not None else LogisticLoss()
        self.lambda_ = lambda_
        self.l1 = l1
        self.schedule = as_schedule(learning_rate)
        self.family = HashFamily(width, depth, seed=seed, kind=hash_kind)
        self.table = np.zeros((depth, width), dtype=np.float64)
        self._scale = 1.0  # the global alpha of Section 5.1
        self._sqrt_s = float(np.sqrt(depth))
        self.t = 0
        self.heap: TopKHeap | None = (
            TopKHeap(heap_capacity) if heap_capacity > 0 else None
        )

    # ------------------------------------------------------------------
    # Sketch-space projection helpers
    # ------------------------------------------------------------------
    def _rows(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(buckets, signs), each of shape (depth, nnz)."""
        return self.family.all_rows(indices)

    def _margin_from_rows(
        self, buckets: np.ndarray, signs: np.ndarray, values: np.ndarray
    ) -> float:
        """z^T R x given precomputed per-row buckets and signs."""
        total = 0.0
        for j in range(self.depth):
            total += float(self.table[j, buckets[j]] @ (signs[j] * values))
        return self._scale * total / self._sqrt_s

    def predict_margin(self, x: SparseExample) -> float:
        buckets, signs = self._rows(x.indices)
        return self._margin_from_rows(buckets, signs, x.values)

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def update(self, x: SparseExample) -> None:
        y = x.label
        buckets, signs = self._rows(x.indices)
        tau = self._margin_from_rows(buckets, signs, x.values)
        g = self.loss.dloss(y * tau)
        eta = self.schedule(self.t)
        if self.lambda_ > 0.0:
            decay = 1.0 - eta * self.lambda_
            if decay <= 0.0:
                raise ValueError(
                    f"eta * lambda = {eta * self.lambda_} >= 1; decrease eta0"
                )
            self._scale *= decay
            if self._scale < _RENORM_THRESHOLD:
                self.table *= self._scale
                self._scale = 1.0
        # z <- z - eta * y * g * R x   (R = A / sqrt(s)), done on the raw
        # table so the stored state is z / scale.
        coeff = -eta * y * g / (self._sqrt_s * self._scale)
        for j in range(self.depth):
            np.add.at(self.table[j], buckets[j], coeff * signs[j] * x.values)
        self.t += 1
        if self.heap is not None:
            # Passive heavy-weight tracking: only touch the heap when the
            # estimate could change its contents (member refresh, free
            # slot, or beating the current minimum).
            estimates = self._estimate_from_rows(buckets, signs)
            for idx, w in zip(x.indices.tolist(), estimates.tolist()):
                if (
                    idx in self.heap
                    or not self.heap.is_full
                    or abs(w) > self.heap.min_priority()
                ):
                    self.heap.push(int(idx), w)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _estimate_from_rows(
        self, buckets: np.ndarray, signs: np.ndarray
    ) -> np.ndarray:
        if self.depth == 1:
            est = self._scale * (signs[0] * self.table[0, buckets[0]])
        else:
            rows = np.empty(buckets.shape, dtype=np.float64)
            for j in range(self.depth):
                rows[j] = signs[j] * self.table[j, buckets[j]]
            est = self._sqrt_s * self._scale * np.median(rows, axis=0)
        if self.l1 > 0.0:
            est = np.sign(est) * np.maximum(np.abs(est) - self.l1, 0.0)
        return est

    def estimate_weights(self, indices: np.ndarray) -> np.ndarray:
        """Count-Sketch recovery: median over rows of sqrt(s)*alpha*sigma*z."""
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        buckets, signs = self._rows(indices)
        return self._estimate_from_rows(buckets, signs)

    def top_weights(self, k: int) -> list[tuple[int, float]]:
        """Top-k features among the passively tracked heap.

        Estimates are refreshed against the current sketch state before
        ranking, since heap snapshots can be stale.
        """
        if self.heap is None:
            raise RuntimeError(
                "construct with heap_capacity > 0 (or query "
                "estimate_weights over a candidate set) for top_weights"
            )
        candidates = np.array([i for i, _ in self.heap.items()], dtype=np.int64)
        if candidates.size == 0:
            return []
        est = self.estimate_weights(candidates)
        order = np.argsort(-np.abs(est))
        return [(int(candidates[i]), float(est[i])) for i in order[:k]]

    def top_weights_from_candidates(
        self, candidates: np.ndarray, k: int
    ) -> list[tuple[int, float]]:
        """Top-k estimated weights over an explicit candidate feature set."""
        candidates = np.atleast_1d(np.asarray(candidates, dtype=np.int64))
        est = self.estimate_weights(candidates)
        if k < candidates.size:
            part = np.argpartition(-np.abs(est), k)[:k]
        else:
            part = np.arange(candidates.size)
        order = part[np.argsort(-np.abs(est[part]))]
        return [(int(candidates[i]), float(est[i])) for i in order[:k]]

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total sketch cells k = width * depth."""
        return self.width * self.depth

    @property
    def memory_cost_bytes(self) -> int:
        heap_cells = 2 * self.heap.capacity if self.heap is not None else 0
        return CELL_BYTES * (self.size + heap_cells)

    def sketch_state(self) -> np.ndarray:
        """The current (scaled) sketch vector z as a flat array."""
        return (self._scale * self.table).ravel()
