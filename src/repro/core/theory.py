"""Sketch sizing from the theoretical analysis (Theorems 1 and 2).

Theorem 1 (batch recovery): for a beta-strongly-smooth loss, inputs with
``max_t ||x_t||_1 = gamma``, and L2 strength ``lambda``, taking

.. math::

    k = (C_1 / \\epsilon^4) \\log^3(d/\\delta)
        \\max\\{1, \\beta^2 \\gamma^4 / \\lambda^2\\}

    s = (C_2 / \\epsilon^2) \\log^2(d/\\delta)
        \\max\\{1, \\beta \\gamma^2 / \\lambda\\}

guarantees ``||w* - w_est||_inf <= eps ||w*||_1`` with probability
1 - delta.  Theorem 2 adds a sample-size requirement ``T`` for the
single-pass online setting (in expectation over stream orderings).

The constants C_i are not given by the analysis; the calculator exposes
them as parameters (default 1.0, which reproduces the *scaling* — the
practically-relevant output — rather than literal cell counts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SketchSizing:
    """The (k, s, width) triple prescribed by Theorem 1."""

    size: int  # k — total sketch cells
    depth: int  # s — number of rows
    width: int  # k / s — buckets per row
    epsilon: float
    delta: float

    def as_dict(self) -> dict:
        """Plain-dict view (for logging / tabulation)."""
        return {
            "k": self.size,
            "s": self.depth,
            "width": self.width,
            "epsilon": self.epsilon,
            "delta": self.delta,
        }


def _regularity_factor(beta: float, gamma: float, lambda_: float) -> float:
    """max{1, beta * gamma^2 / lambda} — Theorem 1's conditioning term."""
    if lambda_ <= 0:
        raise ValueError(f"lambda_ must be positive, got {lambda_}")
    return max(1.0, beta * gamma * gamma / lambda_)


def theorem1_sizing(
    d: int,
    epsilon: float,
    delta: float = 0.05,
    beta: float = 1.0,
    gamma: float = 1.0,
    lambda_: float = 1e-6,
    c1: float = 1.0,
    c2: float = 1.0,
) -> SketchSizing:
    """Sketch size/depth satisfying Theorem 1's recovery guarantee.

    Parameters
    ----------
    d:
        Feature dimension.
    epsilon:
        Target recovery error as a fraction of ``||w*||_1``.
    delta:
        Failure probability over the hash draw.
    beta:
        Strong-smoothness constant of the loss (1 for logistic and
        smoothed hinge).
    gamma:
        Bound on ``||x_t||_1`` (1 for L1-normalized inputs).
    lambda_:
        L2-regularization strength.
    c1, c2:
        The unspecified constants of the theorem.

    Returns
    -------
    SketchSizing
        With ``size`` rounded up to a multiple of ``depth`` so the array
        is rectangular, and ``width = size // depth``.
    """
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if d < 2:
        raise ValueError(f"d must be >= 2, got {d}")
    log_term = math.log(d / delta)
    reg = _regularity_factor(beta, gamma, lambda_)
    k = c1 / epsilon**4 * log_term**3 * reg * reg
    s = c2 / epsilon**2 * log_term**2 * reg
    depth = max(1, math.ceil(s))
    size = max(depth, math.ceil(k))
    # Round up so width * depth == size exactly.
    width = math.ceil(size / depth)
    return SketchSizing(
        size=width * depth, depth=depth, width=width, epsilon=epsilon, delta=delta
    )


def theorem2_sample_size(
    d: int,
    epsilon: float,
    delta: float = 0.05,
    beta: float = 1.0,
    gamma: float = 1.0,
    lambda_: float = 1e-6,
    lipschitz: float = 1.0,
    w_star_l1: float = 1.0,
    w_star_l2: float = 1.0,
    c3: float = 1.0,
) -> int:
    """Minimum stream length T for Theorem 2's online guarantee.

    ``T >= (C_3 / eps^4) * zeta * log^2(d/delta) * max{1, beta gamma^2 / lambda}``
    with ``zeta = (1/lambda^2) (D_2 / ||w*||_1)^2 (G + (1+gamma) H)^2`` and
    ``G <= H (1 + gamma) + lambda D`` where ``D = D_2 + eps D_1``.
    """
    if w_star_l1 <= 0 or w_star_l2 <= 0:
        raise ValueError("w* norm bounds must be positive")
    log_term = math.log(d / delta)
    reg = _regularity_factor(beta, gamma, lambda_)
    big_d = w_star_l2 + epsilon * w_star_l1
    grad_bound = lipschitz * (1.0 + gamma) + lambda_ * big_d
    zeta = (
        (1.0 / lambda_**2)
        * (w_star_l2 / w_star_l1) ** 2
        * (grad_bound + (1.0 + gamma) * lipschitz) ** 2
    )
    t = c3 / epsilon**4 * zeta * log_term**2 * reg
    return max(1, math.ceil(t))


def achievable_epsilon(
    d: int,
    size: int,
    depth: int,
    delta: float = 0.05,
    beta: float = 1.0,
    gamma: float = 1.0,
    lambda_: float = 1e-6,
    c1: float = 1.0,
    c2: float = 1.0,
) -> float:
    """Invert Theorem 1: the epsilon achievable with a given (k, s).

    Returns the larger (weaker) of the two epsilons implied by the k- and
    s-equations, since both constraints must hold.
    """
    if size < 1 or depth < 1:
        raise ValueError("size and depth must be >= 1")
    log_term = math.log(d / delta)
    reg = _regularity_factor(beta, gamma, lambda_)
    eps_from_k = (c1 * log_term**3 * reg * reg / size) ** 0.25
    eps_from_s = (c2 * log_term**2 * reg / depth) ** 0.5
    return max(eps_from_k, eps_from_s)


def count_sketch_sizing(d: int, epsilon: float, delta: float = 0.05) -> SketchSizing:
    """Classic Count-Sketch sizing for frequency estimation (Lemma 1):
    width Theta(1/eps^2), depth Theta(log(d/delta))."""
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    width = math.ceil(1.0 / epsilon**2)
    depth = max(1, math.ceil(math.log(d / delta)))
    return SketchSizing(
        size=width * depth, depth=depth, width=width, epsilon=epsilon, delta=delta
    )


def count_min_sizing(d: int, epsilon: float, delta: float = 0.05) -> SketchSizing:
    """Count-Min sizing (Section 6.1's comparison table): width
    Theta(1/eps), depth Theta(log(d/delta))."""
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    width = math.ceil(1.0 / epsilon)
    depth = max(1, math.ceil(math.log(d / delta)))
    return SketchSizing(
        size=width * depth, depth=depth, width=width, epsilon=epsilon, delta=delta
    )
