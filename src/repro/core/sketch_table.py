"""Shared substrate of the WM- and AWM-Sketch: a lazily-scaled table.

Both sketch classifiers maintain the same physical object — a
Count-Sketch-shaped array ``z`` of shape ``(depth, width)`` holding a
randomly-projected linear model, decayed multiplicatively by L2
regularization through a global scale ``alpha`` (Section 5.1,
"Efficient Regularization") and queried by median-of-rows Count-Sketch
recovery.  Historically the margin / estimate / decay / renormalization
logic was copy-pasted between ``wm_sketch.py`` and ``awm_sketch.py``;
:class:`ScaledSketchTable` is the single home for it, plus the batched
hashing front-end (:class:`~repro.hashing.batch.BatchHasher`) shared by
the vectorized ``fit_batch`` kernels.

Floating-point discipline: the batched kernels promise bit-level
equivalence with the per-example update path, so both paths must go
through the *same* helpers here — and those helpers deliberately avoid
BLAS (``np.dot`` rounds differently depending on operand alignment, so
it is not bit-reproducible across array layouts).  Elementwise
multiplies followed by NumPy's pairwise ``.sum()`` and ``ufunc.at``
scatters are layout-independent, which makes per-example and batched
replays produce identical tables.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing.batch import BatchHasher
from repro.hashing.family import HashFamily
from repro.learning.base import StreamingClassifier
from repro.learning.losses import LogisticLoss, Loss
from repro.learning.schedules import Schedule, as_schedule

#: Scale threshold below which the lazy L2 factor is folded back into
#: the raw table to avoid float underflow.
_RENORM_THRESHOLD = 1e-150


class ScaledSketchTable(StreamingClassifier):
    """Count-Sketch table + lazy L2 scale shared by WM/AWM sketches.

    Subclasses add their learning rule (``update`` / ``fit_batch``) and
    recovery policy; this base owns:

    * the hash family and the :class:`BatchHasher` used by batched
      kernels;
    * the raw table, the global scale ``alpha`` and its
      renormalization;
    * the linear margin ``z^T R x`` and the median-of-rows estimate,
      computed from precomputed per-row (bucket, sign) arrays.
    """

    #: Optional L1 soft-threshold applied to estimates at query time;
    #: only the WM-Sketch exposes it, the default is off.
    l1: float = 0.0

    def __init__(
        self,
        width: int,
        depth: int,
        loss: Loss | None = None,
        lambda_: float = 1e-6,
        learning_rate: Schedule | float = 0.1,
        seed: int = 0,
        hash_kind: str = "tabulation",
    ):
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if lambda_ < 0:
            raise ValueError(f"lambda_ must be >= 0, got {lambda_}")
        self.width = width
        self.depth = depth
        self.loss = loss if loss is not None else LogisticLoss()
        self.lambda_ = lambda_
        self.schedule = as_schedule(learning_rate)
        self.family = HashFamily(width, depth, seed=seed, kind=hash_kind)
        self.table = np.zeros((depth, width), dtype=np.float64)
        self._scale = 1.0  # the global alpha of Section 5.1
        self._sqrt_s = float(np.sqrt(depth))
        self._batch_hasher = BatchHasher(self.family)
        # Column vector of row ids: ``table[_row_idx, buckets]`` gathers
        # a whole (depth, nnz) block in one fancy index.
        self._row_idx = np.arange(depth, dtype=np.intp).reshape(-1, 1)
        # Flat-view machinery: ``_table_flat.take(buckets + _row_offsets)``
        # is the same gather through the cheaper flat path (gathers move
        # bits, they do no arithmetic, so flat vs. fancy is bit-neutral).
        self._row_offsets = (
            np.arange(depth, dtype=np.int64) * width
        ).reshape(-1, 1)
        self._table_flat = self.table.ravel()
        self.t = 0

    # ------------------------------------------------------------------
    # Sketch-space projection helpers
    # ------------------------------------------------------------------
    def _rows(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(buckets, signs), each of shape (depth, nnz)."""
        return self.family.all_rows(indices)

    def _margin_from_rows(
        self, buckets: np.ndarray, signs: np.ndarray, values: np.ndarray
    ) -> float:
        """z^T R x given precomputed per-row buckets and signs."""
        return self._margin_from_products(buckets, signs * values)

    def _margin_from_products(
        self,
        buckets: np.ndarray,
        sign_values: np.ndarray,
        flat_buckets: np.ndarray | None = None,
    ) -> float:
        """Margin from precomputed sign*value products (batched kernels).

        Bit-identical to :meth:`_margin_from_rows` — the elementwise
        ``signs * values`` products are the same floats whether computed
        per example or once per batch, and ``math.fsum`` is *exactly*
        rounded, so the reduction is independent of summation order and
        buffer alignment (NumPy's SIMD ``.sum()`` is not).

        ``flat_buckets`` may carry precomputed ``buckets + row_offsets``
        (batched kernels amortize that add over the whole batch).
        """
        if flat_buckets is None:
            flat_buckets = buckets + self._row_offsets
        products = self._table_flat.take(flat_buckets) * sign_values
        total = math.fsum(products.ravel().tolist())
        return self._scale * total / self._sqrt_s

    def _scatter_add(
        self,
        buckets: np.ndarray,
        deltas: np.ndarray,
        flat_buckets: np.ndarray | None = None,
    ) -> None:
        """Accumulate ``deltas`` into the raw table at ``buckets``.

        One buffered ``ufunc.at`` over the whole (depth, nnz) block;
        duplicate buckets within a row accumulate in element order, the
        same order as a per-row loop, so this is layout-deterministic.
        """
        if flat_buckets is None:
            flat_buckets = buckets + self._row_offsets
        np.add.at(self._table_flat, flat_buckets, deltas)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _estimate_from_rows(
        self,
        buckets: np.ndarray,
        signs: np.ndarray,
        flat_buckets: np.ndarray | None = None,
    ) -> np.ndarray:
        """Count-Sketch recovery: median over rows of sqrt(s)*alpha*sigma*z.

        The median is computed by an in-place column sort plus a
        middle-row pick, which selects the exact same values as
        ``np.median`` without its per-call Python dispatch overhead
        (~15x cheaper for the (depth, nnz) blocks seen here).
        """
        if flat_buckets is None:
            flat_buckets = buckets + self._row_offsets
        if self.depth == 1:
            est = self._scale * (
                signs[0] * self._table_flat.take(flat_buckets[0])
            )
        else:
            rows = signs * self._table_flat.take(flat_buckets)
            rows.sort(axis=0)
            mid = self.depth // 2
            if self.depth % 2:
                med = rows[mid]
            else:
                med = 0.5 * (rows[mid - 1] + rows[mid])
            est = self._sqrt_s * self._scale * med
        if self.l1 > 0.0:
            est = np.sign(est) * np.maximum(np.abs(est) - self.l1, 0.0)
        return est

    def _estimate_bound(
        self,
        buckets: np.ndarray,
        flat_buckets: np.ndarray | None = None,
    ) -> float:
        """Cheap upper bound on ``max_i |estimate_i|`` for the given rows.

        The median over rows is bounded in magnitude by the largest row
        magnitude, so ``sqrt(s) * alpha * max_j |z_j|`` dominates every
        recovered estimate — useful to skip recovery entirely when no
        estimate could beat a heap-admission threshold.  Multiplication
        is monotone, so the bound is exact at the boundary for depth 1
        and conservative for depth > 1.
        """
        if buckets.size == 0:
            return 0.0
        if flat_buckets is None:
            flat_buckets = buckets + self._row_offsets
        hi = float(np.abs(self._table_flat.take(flat_buckets)).max())
        if self.depth == 1:
            bound = self._scale * hi
        else:
            bound = self._sqrt_s * self._scale * hi
        if self.l1 > 0.0:
            bound = max(bound - self.l1, 0.0)
        return bound

    def _sketch_estimate(self, indices: np.ndarray) -> np.ndarray:
        """Median-of-rows estimates for raw feature indices."""
        if indices.size == 0:
            return np.zeros(0, dtype=np.float64)
        buckets, signs = self._rows(indices)
        return self._estimate_from_rows(buckets, signs)

    # ------------------------------------------------------------------
    # Lazy L2 decay
    # ------------------------------------------------------------------
    def _decay_factor(self, eta: float) -> float:
        """The per-step multiplicative decay ``1 - eta * lambda``.

        Raises
        ------
        ValueError
            If the step would zero or flip the model
            (``eta * lambda >= 1``).
        """
        decay = 1.0 - eta * self.lambda_
        if decay <= 0.0:
            raise ValueError(
                f"eta * lambda = {eta * self.lambda_} >= 1; decrease eta0"
            )
        return decay

    def _decay_scale(self, decay: float) -> None:
        """Apply one decay step to the global scale, renormalizing the
        raw table when the scale underflows toward zero."""
        self._scale *= decay
        if self._scale < _RENORM_THRESHOLD:
            self.table *= self._scale
            self._scale = 1.0

    # ------------------------------------------------------------------
    # Common introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total sketch cells k = width * depth."""
        return self.width * self.depth

    def sketch_state(self) -> np.ndarray:
        """The current (scaled) sketch vector z as a flat array."""
        return (self._scale * self.table).ravel()
