"""Shared substrate of the WM- and AWM-Sketch: a lazily-scaled table.

Both sketch classifiers maintain the same physical object — a
Count-Sketch-shaped array ``z`` of shape ``(depth, width)`` holding a
randomly-projected linear model, decayed multiplicatively by L2
regularization through a global scale ``alpha`` (Section 5.1,
"Efficient Regularization") and queried by median-of-rows Count-Sketch
recovery.  Historically the margin / estimate / decay / renormalization
logic was copy-pasted between ``wm_sketch.py`` and ``awm_sketch.py``;
:class:`ScaledSketchTable` is the single home for it, plus the batched
hashing front-end (:class:`~repro.hashing.batch.BatchHasher`) shared by
the vectorized ``fit_batch`` kernels.

Floating-point discipline: the batched kernels promise bit-level
equivalence with the per-example update path, so both paths must go
through the *same* helpers here — and those helpers deliberately avoid
BLAS (``np.dot`` rounds differently depending on operand alignment, so
it is not bit-reproducible across array layouts).  Exactly-rounded
margin sums and element-order ``ufunc.at`` scatters are
layout-independent, which makes per-example and batched replays produce
identical tables.

The helper bodies themselves live in :mod:`repro.kernels`: each hot
primitive (margin, scatter, transposed gather, median recovery,
estimate bound) dispatches through the table's kernel backend — the
NumPy reference by default, or the compiled (Numba) backend when
selected — under the same bit-level contract, fuzz-checked across
backends in ``tests/test_kernel_backends.py``.
"""

from __future__ import annotations

import math

import numpy as np

from repro import kernels
from repro.hashing.batch import BatchHasher
from repro.hashing.family import HashFamily
from repro.learning.base import StreamingClassifier, sum_merge_scaled_tables
from repro.learning.losses import LogisticLoss, Loss
from repro.learning.schedules import Schedule, as_schedule

#: Scale threshold below which the lazy L2 factor is folded back into
#: the raw table to avoid float underflow.
_RENORM_THRESHOLD = 1e-150

#: Per-fold log-scale contribution assumed for folds that happen
#: *inside* a fused kernel (the kernel reports only a fold count):
#: every fold triggers just as the scale crosses the threshold, so the
#: folded factor is ~_RENORM_THRESHOLD.  See
#: :meth:`ScaledSketchTable.log_virtual_scale` for why the
#: approximation is harmless.
_LOG_RENORM_THRESHOLD = math.log(_RENORM_THRESHOLD)

#: Dirty-bitmap chunk geometry for incremental snapshot publication.
#: Publishes copy whole chunks, so the chunk size trades copy
#: granularity against bitmap overhead: with ``B`` hash-scattered
#: touched buckets per publish interval the expected dirty fraction is
#: roughly ``1 - exp(-B * chunk / size)``.  256 buckets (2 KiB) keeps
#: Fig. 7-scale per-interval write sets at ~10-20% dirty on
#: million-bucket tables, where 4K-bucket chunks would already be
#: nearly 100% dirty (no publish win at all).
_CHUNK_LOG = 8
_CHUNK = 1 << _CHUNK_LOG
_CHUNK_MASK = _CHUNK - 1

#: :meth:`ScaledSketchTable.snapshot_incremental` rebases (one full
#: vectorized copy into a fresh pool) when the dirty fraction reaches
#: this crossover — near-full chunked copies cost more than one
#: contiguous copy — ...
_REBASE_DIRTY_FRACTION = 0.5
#: ... and when the append-only chunk pool would exceed this many times
#: the table's own chunk count (bounds chain memory growth; published
#: snapshots pin whatever pool they reference).
_POOL_MAX_FACTOR = 4

#: Attributes a snapshot never inherits from the live model's __dict__
#: (each is re-established explicitly by the snapshot builders).
_SNAPSHOT_DROPPED = (
    "table", "_scale", "_table_flat", "_batch_hasher", "_kb", "_ws",
    "heap", "_dirty", "_pool", "_chunk_map",
    "_chain_token", "_chain_seq", "_snap_pool", "_snap_used", "_snap_map",
)


class ScaledSketchTable(StreamingClassifier):
    """Count-Sketch table + lazy L2 scale shared by WM/AWM sketches.

    Subclasses add their learning rule (``update`` / ``fit_batch``) and
    recovery policy; this base owns:

    * the hash family and the :class:`BatchHasher` used by batched
      kernels;
    * the raw table, the global scale ``alpha`` and its
      renormalization;
    * the linear margin ``z^T R x`` and the median-of-rows estimate,
      computed from precomputed per-row (bucket, sign) arrays.
    """

    #: Optional L1 soft-threshold applied to estimates at query time;
    #: only the WM-Sketch exposes it, the default is off.
    l1: float = 0.0

    #: Number of independently trained models folded into this one via
    #: :meth:`merge` (1 for a single-stream model).  Serialized alongside
    #: the table so merged checkpoints are self-describing.
    merged_from: int = 1

    #: Kernel-backend provenance restored from a checkpoint: the name of
    #: the backend that computed the saved state (None for models built
    #: in-process).  Informational — backends are bit-equivalent.
    trained_backend: str | None = None

    #: Whether the model supports O(dirty) parameter-server delta sync
    #: (:mod:`repro.parallel.ps`).  Requires that *all* state a replica
    #: needs is (raw table chunks, scale, fold log, clock) — true for
    #: the passive WM-Sketch, false here and for the AWM-Sketch, whose
    #: active set feeds back into the update rule and cannot be
    #: reconstructed from table chunks alone (it still merges via the
    #: one-shot :meth:`merge`).
    ps_delta_sync: bool = False

    #: Route batched work through the fused mega-kernels
    #: (:mod:`repro.kernels.api`) over the model's preallocated
    #: :class:`~repro.kernels.workspace.KernelWorkspace`.  On by
    #: default; turned off (or forced off by a loss without a
    #: ``kernel_id``) every batched path falls back to the original
    #: per-kernel chain — the executable reference the fused paths are
    #: fuzz-checked against (``tests/test_fused_kernels.py``).
    use_fused: bool = True

    def __init__(
        self,
        width: int,
        depth: int,
        loss: Loss | None = None,
        lambda_: float = 1e-6,
        learning_rate: Schedule | float = 0.1,
        seed: int = 0,
        hash_kind: str = "tabulation",
        backend: str | None = None,
    ):
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if lambda_ < 0:
            raise ValueError(f"lambda_ must be >= 0, got {lambda_}")
        self.width = width
        self.depth = depth
        self.loss = loss if loss is not None else LogisticLoss()
        self.lambda_ = lambda_
        self.schedule = as_schedule(learning_rate)
        #: Kernel-backend override (None = follow the process default);
        #: threaded into the hash family and every table kernel, and
        #: serialized with the model.
        self.backend = backend
        self.family = HashFamily(
            width, depth, seed=seed, kind=hash_kind, backend=backend
        )
        self.table = np.zeros((depth, width), dtype=np.float64)
        self._scale = 1.0  # the global alpha of Section 5.1
        # Cumulative log of every scale factor folded into the raw
        # table (renorm folds, merge folds): log(alpha) + _fold_log is
        # the *virtual* log-scale, monotone across folds, which is what
        # lets the parameter-server delta codec recover the decay
        # product between two sync points (see log_virtual_scale).
        self._fold_log = 0.0
        self._sqrt_s = float(np.sqrt(depth))
        self._batch_hasher = BatchHasher(self.family)
        # Column vector of row ids: ``table[_row_idx, buckets]`` gathers
        # a whole (depth, nnz) block in one fancy index.
        self._row_idx = np.arange(depth, dtype=np.intp).reshape(-1, 1)
        # Flat-view machinery: ``_table_flat.take(buckets + _row_offsets)``
        # is the same gather through the cheaper flat path (gathers move
        # bits, they do no arithmetic, so flat vs. fancy is bit-neutral).
        self._row_offsets = (
            np.arange(depth, dtype=np.int64) * width
        ).reshape(-1, 1)
        self._table_flat = self.table.ravel()
        # Dirty-chunk tracking for O(dirty) incremental snapshot
        # publication: live models keep a contiguous table and a chunked
        # write bitmap; chunk-shared snapshots instead carry a
        # (rows, _CHUNK) pool plus a chunk -> pool-row map (table is
        # then None; reads translate indices through _translate_flat).
        self._dirty: np.ndarray | None = np.ones(
            self._n_chunks(), dtype=bool
        )
        self._pool: np.ndarray | None = None
        self._chunk_map: np.ndarray | None = None
        self._reset_chain()
        # Dispatch-free kernel binding + lazily-built workspace (both
        # per-process caches: dropped on pickling, rebuilt on load).
        self._kb = kernels.BackendHandle(backend)
        self._ws: kernels.KernelWorkspace | None = None
        self.t = 0

    @property
    def kernels(self) -> "kernels.KernelBackend":
        """The kernel backend this table's hot loops dispatch through.

        Resolved through a cached :class:`~repro.kernels.BackendHandle`
        (one integer epoch compare per access): an explicit per-model
        ``backend`` wins, otherwise the process default
        (:func:`repro.kernels.get_backend`) applies — ``set_backend``
        still takes effect on live models because it bumps the epoch.
        """
        return self._kb.get()

    def _workspace(self) -> "kernels.KernelWorkspace":
        """The model's grow-only fused-kernel workspace (lazily built,
        never serialized)."""
        ws = self._ws
        if ws is None:
            ws = self._ws = kernels.KernelWorkspace()
        return ws

    # ------------------------------------------------------------------
    # Dirty-chunk tracking (incremental snapshot publication)
    # ------------------------------------------------------------------
    def _n_chunks(self) -> int:
        """Number of ``_CHUNK``-bucket chunks covering the flat table."""
        return (self.size + _CHUNK_MASK) >> _CHUNK_LOG

    def _reset_chain(self) -> None:
        """Forget any snapshot chain (fresh model / after unpickling).

        The chain token is an identity sentinel: a previous snapshot may
        seed :meth:`snapshot_incremental` only if it carries *this*
        model's token and the latest sequence number — the dirty bitmap
        records changes since the last chain publish, so any other
        ``prev`` forces a rebase.
        """
        self._chain_token: object = object()
        self._chain_seq = 0
        self._snap_pool: np.ndarray | None = None
        self._snap_used = 0
        self._snap_map: np.ndarray | None = None

    def _mark_dirty_flat(self, flat: np.ndarray) -> None:
        """Mark the chunks containing the given flat bucket indices.

        ``flat`` may be any int64 array of touched indices (the fused
        kernels' recorded touched stream, a batch's flat-bucket block,
        ...); duplicates are free.  Runs over workspace arenas so the
        steady-state fused paths stay allocation-free.
        """
        dirty = self._dirty
        if dirty is None:
            return
        ids = self._workspace().array("dirty_ids", flat.size, np.int64)
        np.right_shift(flat.reshape(-1), _CHUNK_LOG, out=ids)
        dirty[ids] = True

    def _mark_dirty_all(self) -> None:
        """Whole-table writes (renorm folds, merges) dirty every chunk."""
        dirty = self._dirty
        if dirty is not None:
            dirty[:] = True

    def _mark_dirty_bucket(self, row: int, bucket: int) -> None:
        """Scalar write path: one (row, bucket) cell touched."""
        dirty = self._dirty
        if dirty is not None:
            dirty[(row * self.width + bucket) >> _CHUNK_LOG] = True

    def _translate_flat(
        self, flat: np.ndarray, scratch: bool = True
    ) -> np.ndarray:
        """Map flat bucket indices into this snapshot's chunk pool.

        Live models (and full snapshots) store a contiguous table and
        return ``flat`` unchanged.  Chunk-shared snapshots rewrite each
        index ``f`` to ``(chunk_map[f >> LOG] << LOG) | (f & MASK)`` so
        the *unchanged* read kernels (``fused_predict`` /
        ``fused_query`` / margins / gathers) pull the identical float
        bits out of ``_pool.ravel()`` — gathers move bits and do no
        arithmetic, so translated reads are bit-identical to dense
        reads.

        ``scratch=True`` runs over workspace arenas (three int64 views)
        and is for the single-threaded batched read paths only.  The
        scalar read paths pass ``scratch=False`` for fresh temporaries:
        serving runs serial-scalar reads concurrently with the
        coalescer's batched reads on the same snapshot, and the
        snapshot's workspace is a shared mutable cache — scalar reads
        must not touch it (see the SnapshotManager module docstring).
        """
        cmap = self._chunk_map
        if cmap is None:
            return flat
        if not scratch:
            return (cmap[flat >> _CHUNK_LOG] << _CHUNK_LOG) | (
                flat & _CHUNK_MASK
            )
        ws = self._workspace()
        low = ws.array("t_flat_low", flat.shape, np.int64)
        np.bitwise_and(flat, _CHUNK_MASK, out=low)
        ids = ws.array("t_flat_ids", flat.shape, np.int64)
        np.right_shift(flat, _CHUNK_LOG, out=ids)
        out = ws.array("t_flat_out", flat.shape, np.int64)
        np.take(cmap, ids, out=out)
        np.left_shift(out, _CHUNK_LOG, out=out)
        np.bitwise_or(out, low, out=out)
        return out

    def _dense_table_flat(self) -> np.ndarray:
        """The raw (unscaled) flat table; materialized for chunk-shared
        snapshots (``pool[chunk_map]`` reassembles the logical order —
        the padded tail of the last chunk falls past ``size``)."""
        if self._chunk_map is None:
            return self._table_flat
        return self._pool[self._chunk_map].ravel()[: self.size]

    def _dense_table(self) -> np.ndarray:
        """The raw table as a dense ``(depth, width)`` array (a fresh
        copy for chunk-shared snapshots, the live array otherwise)."""
        if self._chunk_map is None:
            return self.table
        return self._dense_table_flat().reshape(self.depth, self.width)

    # ------------------------------------------------------------------
    # Chunk-granular delta transport (parameter-server sync)
    # ------------------------------------------------------------------
    # The dirty bitmap already gives workers a natural delta encoding:
    # ship the ``(chunk id, 256 buckets)`` pairs the bitmap names, and
    # nothing else.  These helpers are the gather/scatter primitives the
    # :mod:`repro.parallel.delta` codec composes into push/pull
    # messages; they operate on *flat* float64 arrays with this table's
    # chunk geometry — the live raw table by default, or an external
    # base copy the worker keeps for delta subtraction.

    def _chunk_split(
        self, chunk_ids: np.ndarray
    ) -> tuple[np.ndarray, bool, int, int]:
        """(body ids, tail-included?, full-chunk count, tail length).

        ``chunk_ids`` must be sorted ascending (``np.flatnonzero`` of
        the bitmap is); the tail chunk, when the table size is not a
        chunk multiple, needs a partial copy and is split off here.
        """
        size = self.size
        full = size >> _CHUNK_LOG
        tail_len = size - (full << _CHUNK_LOG)
        has_tail = bool(
            tail_len > 0
            and chunk_ids.size > 0
            and int(chunk_ids[-1]) == self._n_chunks() - 1
        )
        body = chunk_ids[:-1] if has_tail else chunk_ids
        return body, has_tail, full, tail_len

    def gather_chunks(
        self, chunk_ids: np.ndarray, source: np.ndarray | None = None
    ) -> np.ndarray:
        """Copy whole chunks out of a flat array as ``(k, _CHUNK)`` rows.

        ``source`` defaults to the live raw table (``_table_flat``);
        workers also pass their flat base copy.  The padded tail of a
        partial last chunk reads as zero — both sides of a delta pad
        identically, so padded cells subtract/accumulate to exact
        zeros.
        """
        if source is None:
            source = self._table_flat
        body, has_tail, full, tail_len = self._chunk_split(chunk_ids)
        out = np.zeros((chunk_ids.size, _CHUNK), dtype=np.float64)
        nb = body.size
        if nb:
            np.take(
                source[: full << _CHUNK_LOG].reshape(full, _CHUNK),
                body, axis=0, out=out[:nb], mode="clip",
            )
        if has_tail:
            out[-1, :tail_len] = source[full << _CHUNK_LOG:]
        return out

    def scatter_chunks(
        self,
        chunk_ids: np.ndarray,
        data: np.ndarray,
        out: np.ndarray | None = None,
    ) -> None:
        """Assign ``(k, _CHUNK)`` rows back into a flat array's chunks.

        The raw-bit pull path: with ``out=None`` the live raw table is
        overwritten (and the chunks marked dirty — the bits changed
        relative to whatever this model last published); otherwise
        ``out`` is an external flat base copy.
        """
        own = out is None
        if own:
            out = self._table_flat
        body, has_tail, full, tail_len = self._chunk_split(chunk_ids)
        nb = body.size
        if nb:
            out[: full << _CHUNK_LOG].reshape(full, _CHUNK)[body] = data[:nb]
        if has_tail:
            out[full << _CHUNK_LOG:] = data[-1, :tail_len]
        if own and self._dirty is not None:
            self._dirty[chunk_ids] = True

    def add_scaled_chunks(
        self, chunk_ids: np.ndarray, data: np.ndarray
    ) -> None:
        """Accumulate *scaled-space* chunk deltas into the live table.

        The driver-side push apply: ``data`` holds each chunk's scaled
        contribution ``U`` and the raw table absorbs ``U / alpha`` so
        that the scaled state gains exactly ``U`` (one rounding per
        cell).  Touched chunks are marked dirty — which is what keeps
        the driver's own downstream publishes O(dirty).
        """
        body, has_tail, full, tail_len = self._chunk_split(chunk_ids)
        contrib = data if self._scale == 1.0 else data / self._scale
        tf = self._table_flat
        nb = body.size
        if nb:
            tf[: full << _CHUNK_LOG].reshape(full, _CHUNK)[body] += (
                contrib[:nb]
            )
        if has_tail:
            tf[full << _CHUNK_LOG:] += contrib[-1, :tail_len]
        if self._dirty is not None:
            self._dirty[chunk_ids] = True

    def log_virtual_scale(self) -> float:
        """``log(alpha)`` plus every factor ever folded into the raw
        bits — monotone under decay and invariant to *when* renorm
        folds happen.

        Two observations of this value bracket a training window, and
        ``exp(now - then)`` recovers the decay product applied across
        it even when a renorm fold reset ``alpha`` in between.  Folds
        inside fused kernels are accounted at ``log(_RENORM_THRESHOLD)``
        per fold (the kernel reports a count, not the folded factor);
        the approximation only matters in the window *containing* such a
        fold, where every chunk is dirty anyway and the delta codec
        ships the full state — the decay factor then only weights
        *other* workers' interleaved contributions, all of which sit at
        least ~1e-150 below the fresh state.  Windows without folds use
        the exact ``alpha`` ratio (see
        :meth:`repro.parallel.delta.encode_push`).
        """
        return math.log(self._scale) + self._fold_log

    def _note_renorm_folds(self, count: int) -> None:
        """Account ``count`` kernel-internal renorm folds in the
        virtual log-scale (each folds a factor of about
        ``_RENORM_THRESHOLD``; see :meth:`log_virtual_scale`)."""
        if count:
            self._fold_log += count * _LOG_RENORM_THRESHOLD

    # ------------------------------------------------------------------
    # Pickling (spawn-safe worker processes)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Drop derived buffers; critically, ``_table_flat`` is a *view*
        of ``table`` — pickling it naively would materialize a detached
        copy and silently break the aliasing every scatter/gather relies
        on.  The batch hasher, the kernel-backend handle and the fused
        workspace are pure per-process caches and restart cold.

        The *dirty bitmap* travels with the model: it records which
        chunks changed since the owner's last publish/sync, a fact about
        the table bits — which the pickle preserves exactly — not about
        this process.  A parameter-server worker round-tripped through
        pickle therefore keeps its O(dirty) delta instead of inflating
        the next push to full-table size.  The snapshot-chain state
        *is* per-process (pool identity cannot cross pickling), so the
        restored model gets a fresh chain token and its first
        incremental publish rebases.  A chunk-shared *snapshot* is
        persisted as its dense equivalent (the pool / chunk map encode
        sharing with sibling snapshots, which pickling cannot
        preserve) and restores all-dirty, as does any pre-bitmap
        pickle."""
        state = self.__dict__.copy()
        if state.get("_chunk_map") is not None:
            state["table"] = self._dense_table()
        dirty = self._dirty
        state["_dirty"] = None if dirty is None else dirty.copy()
        for key in ("_table_flat", "_row_idx", "_row_offsets",
                    "_batch_hasher", "_kb", "_ws",
                    "_pool", "_chunk_map", "_chain_token",
                    "_chain_seq", "_snap_pool", "_snap_used", "_snap_map"):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        state.setdefault("backend", None)  # pre-kernel pickles
        state.setdefault("_fold_log", 0.0)  # pre-fold-log pickles
        dirty = state.pop("_dirty", None)
        self.__dict__.update(state)
        depth, width = self.depth, self.width
        self._row_idx = np.arange(depth, dtype=np.intp).reshape(-1, 1)
        self._row_offsets = (
            np.arange(depth, dtype=np.int64) * width
        ).reshape(-1, 1)
        self._table_flat = self.table.ravel()
        self._batch_hasher = BatchHasher(self.family)
        self._kb = kernels.BackendHandle(self.backend)
        self._ws = None  # rebuilt lazily on first fused batch
        # Carry the pickled dirty bitmap when it is shaped for this
        # table; anything else (old pickles, densified snapshots) falls
        # back to all-dirty — the safe conservative restart.  The chain
        # is always fresh: pool sharing cannot survive pickling.
        if dirty is not None and dirty.shape == (self._n_chunks(),):
            self._dirty = dirty
        else:
            self._dirty = np.ones(self._n_chunks(), dtype=bool)
        self._pool = None
        self._chunk_map = None
        self._reset_chain()

    # ------------------------------------------------------------------
    # Serving snapshots
    # ------------------------------------------------------------------
    def _snapshot_shell(
        self,
        batch_hasher: "BatchHasher | None",
        workspace: "kernels.KernelWorkspace | None",
    ) -> "ScaledSketchTable":
        """The table-independent part of a snapshot: copied config,
        carried scale, folded heap view, reader-side caches.  Callers
        attach the table representation (dense copy or chunk pool)."""
        snap = object.__new__(type(self))
        state = self.__dict__.copy()
        for key in _SNAPSHOT_DROPPED:
            state.pop(key, None)
        snap.__dict__.update(state)
        # The per-snapshot scale multiplier: the snapshot stores the
        # *raw* table bits and carries the publish-time lazy L2 scale
        # alongside, exactly like the live model — raw bits are stable
        # under decay (only renorm folds rewrite them), which is what
        # lets clean chunks be shared across publishes bit-identically.
        snap._scale = self._scale
        snap._dirty = None  # snapshots are read-only; nothing to track
        snap._chain_token = None
        snap._chain_seq = -1
        snap._snap_pool = None
        snap._snap_used = 0
        snap._snap_map = None
        if batch_hasher is not None and batch_hasher.family is not self.family:
            raise ValueError(
                "batch_hasher must wrap the model's own hash family"
            )
        snap._batch_hasher = (
            batch_hasher
            if batch_hasher is not None
            else BatchHasher(self.family)
        )
        snap._kb = self._kb
        snap._ws = workspace
        heap = getattr(self, "heap", None)
        if heap is not None:
            snap.heap = heap.snapshot_view()
        elif "heap" in self.__dict__:
            snap.heap = None
        return snap

    def snapshot(
        self,
        batch_hasher: "BatchHasher | None" = None,
        workspace: "kernels.KernelWorkspace | None" = None,
    ) -> "ScaledSketchTable":
        """A consistent read-only copy for concurrent serving.

        The snapshot copies the *raw* table and carries the publish-time
        lazy L2 scale alongside (every read path already multiplies by
        the scale, so answers are identical to folding it in — and the
        raw-bits representation is what makes the incremental chunked
        publishes of :meth:`snapshot_incremental` bit-identical to this
        full copy).  A snapshot never exposes a half-applied update; its
        answers are a pure function of publish-time state.  The trainer
        keeps mutating the original; readers keep answering from the
        snapshot.  Subclass stores (the WM/AWM ``heap``) snapshot
        through :meth:`~repro.heap.topk.TopKStore.snapshot_view`.

        ``batch_hasher`` / ``workspace`` let a snapshot *manager* thread
        its long-lived reader-side caches through successive publishes
        (hash functions are pure and shared with the live model, so LRU
        warmth carries over; the workspace arenas keep reads
        zero-allocation).  Both default to fresh caches.  Snapshots are
        read-only by contract and, like every model, single-threaded:
        serving layers must serialize access per snapshot chain.

        Must be called from the trainer thread (the thread mutating the
        model): the copy reads the table and heap arrays non-atomically,
        so an off-thread call could observe a half-applied update.
        """
        snap = self._snapshot_shell(batch_hasher, workspace)
        snap.table = (
            self.table.copy() if self._chunk_map is None
            else self._dense_table()
        )
        snap._pool = None
        snap._chunk_map = None
        snap._table_flat = snap.table.ravel()
        return snap

    def snapshot_incremental(
        self,
        prev: "ScaledSketchTable | None" = None,
        batch_hasher: "BatchHasher | None" = None,
        workspace: "kernels.KernelWorkspace | None" = None,
    ) -> "tuple[ScaledSketchTable, dict]":
        """Publish a snapshot copying only the chunks written since the
        last chain publish; clean chunks are shared with ``prev``'s
        arrays by reference.

        Returns ``(snapshot, stats)`` where ``stats`` reports
        ``dirty_fraction`` / ``chunks_copied`` / ``n_chunks`` /
        ``rebase`` for telemetry.  The snapshot answers every read
        **bit-identically** to a full :meth:`snapshot` taken at the same
        instant: both carry the same raw table bits (dense vs.
        chunk-pool + index translation) and the same scale multiplier,
        and gathers do no arithmetic.

        Chunks live in an append-only ``(rows, _CHUNK)`` pool shared
        along the chain: each publish appends its dirty chunks as fresh
        rows (write-once, so earlier snapshots stay immutable) and maps
        clean chunks to the rows the previous publish used.  The chain
        *rebases* — one vectorized full copy into a fresh pool — on the
        first publish, when ``prev`` is not this model's latest chain
        snapshot (the bitmap records changes since that publish, so
        nothing else can be patched), when the dirty fraction reaches
        the ``_REBASE_DIRTY_FRACTION`` crossover, or when the pool would
        outgrow ``_POOL_MAX_FACTOR`` times the table (memory bound).
        The dirty bitmap is cleared either way.

        Trainer-thread-only, like :meth:`snapshot`.
        """
        if self._dirty is None:
            raise TypeError(
                "snapshots are read-only; publish from the live model"
            )
        size = self.size
        n_chunks = self._dirty.shape[0]
        dirty_ids = np.flatnonzero(self._dirty)
        k = int(dirty_ids.size)
        dirty_fraction = k / n_chunks
        chain_ok = (
            prev is not None
            and self._snap_pool is not None
            and getattr(prev, "_chain_token", None) is self._chain_token
            and getattr(prev, "_chain_seq", None) == self._chain_seq
        )
        rebase = (
            not chain_ok
            or dirty_fraction >= _REBASE_DIRTY_FRACTION
            or self._snap_used + k > _POOL_MAX_FACTOR * n_chunks
        )
        tf = self._table_flat
        if rebase:
            # 2x headroom so the publishes after a rebase append in
            # place instead of regrowing immediately.  The headroom is
            # pre-faulted here (one amortized fill on the slow path) so
            # each later publish's gather writes into resident pages —
            # soft page faults would otherwise dominate the
            # latency-critical O(dirty) append.
            pool = np.empty((2 * n_chunks, _CHUNK), dtype=np.float64)
            pool.ravel()[:size] = tf
            pool[n_chunks:].fill(0.0)
            cmap = np.arange(n_chunks, dtype=np.int64)
            self._snap_pool = pool
            self._snap_used = n_chunks
            self._snap_map = cmap
            chunks_copied = n_chunks
        else:
            pool = self._snap_pool
            used = self._snap_used
            if used + k > pool.shape[0]:
                # Geometric regrowth; the bytewise prefix copy preserves
                # every published bit, and earlier snapshots keep (and
                # pin) the old pool object untouched.
                rows = max(used + k, 2 * pool.shape[0])
                new_pool = np.empty((rows, _CHUNK), dtype=np.float64)
                new_pool[:used] = pool[:used]
                new_pool[used:].fill(0.0)  # pre-fault, as at rebase
                pool = self._snap_pool = new_pool
            full = size >> _CHUNK_LOG  # number of complete chunks
            tail_len = size - (full << _CHUNK_LOG)
            tail_dirty = (
                tail_len > 0 and k > 0 and int(dirty_ids[-1]) == n_chunks - 1
            )
            body_ids = dirty_ids[:-1] if tail_dirty else dirty_ids
            nb = body_ids.size
            if nb:
                # take-with-out writes the gathered rows straight into
                # the pool; mode="clip" skips the bounds check that
                # would force a temporary (ids come from flatnonzero of
                # the bitmap, so they are in range by construction).
                np.take(
                    tf[: full << _CHUNK_LOG].reshape(full, _CHUNK),
                    body_ids,
                    axis=0,
                    out=pool[used:used + nb],
                    mode="clip",
                )
            if tail_dirty:
                pool[used + k - 1, :tail_len] = tf[full << _CHUNK_LOG:]
            cmap = self._snap_map.copy()
            cmap[dirty_ids] = np.arange(used, used + k, dtype=np.int64)
            self._snap_map = cmap
            self._snap_used = used + k
            chunks_copied = k
        self._dirty[:] = False
        self._chain_seq += 1
        snap = self._snapshot_shell(batch_hasher, workspace)
        snap.table = None
        snap._pool = pool
        snap._chunk_map = cmap
        snap._table_flat = pool.ravel()
        snap._chain_token = self._chain_token
        snap._chain_seq = self._chain_seq
        stats = {
            "dirty_fraction": dirty_fraction,
            "chunks_copied": int(chunks_copied),
            "n_chunks": int(n_chunks),
            "rebase": bool(rebase),
        }
        return snap, stats

    # ------------------------------------------------------------------
    # Merging (distributed / sharded training)
    # ------------------------------------------------------------------
    def _check_mergeable(self, other: "ScaledSketchTable") -> None:
        """Two sketches are mergeable iff they share the random
        projection — same dimensions and the same hash family."""
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into "
                f"{type(self).__name__}"
            )
        if (other.width, other.depth) != (self.width, self.depth):
            raise ValueError(
                f"dimension mismatch: ({self.width}, {self.depth}) vs "
                f"({other.width}, {other.depth})"
            )
        if (other.family.seed, other.family.kind) != (
            self.family.seed,
            self.family.kind,
        ):
            raise ValueError(
                "hash-family mismatch: merged sketches must share "
                "seed and kind (the projection R must be identical)"
            )

    def merge(self, *others: "ScaledSketchTable") -> "ScaledSketchTable":
        """Sum-merge independently trained sketches into ``self``.

        The Count-Sketch projection is linear, so the sum of the workers'
        scaled tables *is* the sketch of the summed model
        ``z_merged = sum_i z_i`` — exactly, whatever each worker's update
        history was.  Each model's lazy L2 scale is reconciled by folding
        it into its raw table (one exactly-rounded elementwise product
        per model) before the tables are summed in worker order; the
        merged scaled table is therefore *bit-for-bit* equal to
        ``sum_i(scale_i * table_i)`` evaluated left to right — the
        executable contract of ``tests/test_merge.py``.

        Step counters accumulate (``t`` counts total examples absorbed)
        and :attr:`merged_from` records how many single-stream models the
        result folds together.  Returns ``self``.

        Note the *semantics*: merged weight estimates recover the sum of
        the workers' models (k workers each approximating w* yield
        estimates near ``k * w*``); magnitude rankings — top-K recovery —
        are scale-invariant, and callers needing w*-scale estimates can
        divide by :attr:`merged_from`.  The uncompressed LR baseline
        mean-merges instead (see
        :meth:`repro.learning.ogd.UncompressedClassifier.merge`).
        """
        if not others:
            return self
        for other in others:
            self._check_mergeable(other)
        if self._scale != 1.0:
            # sum_merge folds the target's lazy scale into its raw
            # table; account it so the virtual log-scale stays monotone.
            self._fold_log += math.log(self._scale)
        sum_merge_scaled_tables(self, others)
        self._mark_dirty_all()
        return self

    def _repromote(self, heap, candidates, estimator) -> int:
        """Refill ``heap`` with the heaviest of ``candidates`` by
        re-estimating them against the current (merged) table.

        The shared tail of the WM and AWM merges: candidates are
        processed in sorted order (determinism), ``estimator`` maps an
        int64 id array to weight estimates, and the heap's own
        admission rule keeps the top ``capacity``.  Returns the number
        of entries admitted.
        """
        if not candidates:
            return 0
        ordered = np.array(sorted(candidates), dtype=np.int64)
        estimates = estimator(ordered)
        # push_many replays sequential pushes with a vectorized
        # admission pre-screen (the candidates are distinct non-members,
        # so the screen is decision-exact) and reports how many landed.
        return heap.push_many(ordered, estimates)

    # ------------------------------------------------------------------
    # Sketch-space projection helpers
    # ------------------------------------------------------------------
    def _rows(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(buckets, signs), each of shape (depth, nnz)."""
        return self.family.all_rows(indices)

    def _batch_rows(
        self,
        batch,
        rows: tuple[np.ndarray, np.ndarray] | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(buckets, signs, sign*value products, flat buckets) for a
        whole batch, every array living in the model's workspace.

        The zero-allocation front-end of the fused paths: hashes land
        in workspace arenas through :meth:`BatchHasher.rows_into`, and
        the products / row-offset adds write into reused buffers.
        Values are bit-identical to the fresh-array chain (gathers and
        elementwise ufuncs are buffer-independent).
        """
        ws = self._workspace()
        depth = self.depth
        nnz = batch.indices.size
        if rows is None:
            buckets = ws.array("b_buckets", (depth, nnz), np.int64)
            signs = ws.array("b_signs", (depth, nnz))
            self._batch_hasher.rows_into(batch.indices, buckets, signs)
        else:
            buckets, signs = rows
        sign_values = ws.array("b_sv", (depth, nnz))
        np.multiply(signs, batch.values, out=sign_values)
        flat = ws.array("b_flat", (depth, nnz), np.int64)
        np.add(buckets, self._row_offsets, out=flat)
        return buckets, signs, sign_values, flat

    def _check_decay_window(self, etas: np.ndarray) -> None:
        """Pre-validate a whole window of decays for the fused kernel.

        The unfused chain raises mid-batch at the first offending
        example (with earlier updates already applied); the fused
        kernel cannot raise mid-stream, so the window is validated up
        front — same trigger condition (``1 - eta * lambda <= 0`` iff
        ``eta * lambda >= 1``), same message, but no partial state.
        """
        lam = self.lambda_
        if lam <= 0.0 or etas.size == 0:
            return
        if float(etas.max()) * lam < 1.0:
            return
        first = int(np.argmax(etas * lam >= 1.0))
        eta = float(etas[first])
        raise ValueError(
            f"eta * lambda = {eta * lam} >= 1; decrease eta0"
        )

    # ------------------------------------------------------------------
    # Serving-path queries
    # ------------------------------------------------------------------
    def query_many(self, indices: np.ndarray) -> np.ndarray:
        """Sketch-recovery estimates for many features, serving-path.

        Bit-identical to the per-feature recovery behind
        ``estimate_weights`` for sketch-resident features, but built
        for query rate: hashes go through the model's cross-batch cache
        (repeated queries skip hashing entirely), and the gather +
        median run as one ``fused_query`` kernel call over workspace
        buffers.  Subclasses holding exact weights (the AWM active set)
        override this to answer members exactly.
        """
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        n = indices.size
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        ws = self._workspace()
        depth = self.depth
        buckets = ws.array("q_buckets", (depth, n), np.int64)
        signs = ws.array("q_signs", (depth, n))
        self._batch_hasher.rows_into(indices, buckets, signs)
        flat = ws.array("q_flat", (depth, n), np.int64)
        np.add(buckets, self._row_offsets, out=flat)
        gathered = ws.array("q_gathered", (n, depth))
        est = np.empty(n, dtype=np.float64)
        if self.depth == 1:
            factor = self._scale
        else:
            factor = self._sqrt_s * self._scale
        self.kernels.fused_query(
            self._table_flat, self._translate_flat(flat), signs.T,
            factor, gathered, est, kernels.EMPTY_SCRATCH,
        )
        if self.l1 > 0.0:
            est = np.sign(est) * np.maximum(np.abs(est) - self.l1, 0.0)
        return est

    def _margin_from_rows(
        self, buckets: np.ndarray, signs: np.ndarray, values: np.ndarray
    ) -> float:
        """z^T R x given precomputed per-row buckets and signs."""
        return self._margin_from_products(buckets, signs * values)

    def _margin_from_products(
        self,
        buckets: np.ndarray,
        sign_values: np.ndarray,
        flat_buckets: np.ndarray | None = None,
    ) -> float:
        """Margin from precomputed sign*value products (batched kernels).

        Bit-identical to :meth:`_margin_from_rows` — the elementwise
        ``signs * values`` products are the same floats whether computed
        per example or once per batch, and the margin kernel's sum is
        *exactly* rounded (``math.fsum`` semantics), so the reduction is
        independent of summation order and buffer alignment (NumPy's
        SIMD ``.sum()`` is not).

        ``flat_buckets`` may carry precomputed ``buckets + row_offsets``
        (batched kernels amortize that add over the whole batch).
        """
        if flat_buckets is None:
            flat_buckets = buckets + self._row_offsets
        # scratch=False: reached from the serial-scalar serving path,
        # which runs concurrently with the coalescer's batched reads on
        # the same snapshot and must not touch the shared workspace.
        return self.kernels.margin(
            self._table_flat,
            self._translate_flat(flat_buckets, scratch=False),
            sign_values, self._scale, self._sqrt_s,
        )

    def _scatter_add(
        self,
        buckets: np.ndarray,
        deltas: np.ndarray,
        flat_buckets: np.ndarray | None = None,
    ) -> None:
        """Accumulate ``deltas`` into the raw table at ``buckets``.

        One scatter kernel over the whole (depth, nnz) block; duplicate
        buckets within a row accumulate in element order, the same
        order as a per-row loop, so this is layout-deterministic
        whichever backend runs it.
        """
        if flat_buckets is None:
            flat_buckets = buckets + self._row_offsets
        self._mark_dirty_flat(flat_buckets)
        self.kernels.scatter_add(self._table_flat, flat_buckets, deltas)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _estimate_from_rows(
        self,
        buckets: np.ndarray,
        signs: np.ndarray,
        flat_buckets: np.ndarray | None = None,
        gathered_t: np.ndarray | None = None,
    ) -> np.ndarray:
        """Count-Sketch recovery: median over rows of sqrt(s)*alpha*sigma*z.

        The median kernel works on the *transposed* ``(nnz, depth)``
        table gather — each feature's row values adjacent, so the
        per-feature sort runs over contiguous memory and selects the
        exact same values as ``np.median`` without its per-call
        dispatch overhead.

        ``gathered_t`` may carry that gather
        (``table_flat.take(flat_buckets.T)``) when the caller already
        pulled those cells (the AWM kernel shares one gather between
        the margin and the tail queries); it is read, never mutated.
        """
        kb = self.kernels
        if gathered_t is None:
            if flat_buckets is None:
                flat_buckets = buckets + self._row_offsets
            # scratch=False: top_weights / scalar estimates land here
            # from both the serial thread and the coalescer thread on a
            # shared snapshot — no workspace scratch allowed.
            gathered_t = kb.gather_rows_t(
                self._table_flat,
                self._translate_flat(flat_buckets, scratch=False),
            )
        if self.depth == 1:
            factor = self._scale
        else:
            factor = self._sqrt_s * self._scale
        est = kb.median_estimate(gathered_t, signs.T, factor)
        if self.l1 > 0.0:
            est = np.sign(est) * np.maximum(np.abs(est) - self.l1, 0.0)
        return est

    def _estimate_bound(
        self,
        buckets: np.ndarray,
        flat_buckets: np.ndarray | None = None,
    ) -> float:
        """Cheap upper bound on ``max_i |estimate_i|`` for the given rows.

        The median over rows is bounded in magnitude by the largest row
        magnitude, so ``sqrt(s) * alpha * max_j |z_j|`` dominates every
        recovered estimate — useful to skip recovery entirely when no
        estimate could beat a heap-admission threshold.  Multiplication
        is monotone, so the bound is exact at the boundary for depth 1
        and conservative for depth > 1.
        """
        if buckets.size == 0:
            return 0.0
        if flat_buckets is None:
            flat_buckets = buckets + self._row_offsets
        hi = self.kernels.estimate_bound(
            self._table_flat,
            self._translate_flat(flat_buckets, scratch=False),
        )
        if self.depth == 1:
            bound = self._scale * hi
        else:
            bound = self._sqrt_s * self._scale * hi
        if self.l1 > 0.0:
            bound = max(bound - self.l1, 0.0)
        return bound

    def _sketch_estimate(self, indices: np.ndarray) -> np.ndarray:
        """Median-of-rows estimates for raw feature indices."""
        if indices.size == 0:
            return np.zeros(0, dtype=np.float64)
        buckets, signs = self._rows(indices)
        return self._estimate_from_rows(buckets, signs)

    # ------------------------------------------------------------------
    # Lazy L2 decay
    # ------------------------------------------------------------------
    def _decay_factor(self, eta: float) -> float:
        """The per-step multiplicative decay ``1 - eta * lambda``.

        Raises
        ------
        ValueError
            If the step would zero or flip the model
            (``eta * lambda >= 1``).
        """
        decay = 1.0 - eta * self.lambda_
        if decay <= 0.0:
            raise ValueError(
                f"eta * lambda = {eta * self.lambda_} >= 1; decrease eta0"
            )
        return decay

    def _decay_scale(self, decay: float) -> None:
        """Apply one decay step to the global scale, renormalizing the
        raw table when the scale underflows toward zero.

        A plain decay moves only the scale — the raw table bits stay
        put, so no chunk becomes dirty; the renorm fold rewrites every
        cell and dirties the whole bitmap.
        """
        self._scale *= decay
        if self._scale < _RENORM_THRESHOLD:
            self._fold_log += math.log(self._scale)
            self.table *= self._scale
            self._scale = 1.0
            self._mark_dirty_all()

    # ------------------------------------------------------------------
    # Common introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total sketch cells k = width * depth."""
        return self.width * self.depth

    def sketch_state(self) -> np.ndarray:
        """The current (scaled) sketch vector z as a flat array."""
        return self._scale * self._dense_table_flat()
