"""Shared substrate of the WM- and AWM-Sketch: a lazily-scaled table.

Both sketch classifiers maintain the same physical object — a
Count-Sketch-shaped array ``z`` of shape ``(depth, width)`` holding a
randomly-projected linear model, decayed multiplicatively by L2
regularization through a global scale ``alpha`` (Section 5.1,
"Efficient Regularization") and queried by median-of-rows Count-Sketch
recovery.  Historically the margin / estimate / decay / renormalization
logic was copy-pasted between ``wm_sketch.py`` and ``awm_sketch.py``;
:class:`ScaledSketchTable` is the single home for it, plus the batched
hashing front-end (:class:`~repro.hashing.batch.BatchHasher`) shared by
the vectorized ``fit_batch`` kernels.

Floating-point discipline: the batched kernels promise bit-level
equivalence with the per-example update path, so both paths must go
through the *same* helpers here — and those helpers deliberately avoid
BLAS (``np.dot`` rounds differently depending on operand alignment, so
it is not bit-reproducible across array layouts).  Exactly-rounded
margin sums and element-order ``ufunc.at`` scatters are
layout-independent, which makes per-example and batched replays produce
identical tables.

The helper bodies themselves live in :mod:`repro.kernels`: each hot
primitive (margin, scatter, transposed gather, median recovery,
estimate bound) dispatches through the table's kernel backend — the
NumPy reference by default, or the compiled (Numba) backend when
selected — under the same bit-level contract, fuzz-checked across
backends in ``tests/test_kernel_backends.py``.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.hashing.batch import BatchHasher
from repro.hashing.family import HashFamily
from repro.learning.base import StreamingClassifier, sum_merge_scaled_tables
from repro.learning.losses import LogisticLoss, Loss
from repro.learning.schedules import Schedule, as_schedule

#: Scale threshold below which the lazy L2 factor is folded back into
#: the raw table to avoid float underflow.
_RENORM_THRESHOLD = 1e-150


class ScaledSketchTable(StreamingClassifier):
    """Count-Sketch table + lazy L2 scale shared by WM/AWM sketches.

    Subclasses add their learning rule (``update`` / ``fit_batch``) and
    recovery policy; this base owns:

    * the hash family and the :class:`BatchHasher` used by batched
      kernels;
    * the raw table, the global scale ``alpha`` and its
      renormalization;
    * the linear margin ``z^T R x`` and the median-of-rows estimate,
      computed from precomputed per-row (bucket, sign) arrays.
    """

    #: Optional L1 soft-threshold applied to estimates at query time;
    #: only the WM-Sketch exposes it, the default is off.
    l1: float = 0.0

    #: Number of independently trained models folded into this one via
    #: :meth:`merge` (1 for a single-stream model).  Serialized alongside
    #: the table so merged checkpoints are self-describing.
    merged_from: int = 1

    #: Kernel-backend provenance restored from a checkpoint: the name of
    #: the backend that computed the saved state (None for models built
    #: in-process).  Informational — backends are bit-equivalent.
    trained_backend: str | None = None

    #: Route batched work through the fused mega-kernels
    #: (:mod:`repro.kernels.api`) over the model's preallocated
    #: :class:`~repro.kernels.workspace.KernelWorkspace`.  On by
    #: default; turned off (or forced off by a loss without a
    #: ``kernel_id``) every batched path falls back to the original
    #: per-kernel chain — the executable reference the fused paths are
    #: fuzz-checked against (``tests/test_fused_kernels.py``).
    use_fused: bool = True

    def __init__(
        self,
        width: int,
        depth: int,
        loss: Loss | None = None,
        lambda_: float = 1e-6,
        learning_rate: Schedule | float = 0.1,
        seed: int = 0,
        hash_kind: str = "tabulation",
        backend: str | None = None,
    ):
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if lambda_ < 0:
            raise ValueError(f"lambda_ must be >= 0, got {lambda_}")
        self.width = width
        self.depth = depth
        self.loss = loss if loss is not None else LogisticLoss()
        self.lambda_ = lambda_
        self.schedule = as_schedule(learning_rate)
        #: Kernel-backend override (None = follow the process default);
        #: threaded into the hash family and every table kernel, and
        #: serialized with the model.
        self.backend = backend
        self.family = HashFamily(
            width, depth, seed=seed, kind=hash_kind, backend=backend
        )
        self.table = np.zeros((depth, width), dtype=np.float64)
        self._scale = 1.0  # the global alpha of Section 5.1
        self._sqrt_s = float(np.sqrt(depth))
        self._batch_hasher = BatchHasher(self.family)
        # Column vector of row ids: ``table[_row_idx, buckets]`` gathers
        # a whole (depth, nnz) block in one fancy index.
        self._row_idx = np.arange(depth, dtype=np.intp).reshape(-1, 1)
        # Flat-view machinery: ``_table_flat.take(buckets + _row_offsets)``
        # is the same gather through the cheaper flat path (gathers move
        # bits, they do no arithmetic, so flat vs. fancy is bit-neutral).
        self._row_offsets = (
            np.arange(depth, dtype=np.int64) * width
        ).reshape(-1, 1)
        self._table_flat = self.table.ravel()
        # Dispatch-free kernel binding + lazily-built workspace (both
        # per-process caches: dropped on pickling, rebuilt on load).
        self._kb = kernels.BackendHandle(backend)
        self._ws: kernels.KernelWorkspace | None = None
        self.t = 0

    @property
    def kernels(self) -> "kernels.KernelBackend":
        """The kernel backend this table's hot loops dispatch through.

        Resolved through a cached :class:`~repro.kernels.BackendHandle`
        (one integer epoch compare per access): an explicit per-model
        ``backend`` wins, otherwise the process default
        (:func:`repro.kernels.get_backend`) applies — ``set_backend``
        still takes effect on live models because it bumps the epoch.
        """
        return self._kb.get()

    def _workspace(self) -> "kernels.KernelWorkspace":
        """The model's grow-only fused-kernel workspace (lazily built,
        never serialized)."""
        ws = self._ws
        if ws is None:
            ws = self._ws = kernels.KernelWorkspace()
        return ws

    # ------------------------------------------------------------------
    # Pickling (spawn-safe worker processes)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Drop derived buffers; critically, ``_table_flat`` is a *view*
        of ``table`` — pickling it naively would materialize a detached
        copy and silently break the aliasing every scatter/gather relies
        on.  The batch hasher, the kernel-backend handle and the fused
        workspace are pure per-process caches and restart cold."""
        state = self.__dict__.copy()
        for key in ("_table_flat", "_row_idx", "_row_offsets",
                    "_batch_hasher", "_kb", "_ws"):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        state.setdefault("backend", None)  # pre-kernel pickles
        self.__dict__.update(state)
        depth, width = self.depth, self.width
        self._row_idx = np.arange(depth, dtype=np.intp).reshape(-1, 1)
        self._row_offsets = (
            np.arange(depth, dtype=np.int64) * width
        ).reshape(-1, 1)
        self._table_flat = self.table.ravel()
        self._batch_hasher = BatchHasher(self.family)
        self._kb = kernels.BackendHandle(self.backend)
        self._ws = None  # rebuilt lazily on first fused batch

    # ------------------------------------------------------------------
    # Serving snapshots
    # ------------------------------------------------------------------
    def snapshot(
        self,
        batch_hasher: "BatchHasher | None" = None,
        workspace: "kernels.KernelWorkspace | None" = None,
    ) -> "ScaledSketchTable":
        """A consistent read-only copy for concurrent serving.

        The lazy L2 scale is folded into the copied table (the fold
        *is* the copy — one vectorized multiply), so a snapshot never
        exposes a half-applied update and its answers are a pure
        function of publish-time state.  The trainer keeps mutating the
        original; readers keep answering from the snapshot.  Subclass
        stores (the WM/AWM ``heap``) are folded the same way through
        :meth:`~repro.heap.topk.TopKStore.snapshot_view`.

        ``batch_hasher`` / ``workspace`` let a snapshot *manager* thread
        its long-lived reader-side caches through successive publishes
        (hash functions are pure and shared with the live model, so LRU
        warmth carries over; the workspace arenas keep reads
        zero-allocation).  Both default to fresh caches.  Snapshots are
        read-only by contract and, like every model, single-threaded:
        serving layers must serialize access per snapshot chain.
        """
        snap = object.__new__(type(self))
        state = self.__dict__.copy()
        for key in ("table", "_scale", "_table_flat",
                    "_batch_hasher", "_kb", "_ws", "heap"):
            state.pop(key, None)
        snap.__dict__.update(state)
        snap.table = np.multiply(self.table, self._scale)
        snap._scale = 1.0
        snap._table_flat = snap.table.ravel()
        if batch_hasher is not None and batch_hasher.family is not self.family:
            raise ValueError(
                "batch_hasher must wrap the model's own hash family"
            )
        snap._batch_hasher = (
            batch_hasher
            if batch_hasher is not None
            else BatchHasher(self.family)
        )
        snap._kb = self._kb
        snap._ws = workspace
        heap = getattr(self, "heap", None)
        if heap is not None:
            snap.heap = heap.snapshot_view()
        elif "heap" in self.__dict__:
            snap.heap = None
        return snap

    # ------------------------------------------------------------------
    # Merging (distributed / sharded training)
    # ------------------------------------------------------------------
    def _check_mergeable(self, other: "ScaledSketchTable") -> None:
        """Two sketches are mergeable iff they share the random
        projection — same dimensions and the same hash family."""
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into "
                f"{type(self).__name__}"
            )
        if (other.width, other.depth) != (self.width, self.depth):
            raise ValueError(
                f"dimension mismatch: ({self.width}, {self.depth}) vs "
                f"({other.width}, {other.depth})"
            )
        if (other.family.seed, other.family.kind) != (
            self.family.seed,
            self.family.kind,
        ):
            raise ValueError(
                "hash-family mismatch: merged sketches must share "
                "seed and kind (the projection R must be identical)"
            )

    def merge(self, *others: "ScaledSketchTable") -> "ScaledSketchTable":
        """Sum-merge independently trained sketches into ``self``.

        The Count-Sketch projection is linear, so the sum of the workers'
        scaled tables *is* the sketch of the summed model
        ``z_merged = sum_i z_i`` — exactly, whatever each worker's update
        history was.  Each model's lazy L2 scale is reconciled by folding
        it into its raw table (one exactly-rounded elementwise product
        per model) before the tables are summed in worker order; the
        merged scaled table is therefore *bit-for-bit* equal to
        ``sum_i(scale_i * table_i)`` evaluated left to right — the
        executable contract of ``tests/test_merge.py``.

        Step counters accumulate (``t`` counts total examples absorbed)
        and :attr:`merged_from` records how many single-stream models the
        result folds together.  Returns ``self``.

        Note the *semantics*: merged weight estimates recover the sum of
        the workers' models (k workers each approximating w* yield
        estimates near ``k * w*``); magnitude rankings — top-K recovery —
        are scale-invariant, and callers needing w*-scale estimates can
        divide by :attr:`merged_from`.  The uncompressed LR baseline
        mean-merges instead (see
        :meth:`repro.learning.ogd.UncompressedClassifier.merge`).
        """
        if not others:
            return self
        for other in others:
            self._check_mergeable(other)
        sum_merge_scaled_tables(self, others)
        return self

    def _repromote(self, heap, candidates, estimator) -> int:
        """Refill ``heap`` with the heaviest of ``candidates`` by
        re-estimating them against the current (merged) table.

        The shared tail of the WM and AWM merges: candidates are
        processed in sorted order (determinism), ``estimator`` maps an
        int64 id array to weight estimates, and the heap's own
        admission rule keeps the top ``capacity``.  Returns the number
        of entries admitted.
        """
        if not candidates:
            return 0
        ordered = np.array(sorted(candidates), dtype=np.int64)
        estimates = estimator(ordered)
        # push_many replays sequential pushes with a vectorized
        # admission pre-screen (the candidates are distinct non-members,
        # so the screen is decision-exact) and reports how many landed.
        return heap.push_many(ordered, estimates)

    # ------------------------------------------------------------------
    # Sketch-space projection helpers
    # ------------------------------------------------------------------
    def _rows(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(buckets, signs), each of shape (depth, nnz)."""
        return self.family.all_rows(indices)

    def _batch_rows(
        self,
        batch,
        rows: tuple[np.ndarray, np.ndarray] | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(buckets, signs, sign*value products, flat buckets) for a
        whole batch, every array living in the model's workspace.

        The zero-allocation front-end of the fused paths: hashes land
        in workspace arenas through :meth:`BatchHasher.rows_into`, and
        the products / row-offset adds write into reused buffers.
        Values are bit-identical to the fresh-array chain (gathers and
        elementwise ufuncs are buffer-independent).
        """
        ws = self._workspace()
        depth = self.depth
        nnz = batch.indices.size
        if rows is None:
            buckets = ws.array("b_buckets", (depth, nnz), np.int64)
            signs = ws.array("b_signs", (depth, nnz))
            self._batch_hasher.rows_into(batch.indices, buckets, signs)
        else:
            buckets, signs = rows
        sign_values = ws.array("b_sv", (depth, nnz))
        np.multiply(signs, batch.values, out=sign_values)
        flat = ws.array("b_flat", (depth, nnz), np.int64)
        np.add(buckets, self._row_offsets, out=flat)
        return buckets, signs, sign_values, flat

    def _check_decay_window(self, etas: np.ndarray) -> None:
        """Pre-validate a whole window of decays for the fused kernel.

        The unfused chain raises mid-batch at the first offending
        example (with earlier updates already applied); the fused
        kernel cannot raise mid-stream, so the window is validated up
        front — same trigger condition (``1 - eta * lambda <= 0`` iff
        ``eta * lambda >= 1``), same message, but no partial state.
        """
        lam = self.lambda_
        if lam <= 0.0 or etas.size == 0:
            return
        if float(etas.max()) * lam < 1.0:
            return
        first = int(np.argmax(etas * lam >= 1.0))
        eta = float(etas[first])
        raise ValueError(
            f"eta * lambda = {eta * lam} >= 1; decrease eta0"
        )

    # ------------------------------------------------------------------
    # Serving-path queries
    # ------------------------------------------------------------------
    def query_many(self, indices: np.ndarray) -> np.ndarray:
        """Sketch-recovery estimates for many features, serving-path.

        Bit-identical to the per-feature recovery behind
        ``estimate_weights`` for sketch-resident features, but built
        for query rate: hashes go through the model's cross-batch cache
        (repeated queries skip hashing entirely), and the gather +
        median run as one ``fused_query`` kernel call over workspace
        buffers.  Subclasses holding exact weights (the AWM active set)
        override this to answer members exactly.
        """
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        n = indices.size
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        ws = self._workspace()
        depth = self.depth
        buckets = ws.array("q_buckets", (depth, n), np.int64)
        signs = ws.array("q_signs", (depth, n))
        self._batch_hasher.rows_into(indices, buckets, signs)
        flat = ws.array("q_flat", (depth, n), np.int64)
        np.add(buckets, self._row_offsets, out=flat)
        gathered = ws.array("q_gathered", (n, depth))
        est = np.empty(n, dtype=np.float64)
        if self.depth == 1:
            factor = self._scale
        else:
            factor = self._sqrt_s * self._scale
        self.kernels.fused_query(
            self._table_flat, flat, signs.T, factor, gathered, est,
            kernels.EMPTY_SCRATCH,
        )
        if self.l1 > 0.0:
            est = np.sign(est) * np.maximum(np.abs(est) - self.l1, 0.0)
        return est

    def _margin_from_rows(
        self, buckets: np.ndarray, signs: np.ndarray, values: np.ndarray
    ) -> float:
        """z^T R x given precomputed per-row buckets and signs."""
        return self._margin_from_products(buckets, signs * values)

    def _margin_from_products(
        self,
        buckets: np.ndarray,
        sign_values: np.ndarray,
        flat_buckets: np.ndarray | None = None,
    ) -> float:
        """Margin from precomputed sign*value products (batched kernels).

        Bit-identical to :meth:`_margin_from_rows` — the elementwise
        ``signs * values`` products are the same floats whether computed
        per example or once per batch, and the margin kernel's sum is
        *exactly* rounded (``math.fsum`` semantics), so the reduction is
        independent of summation order and buffer alignment (NumPy's
        SIMD ``.sum()`` is not).

        ``flat_buckets`` may carry precomputed ``buckets + row_offsets``
        (batched kernels amortize that add over the whole batch).
        """
        if flat_buckets is None:
            flat_buckets = buckets + self._row_offsets
        return self.kernels.margin(
            self._table_flat, flat_buckets, sign_values,
            self._scale, self._sqrt_s,
        )

    def _scatter_add(
        self,
        buckets: np.ndarray,
        deltas: np.ndarray,
        flat_buckets: np.ndarray | None = None,
    ) -> None:
        """Accumulate ``deltas`` into the raw table at ``buckets``.

        One scatter kernel over the whole (depth, nnz) block; duplicate
        buckets within a row accumulate in element order, the same
        order as a per-row loop, so this is layout-deterministic
        whichever backend runs it.
        """
        if flat_buckets is None:
            flat_buckets = buckets + self._row_offsets
        self.kernels.scatter_add(self._table_flat, flat_buckets, deltas)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _estimate_from_rows(
        self,
        buckets: np.ndarray,
        signs: np.ndarray,
        flat_buckets: np.ndarray | None = None,
        gathered_t: np.ndarray | None = None,
    ) -> np.ndarray:
        """Count-Sketch recovery: median over rows of sqrt(s)*alpha*sigma*z.

        The median kernel works on the *transposed* ``(nnz, depth)``
        table gather — each feature's row values adjacent, so the
        per-feature sort runs over contiguous memory and selects the
        exact same values as ``np.median`` without its per-call
        dispatch overhead.

        ``gathered_t`` may carry that gather
        (``table_flat.take(flat_buckets.T)``) when the caller already
        pulled those cells (the AWM kernel shares one gather between
        the margin and the tail queries); it is read, never mutated.
        """
        kb = self.kernels
        if gathered_t is None:
            if flat_buckets is None:
                flat_buckets = buckets + self._row_offsets
            gathered_t = kb.gather_rows_t(self._table_flat, flat_buckets)
        if self.depth == 1:
            factor = self._scale
        else:
            factor = self._sqrt_s * self._scale
        est = kb.median_estimate(gathered_t, signs.T, factor)
        if self.l1 > 0.0:
            est = np.sign(est) * np.maximum(np.abs(est) - self.l1, 0.0)
        return est

    def _estimate_bound(
        self,
        buckets: np.ndarray,
        flat_buckets: np.ndarray | None = None,
    ) -> float:
        """Cheap upper bound on ``max_i |estimate_i|`` for the given rows.

        The median over rows is bounded in magnitude by the largest row
        magnitude, so ``sqrt(s) * alpha * max_j |z_j|`` dominates every
        recovered estimate — useful to skip recovery entirely when no
        estimate could beat a heap-admission threshold.  Multiplication
        is monotone, so the bound is exact at the boundary for depth 1
        and conservative for depth > 1.
        """
        if buckets.size == 0:
            return 0.0
        if flat_buckets is None:
            flat_buckets = buckets + self._row_offsets
        hi = self.kernels.estimate_bound(self._table_flat, flat_buckets)
        if self.depth == 1:
            bound = self._scale * hi
        else:
            bound = self._sqrt_s * self._scale * hi
        if self.l1 > 0.0:
            bound = max(bound - self.l1, 0.0)
        return bound

    def _sketch_estimate(self, indices: np.ndarray) -> np.ndarray:
        """Median-of-rows estimates for raw feature indices."""
        if indices.size == 0:
            return np.zeros(0, dtype=np.float64)
        buckets, signs = self._rows(indices)
        return self._estimate_from_rows(buckets, signs)

    # ------------------------------------------------------------------
    # Lazy L2 decay
    # ------------------------------------------------------------------
    def _decay_factor(self, eta: float) -> float:
        """The per-step multiplicative decay ``1 - eta * lambda``.

        Raises
        ------
        ValueError
            If the step would zero or flip the model
            (``eta * lambda >= 1``).
        """
        decay = 1.0 - eta * self.lambda_
        if decay <= 0.0:
            raise ValueError(
                f"eta * lambda = {eta * self.lambda_} >= 1; decrease eta0"
            )
        return decay

    def _decay_scale(self, decay: float) -> None:
        """Apply one decay step to the global scale, renormalizing the
        raw table when the scale underflows toward zero."""
        self._scale *= decay
        if self._scale < _RENORM_THRESHOLD:
            self.table *= self._scale
            self._scale = 1.0

    # ------------------------------------------------------------------
    # Common introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total sketch cells k = width * depth."""
        return self.width * self.depth

    def sketch_state(self) -> np.ndarray:
        """The current (scaled) sketch vector z as a flat array."""
        return (self._scale * self.table).ravel()
