"""Memory-budget cost model and configuration enumeration.

Section 7.1's cost model charges **4 bytes** per feature identifier,
feature weight, or auxiliary value.  Under it:

=======================  =========================================
Method                   Cells used
=======================  =========================================
WM-Sketch                width * depth + 2 * |S|   (heap id+weight)
AWM-Sketch               width * depth + 2 * |S|
Feature hashing          width
Simple Truncation        2 * K                      (id + weight)
Probabilistic Trunc.     3 * K                      (+ reservoir key)
Space Saving Frequent    3 * K                      (+ count)
Count-Min Frequent       width * depth + 3 * K
Uncompressed LR          d + 2 * 128                (dense + heap)
=======================  =========================================

For each byte budget the paper evaluates "a range of configurations
compatible with that space constraint" and reports the best; the
``enumerate_*`` functions below generate exactly those search spaces
(widths restricted to powers of two, as in Table 2), and
``default_awm_config`` implements the configuration the paper found
uniformly best for classification: half the budget to the active set,
the rest to a depth-1 sketch (Section 7.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.learning.base import CELL_BYTES

#: The memory budgets evaluated throughout Section 7, in bytes.
PAPER_BUDGETS_KB = (2, 4, 8, 16, 32)


def budget_cells(budget_bytes: int) -> int:
    """Number of 4-byte cells available within ``budget_bytes``."""
    if budget_bytes < CELL_BYTES:
        raise ValueError(f"budget {budget_bytes}B is below one cell")
    return budget_bytes // CELL_BYTES


def _powers_of_two(max_value: int, min_value: int = 1) -> list[int]:
    """All powers of two in [min_value, max_value]."""
    out = []
    p = 1
    while p <= max_value:
        if p >= min_value:
            out.append(p)
        p *= 2
    return out


@dataclass(frozen=True)
class SketchConfig:
    """A (heap, width, depth) configuration for WM/AWM sketches.

    ``backend`` names the kernel backend the model should run on
    (``"auto"`` = numba when available, else numpy; see
    :mod:`repro.kernels`).  It costs no cells — backends change *how*
    the hot loops run, never the results — and is threaded into model
    constructors via :meth:`model_kwargs`.
    """

    heap_capacity: int
    width: int
    depth: int
    backend: str = "auto"

    def model_kwargs(self) -> dict:
        """Constructor kwargs for WM/AWM sketches built from this config.

        The ``"auto"`` backend maps to ``None`` (follow the process
        default) so that configs stay inert unless a specific backend
        was requested.
        """
        return {
            "heap_capacity": self.heap_capacity,
            "width": self.width,
            "depth": self.depth,
            "backend": None if self.backend == "auto" else self.backend,
        }

    @property
    def cells(self) -> int:
        """Total cells consumed under the cost model."""
        return self.width * self.depth + 2 * self.heap_capacity

    @property
    def bytes(self) -> int:
        """Total bytes consumed under the cost model."""
        return CELL_BYTES * self.cells

    def fits(self, budget_bytes: int) -> bool:
        """Whether this configuration fits in ``budget_bytes``."""
        return self.bytes <= budget_bytes


def enumerate_sketch_configs(
    budget_bytes: int,
    min_heap: int = 64,
    min_width: int = 64,
    max_depth: int = 32,
) -> list[SketchConfig]:
    """All power-of-two (heap, width) x depth configs within a budget.

    Mirrors the paper's per-budget configuration sweep: heap capacities
    and widths over powers of two, depth filling the remaining cells up
    to ``max_depth``.
    """
    cells = budget_cells(budget_bytes)
    configs = []
    for heap in _powers_of_two(cells // 2, min_heap):
        remaining = cells - 2 * heap
        if remaining < min_width:
            continue
        for width in _powers_of_two(remaining, min_width):
            depth = min(remaining // width, max_depth)
            if depth < 1:
                continue
            configs.append(SketchConfig(heap, width, depth))
    return configs


def default_awm_config(budget_bytes: int) -> SketchConfig:
    """The paper's uniformly-best AWM layout: half the budget to the
    active set, the remainder to a depth-1 sketch (Section 7.3).

    Heap capacity and width are rounded down to powers of two (matching
    Table 2's AWM rows, e.g. 8 KB -> |S|=512, width=1024, depth=1).
    """
    cells = budget_cells(budget_bytes)
    heap = _largest_power_of_two(cells // 4)
    width = _largest_power_of_two(cells - 2 * heap)
    return SketchConfig(heap_capacity=heap, width=width, depth=1)


def default_wm_config(budget_bytes: int, depth_hint: int = 4) -> SketchConfig:
    """A WM layout in the spirit of Table 2's WM rows: a small fixed heap
    (|S| = 128) with the remaining cells split width x depth, width a
    power of two near 128-256 and depth growing with the budget."""
    cells = budget_cells(budget_bytes)
    heap = min(128, _largest_power_of_two(max(cells // 4, 1)))
    remaining = cells - 2 * heap
    if remaining < 2:
        raise ValueError(f"budget {budget_bytes}B too small for a WM sketch")
    width = min(256, _largest_power_of_two(remaining))
    depth = max(1, min(remaining // width, 32))
    return SketchConfig(heap_capacity=heap, width=width, depth=depth)


def _largest_power_of_two(n: int) -> int:
    if n < 1:
        raise ValueError(f"no power of two <= {n}")
    return 1 << (n.bit_length() - 1)


# ----------------------------------------------------------------------
# Baseline capacity calculators (cells -> per-method sizes)
# ----------------------------------------------------------------------
def truncation_capacity(budget_bytes: int) -> int:
    """Simple Truncation slots: 2 cells (id + weight) each."""
    return max(1, budget_cells(budget_bytes) // 2)

def probabilistic_truncation_capacity(budget_bytes: int) -> int:
    """Probabilistic Truncation slots: 3 cells (id + weight + key) each."""
    return max(1, budget_cells(budget_bytes) // 3)


def space_saving_capacity(budget_bytes: int) -> int:
    """Space Saving Frequent slots: 3 cells (id + count + weight) each."""
    return max(1, budget_cells(budget_bytes) // 3)


def feature_hashing_width(budget_bytes: int, power_of_two: bool = True) -> int:
    """Feature hashing table size: every cell is a weight."""
    cells = budget_cells(budget_bytes)
    return _largest_power_of_two(cells) if power_of_two else cells


def count_min_frequent_sizes(
    budget_bytes: int, heap_fraction: float = 0.25, depth: int = 2
) -> tuple[int, int, int]:
    """(heap_capacity, width, depth) for Count-Min Frequent.

    ``heap_fraction`` of the cells go to the 3-cell heap slots; the rest
    form the CM table (width a power of two).
    """
    cells = budget_cells(budget_bytes)
    heap = max(1, int(cells * heap_fraction) // 3)
    remaining = cells - 3 * heap
    width = _largest_power_of_two(max(remaining // depth, 1))
    return heap, width, depth
