"""The paper's primary contribution: WM-Sketch and AWM-Sketch.

* :class:`~repro.core.wm_sketch.WMSketch` — Algorithm 1, the basic
  Weight-Median Sketch (Count-Sketch projection + online gradient
  descent on the compressed objective, median-of-rows weight recovery).
* :class:`~repro.core.awm_sketch.AWMSketch` — Algorithm 2, the
  Active-Set variant that stores the top-|S| weights exactly in a heap
  and sketches only the tail.
* :class:`~repro.core.multiclass.MulticlassSketch` — the Section 9
  one-vs-rest / NCE extension.
* :mod:`~repro.core.theory` — Theorem 1/2 sizing calculators.
* :mod:`~repro.core.config` — the Section 7.1 memory cost model and the
  per-budget configuration search space of Table 2.
"""

from repro.core.awm_sketch import AWMSketch
from repro.core.sketch_table import ScaledSketchTable
from repro.core.config import (
    PAPER_BUDGETS_KB,
    SketchConfig,
    budget_cells,
    default_awm_config,
    default_wm_config,
    enumerate_sketch_configs,
    feature_hashing_width,
    probabilistic_truncation_capacity,
    space_saving_capacity,
    truncation_capacity,
)
from repro.core.multiclass import MulticlassSketch
from repro.core.serialization import load_sketch, save_sketch
from repro.core.theory import (
    SketchSizing,
    achievable_epsilon,
    count_min_sizing,
    count_sketch_sizing,
    theorem1_sizing,
    theorem2_sample_size,
)
from repro.core.wm_sketch import WMSketch

__all__ = [
    "WMSketch",
    "AWMSketch",
    "ScaledSketchTable",
    "MulticlassSketch",
    "save_sketch",
    "load_sketch",
    "SketchConfig",
    "SketchSizing",
    "PAPER_BUDGETS_KB",
    "budget_cells",
    "default_awm_config",
    "default_wm_config",
    "enumerate_sketch_configs",
    "feature_hashing_width",
    "probabilistic_truncation_capacity",
    "space_saving_capacity",
    "truncation_capacity",
    "theorem1_sizing",
    "theorem2_sample_size",
    "achievable_epsilon",
    "count_sketch_sizing",
    "count_min_sizing",
]
