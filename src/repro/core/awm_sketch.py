"""The Active-Set Weight-Median Sketch (Algorithm 2).

The AWM-Sketch splits its budget between an *active set* — a min-heap of
the top-|S| features whose weights are stored **exactly** — and a
WM-style sketch that absorbs only the tail.  Per update on (x, y):

1. The margin combines the exact active-set weights (for features of x
   in S) with sketched estimates (for the rest):
   ``tau = sum_{i in S} S[i] x_i + z^T R x_tail``.
2. Active-set weights receive the ordinary OGD update (decay + gradient).
3. Every tail feature i of x computes its *hypothetical* updated weight
   ``w~ = Query(i) - eta y x_i loss'(y tau)``:

   * if ``|w~|`` beats the smallest active-set magnitude, i is promoted
     into the heap carrying ``w~`` exactly, and the evicted feature's
     weight is folded back into the sketch (the sketch is credited with
     ``S[i_min] - Query(i_min)``, so its estimate of the evictee is
     brought up to date);
   * otherwise the gradient increment is applied to the sketch.

The effect (Section 9): features stored in the heap are not hashed at
all, so they cannot collide with — and corrupt — the tail estimates;
conversely erroneous promotions decay under L2 regularization and get
evicted again.  The paper finds this variant dominates the basic
WM-Sketch on both recovery and accuracy, with the best configuration
giving *half* the budget to the heap and using a depth-1 sketch
(Section 7.3).

The table / scale / margin / recovery machinery is shared with the
WM-Sketch through :class:`~repro.core.sketch_table.ScaledSketchTable`.
:meth:`AWMSketch.fit_batch` hashes a whole batch's index set once
(deduplicated, vectorized) and replays Algorithm 2 per example over the
precomputed rows — state-identical to per-example :meth:`update` calls.
"""

from __future__ import annotations

import math

import numpy as np

from repro import kernels
from repro.core.sketch_table import _RENORM_THRESHOLD, ScaledSketchTable
from repro.data.batch import SparseBatch
from repro.data.sparse import SparseExample
from repro.heap.topk import BatchSlotCache, TopKStore
from repro.learning.base import CELL_BYTES
from repro.learning.losses import Loss
from repro.learning.schedules import Schedule

__all__ = ["AWMSketch", "_RENORM_THRESHOLD"]

#: Shared empty member arrays for the no-active-member case of the
#: whole-example fused kernel (dtypes match ``member_slots`` output and
#: feature values, keeping compiled specializations monomorphic).
_EMPTY_SLOTS = np.empty(0, dtype=np.intp)
_EMPTY_VALUES = np.empty(0, dtype=np.float64)


class AWMSketch(ScaledSketchTable):
    """Active-Set Weight-Median Sketch.

    Parameters
    ----------
    width, depth:
        Sketch dimensions.  The paper's best configurations use
        ``depth=1`` (a single hash table) with half the budget on the
        heap; see :func:`repro.core.config.default_awm_config`.
    heap_capacity:
        Active-set size |S| (must be >= 1).
    loss, lambda_, learning_rate, seed, hash_kind:
        As for :class:`repro.core.wm_sketch.WMSketch`.
    backend:
        Kernel-backend override for every hot loop (``None`` = follow
        the process default; see :mod:`repro.kernels`); the 1-sparse
        scalar fast path stays pure Python on every backend.
    scalar_fast_path:
        Use the all-scalar update for 1-sparse inputs (identical results
        to the batch path, ~10x faster for the Section 8 applications).
        Exposed so tests can verify the equivalence.
    """

    def __init__(
        self,
        width: int,
        depth: int = 1,
        heap_capacity: int = 128,
        loss: Loss | None = None,
        lambda_: float = 1e-6,
        learning_rate: Schedule | float = 0.1,
        seed: int = 0,
        hash_kind: str = "tabulation",
        backend: str | None = None,
        scalar_fast_path: bool = True,
    ):
        if heap_capacity < 1:
            raise ValueError(f"heap_capacity must be >= 1, got {heap_capacity}")
        super().__init__(
            width,
            depth,
            loss=loss,
            lambda_=lambda_,
            learning_rate=learning_rate,
            seed=seed,
            hash_kind=hash_kind,
            backend=backend,
        )
        self.heap = TopKStore(heap_capacity, backend=backend)
        self.scalar_fast_path = scalar_fast_path
        # Diagnostics: promotion/eviction churn (exposed for ablations).
        self.n_promotions = 0

    #: Testing hook: take the fused_query branch of _update_example even
    #: on interpreted backends, so the equivalence suite can exercise it
    #: without a compiler.  Never set in production code.
    _force_fused_query: bool = False

    #: Same hook for the whole-example ``fused_awm_update`` kernel
    #: (gather → margin → decay → active-set step → recovery → screen →
    #: scatter in one call).  The kernel only pays on compiled backends,
    #: so interpreted backends keep the chain unless a test forces it.
    _force_fused_example: bool = False

    # ------------------------------------------------------------------
    # Sketch-space helpers (tail features only)
    # ------------------------------------------------------------------
    def _sketch_margin(self, indices: np.ndarray, values: np.ndarray) -> float:
        if indices.size == 0:
            return 0.0
        buckets, signs = self.family.all_rows(indices)
        return self._margin_from_rows(buckets, signs, values)

    def _sketch_add(self, index: int, delta: float) -> None:
        """Add ``delta`` to the sketched weight of a single feature."""
        key = np.array([index], dtype=np.int64)
        coeff = delta / (self._sqrt_s * self._scale)
        for j in range(self.depth):
            bucket = self.family.buckets(key, j)[0]
            sign = self.family.signs(key, j)[0]
            self._mark_dirty_bucket(j, int(bucket))
            self.table[j, bucket] += coeff * sign

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _split(self, x: SparseExample) -> tuple[np.ndarray, np.ndarray]:
        """Boolean mask of x's features that are in the active set."""
        in_heap = self._membership(x.indices)
        return in_heap, ~in_heap

    def _membership(self, indices: np.ndarray) -> np.ndarray:
        """Boolean mask of which indices are currently in the active set
        (one vectorized probe against the store's sorted-key snapshot)."""
        return self.heap.contains_many(indices)

    def predict_margin(self, x: SparseExample) -> float:
        slots = self.heap.member_slots(x.indices)
        in_heap = slots >= 0
        total = 0.0
        if in_heap.any():
            products = (
                self.heap.values_at(slots[in_heap]) * x.values[in_heap]
            )
            for p in products.tolist():
                total += p
            in_sketch = ~in_heap
        else:
            in_sketch = slice(None)
        total += self._sketch_margin(x.indices[in_sketch], x.values[in_sketch])
        return total

    def predict_batch(self, batch: SparseBatch) -> np.ndarray:
        """Batched margins — one cached hash + one membership probe.

        The per-example combine (exact active-set products plus the
        exactly-rounded sketch margin) runs over pre-hashed workspace
        rows and a single batch-wide ``member_slots`` probe instead of
        hashing and probing per example; margins are **bit-identical**
        to per-example :meth:`predict_margin`.
        """
        n = len(batch)
        margins = np.empty(n, dtype=np.float64)
        if n == 0:
            return margins
        heap = self.heap
        kb = self.kernels
        ws = self._workspace()
        nnz = batch.indices.size
        buckets = ws.array("p_buckets", (self.depth, nnz), np.int64)
        signs = ws.array("p_signs", (self.depth, nnz))
        self._batch_hasher.rows_into(batch.indices, buckets, signs)
        flat = ws.array("p_flat", (self.depth, nnz), np.int64)
        np.add(buckets, self._row_offsets, out=flat)
        flat = self._translate_flat(flat)
        sv = ws.array("p_sv", (self.depth, nnz))
        np.multiply(signs, batch.values, out=sv)
        slots = heap.member_slots(batch.indices)
        values = batch.values
        indptr = batch.indptr.tolist()
        margin_k = kb.margin
        lo = indptr[0]
        for i in range(n):
            hi = indptr[i + 1]
            sl = slots[lo:hi]
            in_heap = sl >= 0
            total = 0.0
            if in_heap.any():
                products = (
                    heap.values_at(sl[in_heap]) * values[lo:hi][in_heap]
                )
                for p in products.tolist():
                    total += p
                in_sketch = ~in_heap
                fb = flat[:, lo:hi][:, in_sketch]
                svx = sv[:, lo:hi][:, in_sketch]
            else:
                fb = flat[:, lo:hi]
                svx = sv[:, lo:hi]
            if fb.shape[1]:
                total += margin_k(
                    self._table_flat, fb, svx, self._scale, self._sqrt_s
                )
            margins[i] = total
            lo = hi
        return margins

    def query_many(self, indices: np.ndarray) -> np.ndarray:
        """Serving-path weight queries: exact active-set values where
        stored, cached-hash ``fused_query`` recovery for the tail —
        bit-identical to :meth:`estimate_weights`."""
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        out = np.empty(indices.size, dtype=np.float64)
        if indices.size == 0:
            return out
        slots = self.heap.member_slots(indices)
        member = slots >= 0
        if member.any():
            out[member] = self.heap.values_at(slots[member])
        tail = ~member
        if tail.any():
            out[tail] = super().query_many(indices[tail])
        return out

    # ------------------------------------------------------------------
    # Scalar fast path (1-sparse inputs: the Section 8 applications)
    # ------------------------------------------------------------------
    def _estimate_one(self, index: int) -> float:
        """Scalar sketch estimate (median over rows) for one feature."""
        vals = []
        factor = self._sqrt_s * self._scale
        for j in range(self.depth):
            bucket, sign = self.family.bucket_sign_one(index, j)
            vals.append(factor * sign * float(self.table[j, bucket]))
        vals.sort()
        mid = len(vals) // 2
        if len(vals) % 2:
            return vals[mid]
        return 0.5 * (vals[mid - 1] + vals[mid])

    def _update_one(
        self,
        idx: int,
        val: float,
        y: int,
        promo_log: list | None = None,
    ) -> float:
        """Algorithm 2 specialized to nnz(x) = 1, all-scalar arithmetic.

        Returns the pre-update margin (for progressive validation).
        ``promo_log``, when given, receives an ``(admitted, evicted)``
        pair per promotion so the batched kernel can patch its
        membership cache instead of rebuilding it.
        """
        in_heap = idx in self.heap
        rows: list[tuple[int, float]] = []
        if in_heap:
            tau = self.heap.value(idx) * val
        else:
            # The margin uses the *linear* form z^T R x (sum over rows /
            # sqrt(s)), exactly like the batch path — the median is only
            # for recovery queries.  The float association mirrors
            # :meth:`~repro.core.sketch_table.ScaledSketchTable.
            # _margin_from_products` (table-value times sign*value
            # product, fsum, then scale/sqrt(s)) so the returned margin
            # is bit-identical to :meth:`predict_margin`.
            rows = [
                self.family.bucket_sign_one(idx, j) for j in range(self.depth)
            ]
            total = math.fsum(
                float(self.table[j, bucket]) * (sign * val)
                for j, (bucket, sign) in enumerate(rows)
            )
            tau = self._scale * total / self._sqrt_s

        g = self.loss.dloss(y * tau)
        eta = self.schedule(self.t)
        if self.lambda_ > 0.0:
            decay = self._decay_factor(eta)
            self.heap.decay(decay)
            self._decay_scale(decay)
        step = eta * y * g

        if in_heap:
            self.heap.add_delta(idx, -step * val)
        else:
            # Query *after* the decay (Algorithm 2 decays z first); the
            # stored rows make this a median over |depth| scalars.
            factor = self._sqrt_s * self._scale
            vals = sorted(
                factor * sign * float(self.table[j, bucket])
                for j, (bucket, sign) in enumerate(rows)
            )
            mid = len(vals) // 2
            if len(vals) % 2:
                query = vals[mid]
            else:
                query = 0.5 * (vals[mid - 1] + vals[mid])
            candidate = query - step * val
            if not self.heap.is_full:
                self.heap.push(idx, candidate)
                self.n_promotions += 1
                if promo_log is not None:
                    promo_log.append((idx, None))
            else:
                min_key, min_weight = self.heap.min_entry()
                if abs(candidate) > abs(min_weight):
                    self.heap.replace_min(idx, candidate)
                    self.n_promotions += 1
                    if promo_log is not None:
                        promo_log.append((idx, min_key))
                    self._sketch_add_one(
                        min_key, min_weight - self._estimate_one(min_key)
                    )
                else:
                    self._sketch_add_one(idx, -step * val)
        self.t += 1
        return tau

    def _sketch_add_one(self, index: int, delta: float) -> None:
        """Scalar version of :meth:`_sketch_add`."""
        coeff = delta / (self._sqrt_s * self._scale)
        for j in range(self.depth):
            bucket, sign = self.family.bucket_sign_one(index, j)
            self._mark_dirty_bucket(j, int(bucket))
            self.table[j, bucket] += coeff * sign

    # ------------------------------------------------------------------
    # Learning (Algorithm 2)
    # ------------------------------------------------------------------
    def update(self, x: SparseExample) -> None:
        if self.scalar_fast_path and x.indices.size == 1:
            self._update_one(int(x.indices[0]), float(x.values[0]), x.label)
            return
        self._update_example(x.indices, x.values, x.label)

    def _update_example(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        y: int,
        buckets: np.ndarray | None = None,
        signs: np.ndarray | None = None,
        slots: np.ndarray | None = None,
        promo_log: list | None = None,
    ) -> float:
        """One Algorithm 2 step; returns the pre-update margin.

        ``buckets`` / ``signs`` may carry pre-hashed rows for *all* of
        ``indices`` (shape ``(depth, nnz)``), as produced by the batched
        hashing front-end; tail columns are then selected instead of
        re-hashed.  Hash functions are pure, so the two paths see the
        same rows and produce bit-identical state.  ``slots`` may carry
        the active-set slot per index (-1 = tail), as maintained by the
        batched kernel's :class:`~repro.heap.topk.BatchSlotCache`;
        ``promo_log`` receives ``(admitted, evicted)`` pairs so that
        cache can be patched instead of rebuilt.

        The hot structures are vectorized against the store: one
        membership probe for the whole example, one :meth:`add_many`
        for the active-set gradient step, one table gather shared by the
        margin and the tail queries, and a tail-promotion screen that
        admits candidates sequentially only when some candidate beats
        the current admission threshold (the threshold is non-decreasing
        while the store is full, so screened-out candidates are exactly
        the ones the sequential loop would reject).
        """
        heap = self.heap
        kb = self.kernels
        if slots is None:
            slots = heap.member_slots(indices)
        in_heap = slots >= 0
        any_member = bool(in_heap.any())

        if any_member:
            heap_slots = slots[in_heap]
            heap_val = values[in_heap]
            in_sketch = ~in_heap
            tail_idx = indices[in_sketch]
            tail_val = values[in_sketch]
        else:
            heap_slots = heap_val = None
            in_sketch = slice(None)
            tail_idx = indices
            tail_val = values
        tail_n = tail_idx.size
        # The whole-example mega-kernel: one compiled call covering the
        # entire Algorithm 2 step when nothing needs the sequential
        # promotion loop (the kernel screens and bails out before any
        # scatter if a promotion is possible).  Requires the default
        # abs priority and a full store (the kernel's threshold scan),
        # a kernel-representable loss, and a non-empty tail.
        if (
            tail_n
            and self.use_fused
            and self.loss.kernel_id is not None
            and heap.is_full
            and heap._priority is abs
            and (kb.compiled or self._force_fused_example)
        ):
            return self._update_example_fused(
                tail_idx, tail_val, y, heap_slots, heap_val,
                in_sketch, buckets, signs, promo_log,
            )

        tau = 0.0
        if any_member:
            heap_products = heap.values_at(heap_slots) * heap_val
            for p in heap_products.tolist():
                tau += p
        # The shared-gather fused_query pays on compiled backends (one
        # jitted call replaces the gather + median pair); on the NumPy
        # reference it is the *same* composition plus a buffer copy, so
        # the reference chain stays — both branches are bit-identical
        # (fuzzed per backend in tests/test_fused_kernels.py, which
        # forces the branch on interpreted backends via
        # ``_force_fused_query``).
        fused = self.use_fused and (kb.compiled or self._force_fused_query)
        raw_med: np.ndarray | None = None
        if tail_n:
            # Hash the tail once (or select from the batch-hashed rows)
            # and gather its table cells once; the same gathered values
            # serve the margin now and the queries after the decay (the
            # decay touches only the scale, not the raw table).
            if buckets is None:
                tail_buckets, tail_signs = self.family.all_rows(tail_idx)
            else:
                tail_buckets = buckets[:, in_sketch]
                tail_signs = signs[:, in_sketch]
            if self.depth == 1:
                flat_tail = tail_buckets  # row offsets are all zero
            else:
                flat_tail = tail_buckets + self._row_offsets
            # One transposed (nnz, depth) gather serves both the margin
            # products here and the recovery queries below; the margin
            # kernel's sum is exactly rounded, so the transposed
            # summation order leaves the margin bit-identical to the
            # (depth, nnz) layout.  The fused path gets the gather and
            # the (factor-independent) raw medians from a single
            # fused_query call over workspace buffers; queries below
            # are then one scalar multiply by the post-decay factor —
            # the exact floats median_estimate(..., factor) yields.
            if fused:
                taken_t = np.empty((tail_n, self.depth))
                raw_med = np.empty(tail_n)
                kb.fused_query(
                    self._table_flat, flat_tail, tail_signs.T, 1.0,
                    taken_t, raw_med, kernels.EMPTY_SCRATCH,
                )
            else:
                taken_t = kb.gather_rows_t(self._table_flat, flat_tail)
            tau += kb.margin_gathered(
                taken_t, (tail_signs * tail_val).T,
                self._scale, self._sqrt_s,
            )

        g = self.loss.dloss(y * tau)
        eta = self.schedule(self.t)

        # Regularization: decay both the heap and the sketch (S and z
        # both scale by (1 - lambda eta) in Algorithm 2), lazily.
        if self.lambda_ > 0.0:
            decay = self._decay_factor(eta)
            heap.decay(decay)
            scale_before = self._scale
            self._decay_scale(decay)
            if tail_n and self._scale != scale_before * decay:
                # The decay underflowed the scale and folded it into the
                # raw table; the pre-decay gather (and raw medians) are
                # stale.
                if fused:
                    kb.fused_query(
                        self._table_flat, flat_tail, tail_signs.T, 1.0,
                        taken_t, raw_med, kernels.EMPTY_SCRATCH,
                    )
                else:
                    taken_t = kb.gather_rows_t(self._table_flat, flat_tail)

        step = eta * y * g

        # Heap update: exact OGD step for active-set features, one
        # vectorized scatter (element order matches a per-key loop).
        if any_member:
            heap.add_many(heap_slots, -step * heap_val)

        # Tail features: promote or fold the gradient into the sketch.
        if tail_n:
            # Queries = median-of-rows recovery on the post-decay table
            # (the decay touches only the scale, so the shared gather is
            # still the raw table unless the underflow fold above fired).
            if fused:
                # One scalar multiply by the post-decay factor turns the
                # recorded raw medians into the exact recovery queries
                # (the fused_query call pre-dates the decay, which only
                # moves the scale), followed by the same optional l1
                # soft-threshold _estimate_from_rows applies.
                if self.depth == 1:
                    factor = self._scale
                else:
                    factor = self._sqrt_s * self._scale
                queries = factor * raw_med
                if self.l1 > 0.0:
                    queries = np.sign(queries) * np.maximum(
                        np.abs(queries) - self.l1, 0.0
                    )
            else:
                queries = self._estimate_from_rows(
                    tail_buckets,
                    tail_signs,
                    flat_buckets=flat_tail,
                    gathered_t=taken_t,
                )
            candidates = queries - step * tail_val

            if not heap.is_full:
                # Warmup (free slots remain): plain sequential admits;
                # the store may fill mid-example.
                stay = []
                for pos, (idx, c) in enumerate(
                    zip(tail_idx.tolist(), candidates.tolist())
                ):
                    if not heap.is_full:
                        heap.push(idx, c)
                        self.n_promotions += 1
                        if promo_log is not None:
                            promo_log.append((idx, None))
                        continue
                    min_key, min_weight = heap.min_entry()
                    if abs(c) > abs(min_weight):
                        self._promote(idx, c, min_key, min_weight, promo_log)
                    else:
                        stay.append(pos)
                stay = np.asarray(stay, dtype=np.intp)
            else:
                # Full store: one screen kernel against the current
                # admission threshold; only candidates that beat it take
                # the sequential path (each re-checks the live minimum,
                # which can only have risen).
                live = kb.screen_abs_gt(candidates, heap.min_priority())
                if live.size == 0:
                    stay = None  # everything stays; no masks needed
                else:
                    stay_mask = np.ones(tail_n, dtype=bool)
                    for pos in live.tolist():
                        idx = int(tail_idx[pos])
                        c = float(candidates[pos])
                        min_key, min_weight = heap.min_entry()
                        if abs(c) > abs(min_weight):
                            self._promote(
                                idx, c, min_key, min_weight, promo_log
                            )
                            stay_mask[pos] = False
                    stay = np.flatnonzero(stay_mask)
            if stay is None or stay.size == tail_n:
                # Common case — nothing promoted: scatter the whole tail
                # without re-indexing (the flat gather is reused too).
                coeff = (-step / (self._sqrt_s * self._scale)) * tail_val
                self._scatter_add(
                    tail_buckets, coeff * tail_signs, flat_buckets=flat_tail
                )
            elif stay.size:
                # One scatter for all non-promoted features (Algorithm 2
                # applies these independently; batching only reorders
                # within a single example).
                coeff = (-step / (self._sqrt_s * self._scale)) * tail_val[stay]
                self._scatter_add(
                    tail_buckets[:, stay],
                    coeff * tail_signs[:, stay],
                    flat_buckets=flat_tail[:, stay],
                )
        self.t += 1
        return tau

    def _update_example_fused(
        self,
        tail_idx: np.ndarray,
        tail_val: np.ndarray,
        y: int,
        heap_slots: np.ndarray | None,
        heap_val: np.ndarray | None,
        in_sketch,
        buckets: np.ndarray | None,
        signs: np.ndarray | None,
        promo_log: list | None,
    ) -> float:
        """One Algorithm 2 step through the ``fused_awm_update`` kernel.

        The kernel performs the whole chain — margin (active set +
        tail), loss derivative, both lazy decays, active-set gradient
        step, tail recovery and the promotion screen — and finishes the
        stay-scatter itself in the common no-promotion case.  When a
        candidate beats the admission threshold it returns with
        ``handled`` false *before any table write*, leaving state
        exactly where the unfused chain stands entering its sequential
        promotion loop, which then runs here unchanged.  State and
        returned margins are bit-identical to the unfused chain
        (fuzzed per backend in ``tests/test_fused_awm.py``).
        """
        heap = self.heap
        kb = self.kernels
        if buckets is None:
            tail_buckets, tail_signs = self.family.all_rows(tail_idx)
        else:
            tail_buckets = buckets[:, in_sketch]
            tail_signs = signs[:, in_sketch]
        if self.depth == 1:
            flat_tail = tail_buckets  # row offsets are all zero
        else:
            flat_tail = tail_buckets + self._row_offsets
        eta = self.schedule(self.t)
        # Same raise point as the unfused chain: nothing has mutated
        # when an invalid eta * lambda is detected.
        decay = self._decay_factor(eta) if self.lambda_ > 0.0 else 1.0
        tail_n = tail_idx.size
        ws = self._workspace()
        gathered = ws.array("x_gathered", (tail_n, self.depth))
        candidates = ws.array("x_cand", tail_n)
        if heap_slots is None:
            heap_slots = _EMPTY_SLOTS
            heap_val = _EMPTY_VALUES
        # The kernel's only table writes are the tail stay-scatter (at
        # flat_tail) and a possible renorm fold; mark the scatter
        # targets up front (over-marking is safe; the no-stay-scatter
        # promotion bail-out over-marks at most one example's tail) and
        # detect the fold below.
        self._mark_dirty_flat(flat_tail)
        tau, new_scale, new_heap_scale, handled = kb.fused_awm_update(
            self._table_flat, flat_tail, tail_signs, tail_val,
            heap._raw, heap_slots, heap_val, heap._n, y,
            eta, decay, self.lambda_, self._scale, heap._scale,
            self._sqrt_s, self.loss.kernel_id, self.loss.kernel_param,
            self.l1, gathered, candidates,
        )
        tau = float(tau)
        self._scale = float(new_scale)
        # Exact fold detection: the kernel applies one decay per
        # example, and a renorm leaves the scale at exactly 1.0 — any
        # other post-decay value is a plain multiply.  (A scale that was
        # already exactly 1.0 over-marks harmlessly.)
        if self.lambda_ > 0.0 and self._scale == 1.0:
            self._note_renorm_folds(1)
            self._mark_dirty_all()
        heap._scale = float(new_heap_scale)
        if heap_slots.size:
            # add_many semantics: any touched slot can sink below the
            # cached minimum; decays alone preserve it.
            heap._min_slot = -1
        if handled != 0.0:
            self.t += 1
            return tau
        # A promotion is possible: the kernel stopped after computing
        # the candidates (state == the unfused chain entering its
        # promotion loop).  Recompute the (bit-identical) step and run
        # the sequential screen exactly as the unfused path does.
        g = self.loss.dloss(y * tau)
        step = eta * y * g
        live = kb.screen_abs_gt(candidates, heap.min_priority())
        stay_mask = np.ones(tail_n, dtype=bool)
        for pos in live.tolist():
            idx = int(tail_idx[pos])
            c = float(candidates[pos])
            min_key, min_weight = heap.min_entry()
            if abs(c) > abs(min_weight):
                self._promote(idx, c, min_key, min_weight, promo_log)
                stay_mask[pos] = False
        stay = np.flatnonzero(stay_mask)
        if stay.size == tail_n:
            coeff = (-step / (self._sqrt_s * self._scale)) * tail_val
            self._scatter_add(
                tail_buckets, coeff * tail_signs, flat_buckets=flat_tail
            )
        elif stay.size:
            coeff = (-step / (self._sqrt_s * self._scale)) * tail_val[stay]
            self._scatter_add(
                tail_buckets[:, stay],
                coeff * tail_signs[:, stay],
                flat_buckets=flat_tail[:, stay],
            )
        self.t += 1
        return tau

    def _promote(
        self,
        idx: int,
        candidate: float,
        min_key: int,
        min_weight: float,
        promo_log: list | None,
    ) -> None:
        """Promote ``idx`` over the current minimum: evict, fold the
        evictee's exact weight back into the sketch (credit the
        difference between its true weight and the sketch's current
        estimate), and log the membership event.

        The evictee is hashed *once*: its per-row (bucket, sign) pairs
        serve both the retiring estimate and the fold-in scatter (the
        old path hashed it twice, once per helper — at one promotion
        every couple of examples that was the single hottest line of the
        batched kernel).
        """
        self.heap.replace_min(idx, candidate)
        self.n_promotions += 1
        if promo_log is not None:
            promo_log.append((idx, min_key))
        rows = [
            self.family.bucket_sign_one(min_key, j)
            for j in range(self.depth)
        ]
        table = self.table
        factor = self._sqrt_s * self._scale
        vals = sorted(
            factor * sign * float(table[j, bucket])
            for j, (bucket, sign) in enumerate(rows)
        )
        mid = len(vals) // 2
        if len(vals) % 2:
            evict_query = vals[mid]
        else:
            evict_query = 0.5 * (vals[mid - 1] + vals[mid])
        coeff = (min_weight - evict_query) / factor
        for j, (bucket, sign) in enumerate(rows):
            self._mark_dirty_bucket(j, int(bucket))
            table[j, bucket] += coeff * sign

    def fit_batch(
        self,
        batch: SparseBatch,
        rows: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Mini-batch Algorithm 2: hash the batch once, replay in order.

        All of the batch's indices are hashed in one deduplicated
        vectorized call; each example then runs the ordinary sequential
        Algorithm 2 step over views of the precomputed rows (1-sparse
        examples keep using the scalar fast path, exactly as
        :meth:`update` would).  Returns the pre-update margins.

        ``rows`` may carry precomputed ``(buckets, signs)`` for
        ``batch.indices`` from the pipelined prefetch hasher; hashes are
        pure, so they are interchangeable with hashing here.
        """
        n = len(batch)
        margins = np.empty(n, dtype=np.float64)
        if n == 0:
            return margins
        # Hash lazily: all-1-sparse batches (the Section 8 application
        # workloads) go entirely through the scalar fast path, which
        # hashes per key itself — pre-hashing the batch would be pure
        # waste.  The first multi-sparse example triggers the one
        # vectorized dedup hash for the whole batch.
        buckets = signs = None
        if rows is not None:
            buckets, signs = rows
        indptr = batch.indptr.tolist()
        labels = batch.labels.tolist()
        indices = batch.indices
        values = batch.values
        heap = self.heap
        # Active-set membership for the whole batch, answered once and
        # patched per promotion (see BatchSlotCache); built lazily with
        # the hashes, for the same all-1-sparse reason.
        slot_cache: BatchSlotCache | None = None
        promo_log: list = []
        for i in range(n):
            lo, hi = indptr[i], indptr[i + 1]
            y = labels[i]
            if self.scalar_fast_path and hi - lo == 1:
                margins[i] = self._update_one(
                    int(indices[lo]), float(values[lo]), y,
                    promo_log=promo_log,
                )
            else:
                if buckets is None:
                    if self.use_fused:
                        # Hash into workspace arenas (cached, dedup) —
                        # the zero-allocation batched front-end.
                        ws = self._workspace()
                        nnz = indices.size
                        buckets = ws.array(
                            "b_buckets", (self.depth, nnz), np.int64
                        )
                        signs = ws.array("b_signs", (self.depth, nnz))
                        self._batch_hasher.rows_into(
                            indices, buckets, signs
                        )
                    else:
                        buckets, signs = self._batch_hasher.rows(indices)
                if slot_cache is None or slot_cache.stale:
                    slot_cache = BatchSlotCache(
                        heap, indices, reuse=slot_cache,
                        ws=self._workspace() if self.use_fused else None,
                    )
                margins[i] = self._update_example(
                    indices[lo:hi],
                    values[lo:hi],
                    y,
                    buckets=buckets[:, lo:hi],
                    signs=signs[:, lo:hi],
                    slots=slot_cache.slice(lo, hi),
                    promo_log=promo_log,
                )
            if promo_log:
                if slot_cache is not None:
                    for admitted, evicted in promo_log:
                        slot_cache.apply(admitted, evicted)
                promo_log.clear()
        return margins

    # ------------------------------------------------------------------
    # Merging (distributed / sharded training)
    # ------------------------------------------------------------------
    def _fold_active_set(self) -> list[int]:
        """Retire the active set into the sketch; returns the former keys.

        Each active feature's exact weight is folded back exactly as an
        Algorithm 2 eviction would: the sketch is credited with
        ``S[i] - Query(i)``, bringing its estimate of the feature up to
        date.  Keys are processed in sorted order so the (collision-
        dependent) float state is deterministic.
        """
        keys = sorted(k for k, _ in self.heap.items())
        for key in keys:
            weight = self.heap.value(key)
            query = float(
                self._sketch_estimate(np.array([key], dtype=np.int64))[0]
            )
            self._sketch_add(key, weight - query)
        self.heap.clear()
        return keys

    def merge(self, *others: "AWMSketch") -> "AWMSketch":
        """Sum-merge sharded AWM-Sketches; rebuild the active set.

        Every model's active set (including ``self``'s) is first folded
        back into its own sketch — after which each model is a pure
        (exactly summable) Count-Sketch table — then tables are summed
        with lazy-scale reconciliation and the active set is rebuilt by
        re-estimating the union of all former active-set keys against
        the merged table and promoting the heaviest ``capacity``.

        This consumes the donor models: ``others`` are left with folded
        (heap-less) state and should be discarded.  Unlike the exact
        per-worker active sets, the rebuilt set carries *estimated*
        weights — the same approximation an Algorithm 2 promotion makes
        — so merged top-K recovery is approximate while the summed
        sketch table itself is exact.
        """
        if not others:
            return self
        # Validate BEFORE folding: the base merge re-checks, but only
        # after this method has already mutated self and every donor by
        # retiring their active sets — an incompatible donor must be
        # rejected while all models are still intact.
        for other in others:
            self._check_mergeable(other)
        candidates = set(self._fold_active_set())
        for other in others:
            candidates.update(other._fold_active_set())
        super().merge(*others)
        self.n_promotions += sum(o.n_promotions for o in others)
        self.n_promotions += self._repromote(
            self.heap, candidates, self._sketch_estimate
        )
        return self

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def estimate_weights(self, indices: np.ndarray) -> np.ndarray:
        """Exact heap weights where available, sketch recovery otherwise."""
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        out = np.empty(indices.size, dtype=np.float64)
        tail_positions = []
        for pos, idx in enumerate(indices.tolist()):
            if idx in self.heap:
                out[pos] = self.heap.value(idx)
            else:
                tail_positions.append(pos)
        if tail_positions:
            tails = indices[tail_positions]
            out[tail_positions] = self._sketch_estimate(tails)
        return out

    def top_weights(self, k: int) -> list[tuple[int, float]]:
        """The active set *is* the top-K estimate (exact weights)."""
        return self.heap.top(k)

    # ------------------------------------------------------------------
    @property
    def memory_cost_bytes(self) -> int:
        return CELL_BYTES * (self.size + 2 * self.heap.capacity)
