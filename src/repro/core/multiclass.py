"""Multiclass extension of the WM/AWM sketches (Section 9).

"Given M output classes, maintain M copies of the WM-Sketch.  In order to
predict the output, we evaluate the output on each copy and return the
maximum."  Training uses the standard one-vs-rest reduction: the sketch
for the true class sees the example with label +1, every other sketch
sees it with label -1.

For large M the paper suggests noise-contrastive estimation; we provide
an optional ``negative_samples`` knob that updates only the true class
and a random subset of the others — the NCE-flavoured reduction — which
brings the per-example cost from O(M) to O(1 + negatives).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

import numpy as np

from repro.data.sparse import SparseExample
from repro.learning.base import CELL_BYTES


class MulticlassSketch:
    """One-vs-rest multiclass wrapper around any StreamingClassifier.

    Parameters
    ----------
    n_classes:
        Number of output classes M (>= 2).
    make_sketch:
        Factory called once per class (receives the class index, so
        callers can vary seeds) returning a fresh binary classifier.
    negative_samples:
        If > 0, each update trains the true class plus this many
        uniformly-sampled other classes instead of all M (the
        NCE-flavoured reduction suggested for large M).
    seed:
        Seed for negative sampling.
    """

    def __init__(
        self,
        n_classes: int,
        make_sketch: Callable[[int], object],
        negative_samples: int = 0,
        seed: int = 0,
    ):
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        if negative_samples < 0:
            raise ValueError("negative_samples must be >= 0")
        self.n_classes = n_classes
        self.sketches = [make_sketch(m) for m in range(n_classes)]
        self.negative_samples = negative_samples
        self._rng = np.random.Generator(np.random.PCG64(seed))
        self.t = 0

    # ------------------------------------------------------------------
    def margins(self, x: SparseExample) -> np.ndarray:
        """Per-class margins (scores)."""
        return np.array(
            [s.predict_margin(x) for s in self.sketches], dtype=np.float64
        )

    def predict(self, x: SparseExample) -> int:
        """The argmax-margin class."""
        return int(np.argmax(self.margins(x)))

    def update(self, x: SparseExample, label: int) -> None:
        """One one-vs-rest (or negatively-sampled) training step.

        ``label`` is the true class index in [0, M).
        """
        if not 0 <= label < self.n_classes:
            raise ValueError(f"label {label} out of range [0, {self.n_classes})")
        positive = replace(x, label=1)
        negative = replace(x, label=-1)
        self.sketches[label].update(positive)
        if self.negative_samples == 0:
            others = (m for m in range(self.n_classes) if m != label)
        else:
            n = min(self.negative_samples, self.n_classes - 1)
            choices = set()
            while len(choices) < n:
                m = int(self._rng.integers(0, self.n_classes))
                if m != label:
                    choices.add(m)
            others = iter(choices)
        for m in others:
            self.sketches[m].update(negative)
        self.t += 1

    def top_weights(self, class_index: int, k: int) -> list[tuple[int, float]]:
        """Top-k features for one class's sketch."""
        return self.sketches[class_index].top_weights(k)

    @property
    def memory_cost_bytes(self) -> int:
        """Sum of per-class footprints (plus nothing shared)."""
        return sum(s.memory_cost_bytes for s in self.sketches)
