"""Hash-function substrate for the sketching data structures.

The sketches in :mod:`repro.sketch` and :mod:`repro.core` all need families
of pairwise (or better) independent hash functions mapping feature
identifiers to buckets and to random signs.  Following Appendix B of the
paper, the default implementation is 3-wise independent *tabulation
hashing* (:class:`~repro.hashing.tabulation.TabulationHash`), which is both
fast (four byte-table lookups, fully vectorizable with NumPy) and
empirically indistinguishable from the O(log(d/delta))-wise independent
hashes the analysis assumes.

Also provided:

* :class:`~repro.hashing.universal.PolynomialHash` — k-wise independent
  polynomial hashing over the Mersenne prime 2^61 - 1 (Carter & Wegman),
  for callers that want provable k-independence.
* :func:`~repro.hashing.murmur.murmur3_32` — MurmurHash3 (x86, 32-bit) for
  hashing byte strings (e.g. token pairs in the PMI application), exactly
  as the reference implementation of the paper does.
* :class:`~repro.hashing.family.HashFamily` — the row-indexed
  (bucket, sign) interface consumed by every sketch.
"""

from repro.hashing.batch import BatchHasher
from repro.hashing.family import HashFamily, SignedBuckets
from repro.hashing.murmur import murmur3_32, murmur3_string, fmix32, fmix64
from repro.hashing.tabulation import TabulationHash
from repro.hashing.universal import PolynomialHash

__all__ = [
    "HashFamily",
    "SignedBuckets",
    "BatchHasher",
    "TabulationHash",
    "PolynomialHash",
    "murmur3_32",
    "murmur3_string",
    "fmix32",
    "fmix64",
]
