"""MurmurHash3 and integer finalizers.

The paper's reference implementation hashes strings to 32-bit identifiers
with MurmurHash3 before hashing those identifiers again into sketch
buckets (Section 8.3).  This module provides a pure-Python MurmurHash3
(x86 32-bit variant) for byte strings, plus the Murmur *finalizers*
(``fmix32`` / ``fmix64``) which are high-quality integer mixers used as
building blocks elsewhere in :mod:`repro.hashing`.

All integer arithmetic is done modulo 2**32 / 2**64 explicitly, so the
functions are exact ports of the C++ reference implementation.
"""

from __future__ import annotations

import numpy as np

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _rotl32(x: int, r: int) -> int:
    """Rotate the 32-bit integer ``x`` left by ``r`` bits."""
    x &= _MASK32
    return ((x << r) | (x >> (32 - r))) & _MASK32


def fmix32(h: int) -> int:
    """MurmurHash3 32-bit finalizer (avalanche mixer).

    Maps a 32-bit integer to a 32-bit integer such that every input bit
    affects every output bit with probability ~1/2.
    """
    h &= _MASK32
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def fmix64(h: int) -> int:
    """MurmurHash3 / SplitMix64 64-bit finalizer (avalanche mixer)."""
    h &= _MASK64
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) & _MASK64
    h ^= h >> 33
    h = (h * 0xC4CEB9FE1A85EC53) & _MASK64
    h ^= h >> 33
    return h


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """MurmurHash3 (x86, 32-bit) of a byte string.

    Exact port of the reference ``MurmurHash3_x86_32``.  Returns an
    unsigned 32-bit integer.

    Parameters
    ----------
    data:
        The bytes to hash.
    seed:
        32-bit seed value.
    """
    c1 = 0xCC9E2D51
    c2 = 0x1B873593
    h1 = seed & _MASK32
    length = len(data)
    n_blocks = length // 4

    for block in range(n_blocks):
        k1 = int.from_bytes(data[4 * block : 4 * block + 4], "little")
        k1 = (k1 * c1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * c2) & _MASK32
        h1 ^= k1
        h1 = _rotl32(h1, 13)
        h1 = (h1 * 5 + 0xE6546B64) & _MASK32

    # Tail (remaining 0-3 bytes).
    tail = data[4 * n_blocks :]
    k1 = 0
    if len(tail) >= 3:
        k1 ^= tail[2] << 16
    if len(tail) >= 2:
        k1 ^= tail[1] << 8
    if len(tail) >= 1:
        k1 ^= tail[0]
        k1 = (k1 * c1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * c2) & _MASK32
        h1 ^= k1

    h1 ^= length
    return fmix32(h1)


def murmur3_string(text: str, seed: int = 0) -> int:
    """MurmurHash3 (x86, 32-bit) of a text string encoded as UTF-8."""
    return murmur3_32(text.encode("utf-8"), seed=seed)


def fmix64_array(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized ``fmix64`` over an array of integer keys.

    Parameters
    ----------
    keys:
        Integer array (any integer dtype); interpreted as unsigned 64-bit.
    seed:
        Mixed into the keys before finalization so that different seeds
        yield independent-looking hash functions.

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of hashed values, same shape as ``keys``.
    """
    h = keys.astype(np.uint64, copy=True)
    h ^= np.uint64(fmix64(seed ^ 0x9E3779B97F4A7C15))
    h ^= h >> np.uint64(33)
    h *= np.uint64(0xFF51AFD7ED558CCD)
    h ^= h >> np.uint64(33)
    h *= np.uint64(0xC4CEB9FE1A85EC53)
    h ^= h >> np.uint64(33)
    return h
