"""Vectorized tabulation hashing.

Tabulation hashing (Zobrist hashing) splits a w-bit key into bytes and
XORs together per-byte lookup tables of random 64-bit values.  It is
exactly 3-wise independent, and Appendix B of the paper notes that this
suffices in practice for the WM-Sketch despite the analysis nominally
requiring O(log(d/delta))-wise independence.

The vectorized evaluation dispatches through the active kernel backend
(:mod:`repro.kernels`): the NumPy reference gathers all per-byte table
entries with ``n_bytes`` fancy-indexing operations and no per-key
Python work, and the optional compiled (Numba) backend runs the same
lookup loop GIL-free — bit-identical either way.
"""

from __future__ import annotations

import numpy as np

from repro import kernels


class TabulationHash:
    """A single tabulation hash function over integer keys.

    Parameters
    ----------
    seed:
        Seed (or :class:`numpy.random.SeedSequence`) for drawing the random
        byte tables.  Two instances with the same seed compute identical
        hash functions.
    key_bits:
        Number of key bits to consume (32 or 64).  Feature identifiers in
        this package are at most 2**63 - 1, so 64 covers everything; 32
        halves the table memory when ids are known to be small.
    backend:
        Kernel-backend override for the vectorized path (``None`` =
        follow the process default; see :mod:`repro.kernels`).  Every
        backend computes identical hashes — this only selects *how*.
    """

    def __init__(
        self,
        seed: int | np.random.SeedSequence = 0,
        key_bits: int = 64,
        backend: str | None = None,
    ):
        if key_bits not in (32, 64):
            raise ValueError(f"key_bits must be 32 or 64, got {key_bits}")
        self.key_bits = key_bits
        self.backend = backend
        self.n_bytes = key_bits // 8
        if isinstance(seed, np.random.SeedSequence):
            seq = seed
        else:
            seq = np.random.SeedSequence(seed)
        self.seed_sequence = seq
        rng = np.random.Generator(np.random.PCG64(seq))
        # One 256-entry table of random 64-bit words per key byte.
        self._tables = rng.integers(
            0, 2**64, size=(self.n_bytes, 256), dtype=np.uint64
        )
        # Flattened layout for the single-gather fast path: byte b of a
        # key indexes ``_flat[256 * b + byte]``.
        self._flat = self._tables.ravel()
        self._offsets = (np.arange(self.n_bytes, dtype=np.intp) * 256).reshape(
            1, -1
        )
        # Pure-Python table copy for the scalar fast path (plain list
        # indexing beats NumPy scalar indexing by ~5x for single keys).
        self._tables_py = [row.tolist() for row in self._tables]
        # Dispatch-free backend binding: resolved once, revalidated by
        # epoch compare (rebuilt on unpickle via __init__).
        self._kb = kernels.BackendHandle(backend)

    # ------------------------------------------------------------------
    # Pickling: the function is fully determined by (seed, key_bits), so
    # snapshots carry the seed and rebuild the byte tables on load — a
    # few hundred bytes on the wire instead of the 8 KB+ of tables, and
    # trivially spawn-safe for worker processes.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {
            "seed": self.seed_sequence,
            "key_bits": self.key_bits,
            "backend": self.backend,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            seed=state["seed"],
            key_bits=state["key_bits"],
            backend=state.get("backend"),
        )

    def hash_one(self, key: int) -> int:
        """Scalar fast path: hash a single non-negative integer key.

        Equivalent to ``int(self.hash(np.uint64(key))[()])`` but avoids
        all NumPy per-call overhead; used by the 1-sparse update paths.
        """
        out = 0
        k = int(key)
        for table in self._tables_py:
            out ^= table[k & 0xFF]
            k >>= 8
        return out

    def hash(self, keys: np.ndarray | int) -> np.ndarray:
        """Hash keys to uniform 64-bit values.

        Parameters
        ----------
        keys:
            Integer scalar or array of non-negative keys.

        Returns
        -------
        numpy.ndarray
            ``uint64`` array of the same shape as ``keys``.
        """
        k = np.asarray(keys, dtype=np.uint64)
        shape = k.shape
        flat = np.ascontiguousarray(k).reshape(-1)
        out = self._kb.get().tabulation_hash(self._flat, self._offsets, flat)
        return out.reshape(shape)

    def bucket(self, keys: np.ndarray | int, n_buckets: int) -> np.ndarray:
        """Hash keys into ``[0, n_buckets)``.

        Uses a bitmask when ``n_buckets`` is a power of two (all sketch
        widths in the paper's experiments are), and a modulo otherwise.
        """
        h = self.hash(keys)
        if n_buckets & (n_buckets - 1) == 0:
            return (h & np.uint64(n_buckets - 1)).astype(np.int64)
        return (h % np.uint64(n_buckets)).astype(np.int64)

    def sign(self, keys: np.ndarray | int) -> np.ndarray:
        """Hash keys to random signs in {-1.0, +1.0}.

        Uses the top bit of the 64-bit hash, which is independent of the
        low bits used by :meth:`bucket` only in the 3-wise tabulation
        sense; sketches that need jointly independent (bucket, sign) pairs
        should use two differently-seeded instances (see
        :class:`repro.hashing.family.HashFamily`).
        """
        h = self.hash(keys)
        bit = (h >> np.uint64(63)).astype(np.int64)
        return (2 * bit - 1).astype(np.float64)
