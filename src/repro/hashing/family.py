"""Row-indexed hash families: the interface the sketches consume.

A Count-Sketch of depth ``s`` needs, for each row ``j``, a bucket hash
``h_j : [d] -> [width]`` and a sign hash ``sigma_j : [d] -> {-1, +1}``,
drawn independently across rows.  :class:`HashFamily` bundles ``s``
independently-seeded hash functions behind a two-method interface and is
shared by the Count-Sketch, Count-Min Sketch (signs unused), WM-Sketch,
AWM-Sketch and feature hashing.

For speed, each row evaluates a *single* underlying hash per key and
derives the bucket from the low bits and the sign from a high bit — the
classic implementation trick (one tabulation evaluation yields 64
uniform bits; disjoint bit ranges are independent for any fixed key and
inherit the family's 3-wise independence across keys).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro import kernels
from repro.hashing.tabulation import TabulationHash
from repro.hashing.universal import PolynomialHash

#: Bit used for the sign when deriving it from the main hash value.
#: Tabulation hashes fill all 64 bits; polynomial hashes over the
#: Mersenne prime 2**61 - 1 only fill 61, so we use bit 45 which is
#: uniform for both.
_SIGN_BIT = 45


@dataclass
class SignedBuckets:
    """The (bucket, sign) pair for a batch of keys in one sketch row."""

    buckets: np.ndarray  # int64, values in [0, width)
    signs: np.ndarray  # float64, values in {-1.0, +1.0}


class HashFamily:
    """``depth`` independent (bucket, sign) hash pairs.

    Parameters
    ----------
    width:
        Number of buckets per row.
    depth:
        Number of rows (independent hashes).
    seed:
        Root seed; per-row hashes are derived via
        :class:`numpy.random.SeedSequence` spawning, so distinct rows are
        statistically independent and the whole family is reproducible.
    kind:
        ``"tabulation"`` (default; 3-wise independent, fast) or
        ``"polynomial"`` (k-wise independent, slower).
    independence:
        For ``kind="polynomial"``, the k in k-wise independence.
    backend:
        Kernel-backend override threaded into the row hashes and the
        (bucket, sign) derivation (``None`` = follow the process
        default; see :mod:`repro.kernels`).  Purely a *how*: every
        backend computes identical buckets and signs.
    """

    def __init__(
        self,
        width: int,
        depth: int,
        seed: int = 0,
        kind: Literal["tabulation", "polynomial"] = "tabulation",
        independence: int = 4,
        backend: str | None = None,
    ):
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.width = width
        self.depth = depth
        self.seed = seed
        self.kind = kind
        self.independence = independence
        self.backend = backend
        root = np.random.SeedSequence(seed)
        children = root.spawn(depth)
        if kind == "tabulation":
            self._hashes = [
                TabulationHash(children[j], backend=backend)
                for j in range(depth)
            ]
        elif kind == "polynomial":
            self._hashes = [
                PolynomialHash(
                    independence=independence,
                    seed=children[j],
                    backend=backend,
                )
                for j in range(depth)
            ]
        else:
            raise ValueError(f"unknown hash kind: {kind!r}")
        self._pow2 = width & (width - 1) == 0
        # Dispatch-free backend binding for the (bucket, sign)
        # derivation; rebuilt on unpickle (__setstate__ re-runs
        # __init__), never serialized.
        self._kb = kernels.BackendHandle(backend)

    # ------------------------------------------------------------------
    # Pickling: the whole family is derived deterministically from its
    # constructor parameters (per-row hashes come from SeedSequence
    # spawning of the root seed), so worker processes rebuild identical
    # hash functions from a ~100-byte payload.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "kind": self.kind,
            "independence": self.independence,
            "backend": self.backend,
        }

    def __setstate__(self, state: dict) -> None:
        state.setdefault("backend", None)  # pre-kernel pickles
        self.__init__(**state)

    # ------------------------------------------------------------------
    # Single-evaluation core
    # ------------------------------------------------------------------
    def _raw(self, keys: np.ndarray | int, row: int) -> np.ndarray:
        h = self._hashes[row].hash(keys)
        return np.asarray(h, dtype=np.uint64)

    def _derive(self, h: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        backend = self._kb.get()
        flat = np.atleast_1d(h).reshape(-1)
        buckets, signs = backend.bucket_sign(
            flat, self.width, self._pow2, _SIGN_BIT
        )
        return buckets.reshape(h.shape), signs.reshape(h.shape)

    # ------------------------------------------------------------------
    # Scalar fast path
    # ------------------------------------------------------------------
    def bucket_sign_one(self, key: int, row: int) -> tuple[int, float]:
        """(bucket, sign) for a single key with no NumPy overhead.

        Both hash kinds provide a ``hash_one`` scalar evaluation that is
        bit-identical to their vectorized path (the scalar hot path of
        the 1-sparse applications depends on that agreement).
        """
        h = self._hashes[row]
        if hasattr(h, "hash_one"):
            raw = h.hash_one(key)
        else:
            raw = int(np.asarray(h.hash(key)))
        if self._pow2:
            bucket = raw & (self.width - 1)
        else:
            bucket = raw % self.width
        sign = 1.0 if (raw >> _SIGN_BIT) & 1 else -1.0
        return bucket, sign

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def buckets(self, keys: np.ndarray | int, row: int) -> np.ndarray:
        """Bucket indices in ``[0, width)`` for ``keys`` in ``row``."""
        return self._derive(self._raw(keys, row))[0]

    def signs(self, keys: np.ndarray | int, row: int) -> np.ndarray:
        """Random signs in {-1.0, +1.0} for ``keys`` in ``row``."""
        return self._derive(self._raw(keys, row))[1]

    def signed_buckets(self, keys: np.ndarray | int, row: int) -> SignedBuckets:
        """Both derived hashes for one row from a single evaluation."""
        buckets, signs = self._derive(self._raw(keys, row))
        return SignedBuckets(buckets, signs)

    def all_rows(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Buckets and signs for every row at once.

        Returns
        -------
        (buckets, signs):
            Two arrays of shape ``(depth, len(keys))``.
        """
        keys = np.atleast_1d(np.asarray(keys))
        buckets = np.empty((self.depth, keys.size), dtype=np.int64)
        signs = np.empty((self.depth, keys.size), dtype=np.float64)
        for j in range(self.depth):
            buckets[j], signs[j] = self._derive(self._raw(keys, j))
        return buckets, signs
