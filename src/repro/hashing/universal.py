"""k-wise independent polynomial hashing over a Mersenne prime.

Carter & Wegman (1977) universal hashing: a degree-(k-1) polynomial with
random coefficients over GF(p), p = 2**61 - 1, is exactly k-wise
independent.  The theoretical analysis of the WM-Sketch assumes
O(log(d/delta))-wise independence; this class provides it for users who
want the guarantees verbatim (the default tabulation hash trades that for
speed, per Appendix B).

Arithmetic uses Python integers via ``object``-dtype only when necessary;
the common path keeps everything in unsigned 128-bit emulation with
NumPy ``uint64`` pairs.  For simplicity and correctness we evaluate the
polynomial with Python-int arithmetic vectorized through ``np.vectorize``
-free loops over *coefficients* (degree is small), with values held as
Python ints only at the final reduction.
"""

from __future__ import annotations

import numpy as np

from repro import kernels

MERSENNE_61 = (1 << 61) - 1


def _mod_mersenne61(x: np.ndarray) -> np.ndarray:
    """Reduce object-dtype integers modulo 2**61 - 1 (fast Mersenne trick)."""
    x = (x & MERSENNE_61) + (x >> 61)
    return np.where(x >= MERSENNE_61, x - MERSENNE_61, x)


def _mod_mersenne61_int(x: int) -> int:
    """Scalar (exact Python-int) twin of :func:`_mod_mersenne61`.

    Must perform the *same* reduction steps so scalar and vectorized
    evaluations of one polynomial agree bit-for-bit.
    """
    x = (x & MERSENNE_61) + (x >> 61)
    return x - MERSENNE_61 if x >= MERSENNE_61 else x


class PolynomialHash:
    """A k-wise independent hash function family member.

    Parameters
    ----------
    independence:
        The k in k-wise independence; the polynomial has this many random
        coefficients.  Must be >= 2.
    seed:
        Seed for drawing the coefficients.
    backend:
        Kernel-backend override for the vectorized path (``None`` =
        follow the process default).  The reference (numpy) backend
        evaluates with exact Python-int arithmetic; compiled backends
        reproduce the identical reduction with 128-bit limb emulation.
    """

    def __init__(
        self,
        independence: int = 4,
        seed: int | np.random.SeedSequence = 0,
        backend: str | None = None,
    ):
        if independence < 2:
            raise ValueError(f"independence must be >= 2, got {independence}")
        self.independence = independence
        if isinstance(seed, np.random.SeedSequence):
            seq = seed
        else:
            seq = np.random.SeedSequence(seed)
        self.seed_sequence = seq
        rng = np.random.Generator(np.random.PCG64(seq))
        coeffs = rng.integers(0, MERSENNE_61, size=independence, dtype=np.int64)
        # The leading coefficient must be nonzero for full independence.
        while coeffs[-1] == 0:
            coeffs[-1] = rng.integers(1, MERSENNE_61, dtype=np.int64)
        self._coeffs = [int(c) for c in coeffs]
        # uint64 copy for compiled kernels (coefficients are < 2**61).
        self._coeffs_u64 = np.array(self._coeffs, dtype=np.uint64)
        self.backend = backend
        # Dispatch-free backend binding (rebuilt on unpickle via __init__).
        self._kb = kernels.BackendHandle(backend)

    # ------------------------------------------------------------------
    # Pickling: fully determined by (independence, seed); the coefficient
    # draw (including the nonzero-leading-coefficient retry loop) is
    # deterministic given the seed sequence, so rebuilt instances compute
    # the identical polynomial.  Spawn-safe for worker processes.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {
            "independence": self.independence,
            "seed": self.seed_sequence,
            "backend": self.backend,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            independence=state["independence"],
            seed=state["seed"],
            backend=state.get("backend"),
        )

    def hash(self, keys: np.ndarray | int) -> np.ndarray:
        """Hash keys to uniform values in ``[0, 2**61 - 1)``.

        Evaluates the random polynomial at each key by Horner's rule with
        exact arithmetic (object dtype), then reduces mod 2**61 - 1.
        """
        k = np.asarray(keys)
        if k.ndim == 0:
            # 0-d inputs must not take the array path: NumPy collapses
            # 0-d object results to int64 scalars mid-Horner, which
            # silently overflows and yields a *different* hash than the
            # vectorized evaluation of the same key.
            return np.asarray(self.hash_one(int(k)), dtype=object)
        backend = self._kb.get()
        shape = k.shape
        flat = np.ascontiguousarray(k, dtype=np.uint64).reshape(-1)
        # Hash values are equal across backends; the dtype differs
        # (object on the exact-int reference path, uint64 compiled).
        return backend.polynomial_hash(self._coeffs_u64, flat).reshape(shape)

    def hash_one(self, key: int) -> int:
        """Scalar fast path; bit-identical to the vectorized :meth:`hash`."""
        x = _mod_mersenne61_int(int(key))
        acc = self._coeffs[-1]
        for c in reversed(self._coeffs[:-1]):
            acc = _mod_mersenne61_int(acc * x + c)
        return acc

    def bucket(self, keys: np.ndarray | int, n_buckets: int) -> np.ndarray:
        """Hash keys into ``[0, n_buckets)``."""
        return (self.hash(keys) % n_buckets).astype(np.int64)

    def sign(self, keys: np.ndarray | int) -> np.ndarray:
        """Hash keys to signs in {-1.0, +1.0} using the hash parity."""
        bit = (self.hash(keys) & 1).astype(np.int64)
        return (2 * bit - 1).astype(np.float64)
