"""Batched hashing: per-batch dedup plus a cross-batch key cache.

Hashing dominates the cost of sketch updates on the Python substrate —
every row of every sketch evaluates a vectorized tabulation (or
polynomial) hash per example.  Two structural facts make batching pay:

* within a mini-batch the same feature typically occurs in many
  examples (Zipfian streams), so hashing the batch's *unique* keys once
  and expanding through ``np.unique``'s inverse map does strictly less
  work than hashing per example;
* across consecutive batches the hot keys repeat, so a small cache of
  recently hashed keys converts most lookups into one
  ``np.searchsorted`` gather.

Hash functions are pure, so neither optimization can change a single
bucket or sign — :class:`BatchHasher` is exactly ``family.all_rows``
evaluated faster (property-tested in ``tests/test_batch_hashing.py``).
"""

from __future__ import annotations

import numpy as np

from repro.hashing.family import HashFamily


class BatchHasher:
    """Deduplicating, caching front-end to :meth:`HashFamily.all_rows`.

    Parameters
    ----------
    family:
        The hash family to evaluate.
    cache_capacity:
        Maximum number of distinct keys retained across batches.  When
        an insert would overflow, the cache is generationally reset to
        the current batch's keys (hot keys immediately repopulate it).
        0 disables cross-batch caching (dedup still applies).
    """

    def __init__(self, family: HashFamily, cache_capacity: int = 1 << 16):
        if cache_capacity < 0:
            raise ValueError(
                f"cache_capacity must be >= 0, got {cache_capacity}"
            )
        self.family = family
        self.cache_capacity = cache_capacity
        depth = family.depth
        self._keys = np.empty(0, dtype=np.int64)  # sorted
        self._buckets = np.empty((depth, 0), dtype=np.int64)
        self._signs = np.empty((depth, 0), dtype=np.float64)
        #: Diagnostics: unique keys served from / missing in the cache.
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Pickling: the cache is a pure memoization of the (picklable) hash
    # family, so snapshots carry only the configuration and restart with
    # a cold cache — results are unchanged (hashes are pure), and the
    # payload stays small for spawn-based worker processes.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {
            "family": self.family,
            "cache_capacity": self.cache_capacity,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["family"], cache_capacity=state["cache_capacity"]
        )

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop all cached keys."""
        depth = self.family.depth
        self._keys = np.empty(0, dtype=np.int64)
        self._buckets = np.empty((depth, 0), dtype=np.int64)
        self._signs = np.empty((depth, 0), dtype=np.float64)

    def __len__(self) -> int:
        return int(self._keys.size)

    # ------------------------------------------------------------------
    def _lookup(self, uniq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(positions in cache, hit mask) for sorted unique keys."""
        if self._keys.size == 0:
            return np.zeros(uniq.size, dtype=np.intp), np.zeros(
                uniq.size, dtype=bool
            )
        pos = np.searchsorted(self._keys, uniq)
        clipped = np.minimum(pos, self._keys.size - 1)
        hit = self._keys[clipped] == uniq
        return clipped, hit

    def _insert(
        self, keys: np.ndarray, buckets: np.ndarray, signs: np.ndarray
    ) -> None:
        """Merge sorted new keys (disjoint from the cache) into the cache."""
        if self.cache_capacity == 0 or keys.size == 0:
            return
        if self._keys.size + keys.size > self.cache_capacity:
            # Generational reset: keep only the newcomers (bounded memory;
            # hot keys re-enter on their next occurrence).
            if keys.size > self.cache_capacity:
                keep = self.cache_capacity
                keys, buckets, signs = (
                    keys[:keep],
                    buckets[:, :keep],
                    signs[:, :keep],
                )
            self._keys = keys.copy()
            self._buckets = buckets.copy()
            self._signs = signs.copy()
            return
        at = np.searchsorted(self._keys, keys)
        self._keys = np.insert(self._keys, at, keys)
        self._buckets = np.insert(self._buckets, at, buckets, axis=1)
        self._signs = np.insert(self._signs, at, signs, axis=1)

    # ------------------------------------------------------------------
    def rows(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Buckets and signs for every row, identical to ``all_rows``.

        Returns
        -------
        (buckets, signs):
            Arrays of shape ``(depth, len(keys))`` — bit-for-bit equal to
            ``family.all_rows(keys)``, computed with one hash evaluation
            per *new unique* key instead of one per position.
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        depth = self.family.depth
        if keys.size == 0:
            return (
                np.empty((depth, 0), dtype=np.int64),
                np.empty((depth, 0), dtype=np.float64),
            )
        uniq, inv = np.unique(keys, return_inverse=True)
        pos, hit = self._lookup(uniq)
        ubuckets = np.empty((depth, uniq.size), dtype=np.int64)
        usigns = np.empty((depth, uniq.size), dtype=np.float64)
        n_hit = int(np.count_nonzero(hit))
        if n_hit:
            ubuckets[:, hit] = self._buckets[:, pos[hit]]
            usigns[:, hit] = self._signs[:, pos[hit]]
        if n_hit < uniq.size:
            miss = ~hit
            mb, ms = self.family.all_rows(uniq[miss])
            ubuckets[:, miss] = mb
            usigns[:, miss] = ms
            self._insert(uniq[miss], mb, ms)
        self.hits += n_hit
        self.misses += uniq.size - n_hit
        return ubuckets[:, inv], usigns[:, inv]
