"""Batched hashing: per-batch dedup plus a bounded cross-batch key cache.

Hashing dominates the cost of sketch updates on the Python substrate —
every row of every sketch evaluates a vectorized tabulation (or
polynomial) hash per example.  Two structural facts make batching pay:

* within a mini-batch the same feature typically occurs in many
  examples (Zipfian streams), so hashing the batch's *unique* keys once
  and expanding through ``np.unique``'s inverse map does strictly less
  work than hashing per example;
* across consecutive batches the hot keys repeat, so a small cache of
  recently hashed keys converts most lookups into one
  ``np.searchsorted`` gather.

The cache is bounded at ``cache_capacity`` entries with *bulk LRU-ish*
eviction: every entry carries a last-used batch stamp, and when an
insert would overflow, the least-recently-used half of the incumbents
is dropped in one vectorized pass (amortized O(1) per inserted key —
per-entry LRU bookkeeping would cost more than the hashes it saves).
High-cardinality streams therefore cycle the cold tail through the
cache while the Zipf head stays resident; :attr:`hit_rate` reports how
well that is working.

Hash functions are pure, so neither optimization can change a single
bucket or sign — :class:`BatchHasher` is exactly ``family.all_rows``
evaluated faster (property-tested in ``tests/test_batch_hashing.py``).
For zero-allocation callers, :meth:`rows_into` writes the expanded
(bucket, sign) rows into caller-provided (workspace) arrays instead of
returning fresh ones.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.family import HashFamily
from repro.telemetry.registry import MetricsRegistry


class BatchHasher:
    """Deduplicating, caching front-end to :meth:`HashFamily.all_rows`.

    Parameters
    ----------
    family:
        The hash family to evaluate.
    cache_capacity:
        Maximum number of distinct keys retained across batches.  When
        an insert would overflow, the least-recently-used half of the
        incumbents is evicted in bulk (see the module docstring).
        0 disables cross-batch caching (dedup still applies).
    registry:
        A :class:`~repro.telemetry.MetricsRegistry` to publish the
        hit/miss/eviction counters into (a private registry is created
        when omitted, so the counters always exist).  The legacy
        :attr:`hits` / :attr:`misses` / :attr:`evictions` ints are
        preserved as read-only views over those counters.
    metrics_prefix:
        Instrument name prefix inside ``registry`` (lets the serving
        layer distinguish the shared reader hasher from trainer-side
        ones).
    """

    def __init__(
        self,
        family: HashFamily,
        cache_capacity: int = 1 << 16,
        *,
        registry: MetricsRegistry | None = None,
        metrics_prefix: str = "hasher",
    ):
        if cache_capacity < 0:
            raise ValueError(
                f"cache_capacity must be >= 0, got {cache_capacity}"
            )
        self.family = family
        self.cache_capacity = cache_capacity
        self.registry = registry if registry is not None else MetricsRegistry()
        self.metrics_prefix = metrics_prefix
        depth = family.depth
        self._keys = np.empty(0, dtype=np.int64)  # sorted
        self._buckets = np.empty((depth, 0), dtype=np.int64)
        self._signs = np.empty((depth, 0), dtype=np.float64)
        #: Last-used batch stamp per cached key (parallel to ``_keys``).
        self._last_used = np.empty(0, dtype=np.int64)
        self._tick = 0
        #: Diagnostics: lookups served from / missing in the cache
        #: (unique keys on the dedup path, key positions on the all-hit
        #: fast path), and entries dropped by bulk LRU eviction —
        #: registry counters, mutated once per *batch* (the legacy int
        #: attributes live on as the properties below).
        self._m_hits = self.registry.counter(f"{metrics_prefix}.hits")
        self._m_misses = self.registry.counter(f"{metrics_prefix}.misses")
        self._m_evictions = self.registry.counter(
            f"{metrics_prefix}.evictions"
        )
        #: Key-universe bound under which the all-hit fast path keeps a
        #: dense key -> cache-position map (int32, so the default costs
        #: at most 4 MB).  Streams with larger ids simply keep the
        #: dedup path — results are identical either way.
        self.direct_bound = 1 << 20
        # The dense map itself: ``_direct[key]`` is the cache position
        # of ``key`` or -1.  Rebuilt lazily after any cache mutation
        # (grow-only arena; never pickled — the whole cache state is
        # derived).
        self._direct = np.empty(0, dtype=np.int32)
        self._direct_span = 0  # valid prefix of the map
        self._direct_dirty = True
        # Grow-only scratch for fast-path lookups (positions + hit
        # mask); never escapes this object.
        self._pos32_scratch = np.empty(0, dtype=np.int32)
        self._pos_scratch = np.empty(0, dtype=np.intp)
        self._hit_scratch = np.empty(0, dtype=bool)

    # ------------------------------------------------------------------
    # Pickling: the cache is a pure memoization of the (picklable) hash
    # family, so snapshots carry only the configuration and restart with
    # a cold cache — results are unchanged (hashes are pure), and the
    # payload stays small for spawn-based worker processes.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {
            "family": self.family,
            "cache_capacity": self.cache_capacity,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["family"], cache_capacity=state["cache_capacity"]
        )

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop all cached keys."""
        depth = self.family.depth
        self._keys = np.empty(0, dtype=np.int64)
        self._buckets = np.empty((depth, 0), dtype=np.int64)
        self._signs = np.empty((depth, 0), dtype=np.float64)
        self._last_used = np.empty(0, dtype=np.int64)
        self._direct_span = 0
        self._direct_dirty = True

    def __len__(self) -> int:
        return int(self._keys.size)

    # -- legacy counter views (deprecated: read the registry instead) --
    @property
    def hits(self) -> int:
        """Deprecated view of the ``<prefix>.hits`` registry counter."""
        return self._m_hits.value

    @property
    def misses(self) -> int:
        """Deprecated view of the ``<prefix>.misses`` registry counter."""
        return self._m_misses.value

    @property
    def evictions(self) -> int:
        """Deprecated view of the ``<prefix>.evictions`` counter."""
        return self._m_evictions.value

    @property
    def hit_rate(self) -> float:
        """Fraction of key lookups served from the cache (0.0 before
        any lookup).

        Accounting follows the path that served the batch: the dedup
        path counts *unique* keys (one lookup per distinct key), the
        all-hit fast path counts every key position (it never
        deduplicates).  Steady-state streams are dominated by the fast
        path, so the rate reads as per-position there — still the
        right signal for sizing ``cache_capacity`` / ``direct_bound``
        (a low value means hashing is being recomputed), just not a
        unique-key census.
        """
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    # ------------------------------------------------------------------
    def _lookup(self, uniq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(positions in cache, hit mask) for sorted unique keys."""
        if self._keys.size == 0:
            return np.zeros(uniq.size, dtype=np.intp), np.zeros(
                uniq.size, dtype=bool
            )
        pos = np.searchsorted(self._keys, uniq)
        clipped = np.minimum(pos, self._keys.size - 1)
        hit = self._keys[clipped] == uniq
        return clipped, hit

    def _insert(
        self, keys: np.ndarray, buckets: np.ndarray, signs: np.ndarray
    ) -> None:
        """Merge sorted new keys (disjoint from the cache) into the cache,
        bulk-evicting the least-recently-used incumbents on overflow."""
        if self.cache_capacity == 0 or keys.size == 0:
            return
        if keys.size > self.cache_capacity:
            keep = self.cache_capacity
            keys, buckets, signs = (
                keys[:keep],
                buckets[:, :keep],
                signs[:, :keep],
            )
        overflow = self._keys.size + keys.size - self.cache_capacity
        if overflow > 0:
            # Drop at least half the incumbents, oldest stamps first
            # (amortized O(1) eviction work per inserted key; the hot
            # head re-enters untouched because its stamps are current).
            evict = min(max(overflow, self._keys.size // 2), self._keys.size)
            order = np.argsort(self._last_used, kind="stable")
            keep_mask = np.ones(self._keys.size, dtype=bool)
            keep_mask[order[:evict]] = False
            self._keys = self._keys[keep_mask]
            self._buckets = self._buckets[:, keep_mask]
            self._signs = self._signs[:, keep_mask]
            self._last_used = self._last_used[keep_mask]
            self._m_evictions.inc(int(evict))
        at = np.searchsorted(self._keys, keys)
        self._keys = np.insert(self._keys, at, keys)
        self._buckets = np.insert(self._buckets, at, buckets, axis=1)
        self._signs = np.insert(self._signs, at, signs, axis=1)
        self._last_used = np.insert(self._last_used, at, self._tick)
        self._direct_dirty = True

    # ------------------------------------------------------------------
    def _rebuild_direct(self) -> bool:
        """(Re)build the dense key -> position map; False if the key
        universe exceeds :attr:`direct_bound`."""
        n = self._keys.size
        if n == 0:
            return False
        span = int(self._keys[-1]) + 1  # keys are sorted, non-negative
        if span > self.direct_bound or int(self._keys[0]) < 0:
            self._direct_span = 0
            return False
        if self._direct.size < span:
            self._direct = np.empty(
                max(span, 2 * self._direct.size), dtype=np.int32
            )
        self._direct[:span] = -1
        self._direct[self._keys] = np.arange(n, dtype=np.int32)
        self._direct_span = span
        self._direct_dirty = False
        return True

    def _all_hit_rows(
        self,
        keys: np.ndarray,
        buckets_out: np.ndarray | None,
        signs_out: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Steady-state fast path: every key already cached.

        One gather against the dense key -> position map plus a hit
        probe, all through grow-only scratch — no ``np.unique``, whose
        sort/inverse machinery is both the dominant transient
        allocation and a large share of the time of the dedup path.
        Returns ``None`` when any key misses, the map is out of
        bounds, or the key universe is too wide (the dedup path then
        handles the batch; results are identical either way).
        """
        if self._keys.size == 0:
            return None
        if self._direct_dirty and not self._rebuild_direct():
            return None
        n = keys.size
        if (self._direct_span == 0
                or int(keys.max()) >= self._direct_span
                or int(keys.min()) < 0):
            return None
        if self._pos_scratch.size < n:
            grown = max(n, 2 * self._pos_scratch.size)
            self._pos32_scratch = np.empty(grown, dtype=np.int32)
            self._pos_scratch = np.empty(grown, dtype=np.intp)
            self._hit_scratch = np.empty(grown, dtype=bool)
        pos32 = self._pos32_scratch[:n]
        np.take(self._direct, keys, out=pos32)
        hit = self._hit_scratch[:n]
        np.greater_equal(pos32, 0, out=hit)
        if not hit.all():
            return None
        # One intp copy up front so the row takes below do not each
        # re-convert the index array.
        pos = self._pos_scratch[:n]
        np.copyto(pos, pos32)
        self._tick += 1
        self._last_used[pos] = self._tick
        self._m_hits.inc(n)
        if buckets_out is None:
            return self._buckets[:, pos], self._signs[:, pos]
        for j in range(self.family.depth):
            # Per-row 1-d takes: the axis/out variant of np.take
            # materializes an internal temporary; row takes do not.
            self._buckets[j].take(pos, out=buckets_out[j])
            self._signs[j].take(pos, out=signs_out[j])
        return buckets_out, signs_out

    def _unique_rows(
        self, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(ubuckets, usigns, inverse map) for a key array's unique set,
        served from the cache where possible."""
        uniq, inv = np.unique(keys, return_inverse=True)
        depth = self.family.depth
        self._tick += 1
        pos, hit = self._lookup(uniq)
        ubuckets = np.empty((depth, uniq.size), dtype=np.int64)
        usigns = np.empty((depth, uniq.size), dtype=np.float64)
        n_hit = int(np.count_nonzero(hit))
        if n_hit:
            hit_pos = pos[hit]
            ubuckets[:, hit] = self._buckets[:, hit_pos]
            usigns[:, hit] = self._signs[:, hit_pos]
            self._last_used[hit_pos] = self._tick
        if n_hit < uniq.size:
            miss = ~hit
            mb, ms = self.family.all_rows(uniq[miss])
            ubuckets[:, miss] = mb
            usigns[:, miss] = ms
            self._insert(uniq[miss], mb, ms)
        with self.registry.locked():
            self._m_hits.inc(n_hit)
            self._m_misses.inc(uniq.size - n_hit)
        return ubuckets, usigns, inv

    def rows(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Buckets and signs for every row, identical to ``all_rows``.

        Returns
        -------
        (buckets, signs):
            Arrays of shape ``(depth, len(keys))`` — bit-for-bit equal to
            ``family.all_rows(keys)``, computed with one hash evaluation
            per *new unique* key instead of one per position.
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        depth = self.family.depth
        if keys.size == 0:
            return (
                np.empty((depth, 0), dtype=np.int64),
                np.empty((depth, 0), dtype=np.float64),
            )
        fast = self._all_hit_rows(keys, None, None)
        if fast is not None:
            return fast
        ubuckets, usigns, inv = self._unique_rows(keys)
        return ubuckets[:, inv], usigns[:, inv]

    def rows_into(
        self,
        keys: np.ndarray,
        buckets_out: np.ndarray,
        signs_out: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`rows`, expanded into caller-provided arrays.

        ``buckets_out`` / ``signs_out`` must be ``(depth, len(keys))``;
        the expansion gather writes into them (``np.take(..., out=)``)
        instead of materializing fresh arrays — the zero-allocation
        front-end of the fused ``fit_batch`` paths.  Gathers move bits,
        so the results are bit-identical to :meth:`rows`.
        """
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        if keys.size == 0:
            return buckets_out, signs_out
        if self._all_hit_rows(keys, buckets_out, signs_out) is not None:
            return buckets_out, signs_out
        ubuckets, usigns, inv = self._unique_rows(keys)
        np.take(ubuckets, inv, axis=1, out=buckets_out)
        np.take(usigns, inv, axis=1, out=signs_out)
        return buckets_out, signs_out
