"""Streaming pointwise mutual information (Section 8.3).

The estimator frames PMI estimation as binary classification over the
space of token *pairs* (the skip-gram-with-negative-sampling / NCE
reduction; Levy & Goldberg 2014):

* with probability 1/2 (here: per true pair), sample a co-occurring pair
  (u, v) from the corpus and label it +1;
* otherwise sample u and v *independently* from the unigram distribution
  and label the synthetic pair -1.

With logistic loss and lambda = 0, the weight of pair (u, v) converges
to ``log[p(u,v) / (p(u) p(v))]`` — exactly PMI(u, v).  The unigram
distribution is approximated by a uniform reservoir over the token
stream (May et al. 2017), and the pair weights live in an AWM-Sketch, so
total memory stays tiny while the top-|S| pairs (by estimated PMI) are
recoverable exactly from the active set.

``negatives_per_pair`` mirrors the paper's "5 negative samples for every
true sample"; a shift of ``log(negatives)`` is added back to estimates
so they stay on the PMI scale (standard SGNS correction).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.core.awm_sketch import AWMSketch
from repro.data.batch import SparseBatch
from repro.data.sparse import SparseExample
from repro.learning.base import StreamingClassifier
from repro.learning.schedules import ConstantSchedule
from repro.sketch.reservoir import UniformReservoir


class StreamingPMI:
    """Streaming PMI estimation via a sketched NCE classifier.

    Parameters
    ----------
    vocab:
        Unigram vocabulary size (pair (u, v) gets feature id
        ``u * vocab + v``).
    classifier:
        Pair-space classifier; default is the paper's configuration —
        AWM-Sketch with heap 1024 and depth 1.
    width:
        Sketch width when the default classifier is constructed
        (Fig. 11 sweeps 2**10 .. 2**18).
    heap_capacity:
        Active-set size for the default classifier (paper: 1024).
    lambda_:
        L2 strength; the paper notes lambda > 0 biases the estimate but
        damps the variance of rare-pair estimates (Fig. 11 sweeps 1e-6 /
        1e-7 / 1e-8).
    negatives_per_pair:
        Synthetic negatives per observed true pair (paper: 5).
    reservoir_size:
        Unigram reservoir capacity (paper: 4000).
    learning_rate, seed:
        Optimizer / randomness knobs.
    """

    def __init__(
        self,
        vocab: int,
        classifier: StreamingClassifier | None = None,
        width: int = 2**16,
        heap_capacity: int = 1_024,
        lambda_: float = 1e-7,
        negatives_per_pair: int = 5,
        reservoir_size: int = 4_000,
        learning_rate: float = 0.1,
        seed: int = 0,
    ):
        if vocab < 2:
            raise ValueError(f"vocab must be >= 2, got {vocab}")
        if negatives_per_pair < 1:
            raise ValueError(
                f"negatives_per_pair must be >= 1, got {negatives_per_pair}"
            )
        self.vocab = vocab
        self.negatives_per_pair = negatives_per_pair
        if classifier is None:
            # A *constant* learning rate: pair features are 1-sparse, so
            # a globally-decaying schedule would starve pairs that first
            # appear late in the stream (rare, high-PMI pairs — exactly
            # the ones we want).  Constant-step SGD converges to a noisy
            # ball around the PMI values, which suffices for ranking.
            classifier = AWMSketch(
                width=width,
                depth=1,
                heap_capacity=heap_capacity,
                lambda_=lambda_,
                learning_rate=ConstantSchedule(learning_rate),
                seed=seed,
            )
        self.classifier = classifier
        self.reservoir = UniformReservoir(reservoir_size, seed=seed + 1)
        self._one = np.ones(1, dtype=np.float64)
        self.n_pairs = 0

    # ------------------------------------------------------------------
    def pair_id(self, u: int, v: int) -> int:
        """Feature identifier of the ordered pair (u, v)."""
        if not (0 <= u < self.vocab and 0 <= v < self.vocab):
            raise ValueError(f"tokens ({u}, {v}) out of range [0, {self.vocab})")
        return u * self.vocab + v

    def unpair_id(self, pid: int) -> tuple[int, int]:
        """Invert :meth:`pair_id`."""
        return pid // self.vocab, pid % self.vocab

    def observe_token(self, token: int) -> None:
        """Feed one token into the unigram reservoir."""
        self.reservoir.add(token)

    def _pair_examples(self, u: int, v: int) -> list[tuple[int, int]]:
        """Reservoir bookkeeping for one true pair; returns the training
        (pair id, label) sequence it induces (one positive, then the
        sampled negatives)."""
        self.observe_token(u)
        self.observe_token(v)
        out = [(self.pair_id(u, v), +1)]
        if len(self.reservoir) >= 2:
            negatives = self.reservoir.sample(2 * self.negatives_per_pair)
            for i in range(self.negatives_per_pair):
                nu, nv = negatives[2 * i], negatives[2 * i + 1]
                out.append((self.pair_id(int(nu), int(nv)), -1))
        self.n_pairs += 1
        return out

    def observe_pair(self, u: int, v: int) -> None:
        """Feed one true co-occurring pair (and draw negatives)."""
        for pid, label in self._pair_examples(u, v):
            self._train(pid, label)

    def consume(
        self,
        pairs: Iterable[tuple[int, int]],
        batch_size: int | None = None,
    ) -> None:
        """Feed an iterable of co-occurring (u, v) pairs.

        With ``batch_size`` set, the induced training examples
        (positives and negatives, in their sampling order) are packed
        into CSR batches of roughly that many examples and consumed via
        the classifier's batched engine.  Reservoir updates and negative
        sampling stay per-pair, so the training sequence — and therefore
        the final state — matches per-pair :meth:`observe_pair` calls.
        """
        if batch_size is None:
            for u, v in pairs:
                self.observe_pair(u, v)
            return
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        pending: list[tuple[int, int]] = []
        for u, v in pairs:
            pending.extend(self._pair_examples(u, v))
            if len(pending) >= batch_size:
                self._train_batch(pending)
                pending = []
        if pending:
            self._train_batch(pending)

    def consume_parallel(self, pairs: Iterable[tuple[int, int]], harness) -> None:
        """Feed co-occurring pairs through sharded workers.

        The reservoir bookkeeping and negative sampling are inherently
        sequential (each negative draw depends on the reservoir state at
        that point of the stream), so the *induced* training sequence —
        positives and sampled negatives, in order — is generated in one
        sequential pass exactly as :meth:`observe_pair` would, and that
        sequence of 1-sparse examples is what gets partitioned, trained
        per shard, and merged.  The merged model replaces (or absorbs,
        if already trained) the current classifier; PMI *rankings*
        survive the sum-merge, per the parallel subsystem's contract.
        """
        induced: list[tuple[int, int]] = []
        for u, v in pairs:
            induced.extend(self._pair_examples(u, v))
        batch = SparseBatch.from_pairs(
            np.array([pid for pid, _ in induced], dtype=np.int64),
            np.array([label for _, label in induced], dtype=np.int64),
        )
        self.classifier = harness.fit_into(batch, self.classifier)

    def _train(self, pid: int, label: int) -> None:
        self.classifier.update(
            SparseExample(
                np.array([pid], dtype=np.int64), self._one.copy(), label
            )
        )

    def _train_batch(self, examples: list[tuple[int, int]]) -> None:
        """Train on 1-sparse (pair id, label) rows as one CSR batch."""
        self.classifier.fit_batch(
            SparseBatch.from_pairs(
                np.array([pid for pid, _ in examples], dtype=np.int64),
                np.array([label for _, label in examples], dtype=np.int64),
            )
        )

    # ------------------------------------------------------------------
    @property
    def _shift(self) -> float:
        """SGNS correction: with n negatives per positive the logit
        converges to PMI - log(n)."""
        return math.log(self.negatives_per_pair)

    def estimate_pmi(self, u: int, v: int) -> float:
        """Estimated PMI of (u, v) from the classifier weight."""
        return (
            self.classifier.estimate_weight(self.pair_id(u, v)) + self._shift
        )

    def top_pairs(self, k: int) -> list[tuple[int, int, float]]:
        """The k pairs with the largest estimated PMI.

        Returns (u, v, estimated PMI) triples, descending.  Only
        positively-correlated pairs are meaningful for PMI ranking, so
        negative-weight entries are filtered.
        """
        # Scan the full active set: high-PMI pairs compete for heap rank
        # against negatively-drifting never-co-occurring pairs, so a
        # narrow top-|weight| scan can miss positive entries.
        pool = getattr(self.classifier, "heap", None)
        pool_size = pool.capacity if pool is not None else 4 * k
        raw = self.classifier.top_weights(max(pool_size, 4 * k))
        out = []
        for pid, w in raw:
            if w <= 0:
                continue
            u, v = self.unpair_id(pid)
            out.append((u, v, w + self._shift))
            if len(out) >= k:
                break
        return out
