"""Stream-processing applications built on the WM/AWM sketches (Section 8).

Each application frames a streaming-analytics task as memory-constrained
binary classification and reads the answer off the classifier's
heavily-weighted features:

* :mod:`~repro.apps.explanation` — streaming data explanation: which
  attributes are most indicative of the outlier class (Figs. 8-9,
  MacroBase-style relative risk).
* :mod:`~repro.apps.deltoids` — relative deltoid detection: which items
  differ most in relative frequency between two concurrent streams
  (Fig. 10, vs. a paired Count-Min baseline).
* :mod:`~repro.apps.pmi` — streaming pointwise mutual information: which
  token pairs are most correlated, via the NCE/skip-gram reduction whose
  weights converge to PMI (Table 3, Fig. 11).
"""

from repro.apps.deltoids import ClassifierDeltoid, PairedCountMinDeltoid
from repro.apps.explanation import StreamingExplainer, HeavyHitterExplainer
from repro.apps.pmi import StreamingPMI

__all__ = [
    "StreamingExplainer",
    "HeavyHitterExplainer",
    "ClassifierDeltoid",
    "PairedCountMinDeltoid",
    "StreamingPMI",
]
