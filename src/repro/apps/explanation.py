"""Streaming data explanation (Section 8.1).

Task: given a stream of data points labelled outlier / inlier, identify
the attributes most *indicative* of the outlier class — quantified by
relative risk ``r_x = P(y=1 | x=1) / P(y=1 | x=0)``.

Two approaches are compared, exactly as in Figs. 8-9:

* :class:`StreamingExplainer` — the paper's approach: train a (sketched)
  logistic-regression classifier to discriminate outliers from inliers
  on 1-sparse attribute encodings; heavily-weighted attributes are the
  explanations (logistic weights are log-odds ratios, a close relative
  of log relative risk).
* :class:`HeavyHitterExplainer` — the MacroBase-style baseline: track
  the most *frequent* attributes (within the positive class, or overall)
  with Space Saving, then rank by relative risk estimated from the
  tracked counts.  Fig. 8 shows this wastes its budget on frequent but
  risk-neutral attributes.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.data.sparse import SparseExample
from repro.learning.base import StreamingClassifier
from repro.sketch.space_saving import SpaceSaving


class StreamingExplainer:
    """Classifier-based streaming explanation.

    Parameters
    ----------
    classifier:
        Any :class:`~repro.learning.base.StreamingClassifier` — the paper
        uses a 32 KB AWM-Sketch; the unconstrained model gives the
        "Logistic Reg.: Exact" panel of Fig. 8.
    intercept_id:
        Optional reserved feature id used as an intercept.  With an
        intercept, the per-attribute weights converge to log-odds
        *ratios* relative to the base outlier rate — near 0 for neutral
        attributes — so magnitude ranking surfaces genuinely risky /
        protective attributes instead of frequent-but-neutral ones whose
        no-intercept weights sit at logit(base rate).  The id must not
        collide with any real attribute id (e.g. use the attribute
        dimension d).
    """

    def __init__(
        self, classifier: StreamingClassifier, intercept_id: int | None = None
    ):
        self.classifier = classifier
        self.intercept_id = intercept_id
        self.n_rows = 0

    def observe(self, attributes: np.ndarray, is_outlier: bool) -> None:
        """Feed one row: one 1-sparse example per attribute (footnote 4:
        per-attribute examples make weights track relative risk more
        faithfully than one multi-hot example per row)."""
        label = 1 if is_outlier else -1
        for a in np.atleast_1d(np.asarray(attributes, dtype=np.int64)).tolist():
            if self.intercept_id is None:
                example = SparseExample(
                    np.array([a], dtype=np.int64),
                    np.ones(1, dtype=np.float64),
                    label,
                )
            else:
                example = SparseExample(
                    np.array([a, self.intercept_id], dtype=np.int64),
                    np.ones(2, dtype=np.float64),
                    label,
                )
            self.classifier.update(example)
        self.n_rows += 1

    def consume(
        self,
        examples: Iterable[SparseExample],
        batch_size: int | None = None,
    ) -> None:
        """Feed pre-encoded 1-sparse examples directly.

        With ``batch_size`` set, the stream is driven through the
        classifier's batched engine (``fit_batch``) — identical final
        state, amortized hashing.
        """
        self.classifier.fit(examples, batch_size=batch_size)

    def consume_parallel(self, examples, harness) -> None:
        """Feed pre-encoded examples through sharded workers.

        ``harness`` is a :class:`~repro.parallel.harness.ParallelHarness`
        whose factory builds classifiers mergeable with this explainer's
        (same class and hash family).  The stream is partitioned,
        trained per shard, and the merged model replaces (or, if this
        explainer already holds training state, absorbs) the current
        classifier — the approximate merge semantics of the parallel
        subsystem apply to the recovered explanations.
        """
        self.classifier = harness.fit_into(examples, self.classifier)

    def top_attributes(
        self, k: int, by: str = "magnitude"
    ) -> list[tuple[int, float]]:
        """The k top attributes under the requested ranking.

        ``by="magnitude"`` (default) returns the most heavily-weighted
        attributes of either sign — the paper's retrieval rule, which
        surfaces features at *both* extremes of the relative-risk scale
        (Fig. 8).  ``by="risk"`` ranks by signed weight descending (most
        outlier-indicative first) and ``by="protective"`` ascending.

        Note that without an intercept term, attributes neutral for a
        base outlier rate p converge to weight logit(p) (negative for
        p < 0.5), so signed ranking is the right query for "which
        attributes increase outlier risk".
        """
        if by == "magnitude":
            top = self.classifier.top_weights(
                k if self.intercept_id is None else k + 1
            )
            return [(a, w) for a, w in top if a != self.intercept_id][:k]
        # Pull a generous pool by magnitude, then re-rank by sign.
        pool = [
            (a, w)
            for a, w in self.classifier.top_weights(max(4 * k, 1_024))
            if a != self.intercept_id
        ]
        if by == "risk":
            pool.sort(key=lambda kv: kv[1], reverse=True)
        elif by == "protective":
            pool.sort(key=lambda kv: kv[1])
        else:
            raise ValueError(f"unknown ranking {by!r}")
        return pool[:k]

    def risk_scores(self, attributes: np.ndarray) -> np.ndarray:
        """Estimated weights for given attributes (log-odds scale)."""
        return self.classifier.estimate_weights(
            np.asarray(attributes, dtype=np.int64)
        )


class HeavyHitterExplainer:
    """Frequency-based explanation baseline (Fig. 8 top row).

    Parameters
    ----------
    capacity:
        Space Saving slots per summary.
    mode:
        ``"positive"`` tracks attributes frequent within the outlier
        class only (Fig. 8 "Heavy-Hitters: Positive"); ``"both"`` tracks
        attributes frequent overall (Fig. 8 "Heavy-Hitters: Both").  In
        both modes a second summary of the complementary class supports
        relative-risk estimation from tracked counts.
    """

    def __init__(self, capacity: int, mode: str = "positive"):
        if mode not in ("positive", "both"):
            raise ValueError(f"mode must be 'positive' or 'both', got {mode!r}")
        self.mode = mode
        self.positive = SpaceSaving(capacity)
        self.negative = SpaceSaving(capacity)
        self.n_positive = 0
        self.n_negative = 0

    def observe(self, attributes: np.ndarray, is_outlier: bool) -> None:
        """Feed one row of attributes with its outlier label."""
        attrs = np.atleast_1d(np.asarray(attributes, dtype=np.int64)).tolist()
        if is_outlier:
            self.n_positive += 1
            for a in attrs:
                self.positive.update(a)
            if self.mode == "both":
                pass  # "both" uses the union ranking at query time
        else:
            self.n_negative += 1
            for a in attrs:
                self.negative.update(a)

    def top_attributes(self, k: int) -> list[int]:
        """The k most frequent attributes under the configured mode."""
        if self.mode == "positive":
            return [a for a, _ in self.positive.top(k)]
        combined: dict[int, float] = {}
        for a, c in self.positive.top():
            combined[a] = combined.get(a, 0.0) + c
        for a, c in self.negative.top():
            combined[a] = combined.get(a, 0.0) + c
        ranked = sorted(combined.items(), key=lambda kv: kv[1], reverse=True)
        return [a for a, _ in ranked[:k]]

    def estimated_relative_risk(self, attribute: int, smoothing: float = 0.5) -> float:
        """Relative risk from the two summaries' (approximate) counts."""
        pos_with = self.positive.count(attribute)
        neg_with = self.negative.count(attribute)
        pos_without = max(self.n_positive - pos_with, 0.0)
        neg_without = max(self.n_negative - neg_with, 0.0)
        p_with = (pos_with + smoothing) / (pos_with + neg_with + 2 * smoothing)
        p_without = (pos_without + smoothing) / (
            pos_without + neg_without + 2 * smoothing
        )
        return p_with / p_without
