"""Relative deltoid detection over paired streams (Section 8.2).

Task: two streams are observed concurrently (e.g. outbound vs inbound
IP addresses); find the items whose occurrence ratio
``phi(i) = n1(i) / n2(i)`` — or its reciprocal — is large.

* :class:`ClassifierDeltoid` — the paper's approach: label stream-1
  items +1 and stream-2 items -1, train a (sketched) logistic regressor
  on the 1-sparse encodings, and read high-|weight| items as deltoids.
  For lambda = 0 the weight of item i converges toward
  ``log(p1(i) / p2(i))``, the log occurrence ratio.
* :class:`PairedCountMinDeltoid` — the Cormode-Muthukrishnan-style
  baseline: two Count-Min sketches (one per stream) with a heap of
  candidate items ranked by estimated count ratio.  Fig. 10 shows the
  AWM-based detector beating this baseline by >4x recall at equal
  memory, and still beating it when the CM baseline gets 8x the budget.
"""

from __future__ import annotations

import math
from itertools import islice

import numpy as np

from repro.data.batch import SparseBatch
from repro.data.sparse import SparseExample
from repro.heap.topk import TopKStore
from repro.learning.base import StreamingClassifier
from repro.sketch.count_min import CountMinSketch


class ClassifierDeltoid:
    """Classifier-based relative deltoid detector.

    Parameters
    ----------
    classifier:
        Any streaming classifier; the paper uses a 32 KB AWM-Sketch
        (which matched unconstrained LR on this task).
    """

    def __init__(self, classifier: StreamingClassifier):
        self.classifier = classifier
        self._one = np.ones(1, dtype=np.float64)

    def observe(self, item: int, stream: int) -> None:
        """Feed one item occurrence; ``stream`` is +1 (first) or -1."""
        if stream not in (1, -1):
            raise ValueError(f"stream must be +1 or -1, got {stream}")
        self.classifier.update(
            SparseExample(
                np.array([item], dtype=np.int64), self._one.copy(), stream
            )
        )

    def consume(self, pairs, batch_size: int | None = None) -> None:
        """Feed an iterable of (item, stream) pairs.

        With ``batch_size`` set, windows of pairs are packed directly
        into CSR :class:`~repro.data.batch.SparseBatch` objects (1-sparse
        rows built array-at-a-time, skipping per-pair ``SparseExample``
        construction) and consumed via the classifier's batched engine;
        the final state matches per-pair :meth:`observe` calls.
        """
        if batch_size is None:
            for item, stream in pairs:
                self.observe(item, stream)
            return
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        it = iter(pairs)
        while True:
            window = list(islice(it, batch_size))
            if not window:
                return
            items = np.array([p[0] for p in window], dtype=np.int64)
            labels = np.array([p[1] for p in window], dtype=np.int64)
            self.classifier.fit_batch(SparseBatch.from_pairs(items, labels))

    def consume_parallel(self, pairs, harness) -> None:
        """Feed (item, stream) pairs through sharded workers.

        Pairs are packed straight into one CSR
        :class:`~repro.data.batch.SparseBatch` of 1-sparse rows (as the
        batched :meth:`consume` does — no per-pair example objects),
        deterministically partitioned by the harness in CSR land,
        trained per shard, and merged; the merged model replaces (or
        absorbs, if already trained) the current classifier.  Summed
        sketch tables keep the log-ratio *ranking* intact — see the
        parallel subsystem's merge contract.
        """
        window = list(pairs)
        batch = SparseBatch.from_pairs(
            np.array([p[0] for p in window], dtype=np.int64),
            np.array([p[1] for p in window], dtype=np.int64),
        )
        self.classifier = harness.fit_into(batch, self.classifier)

    def top_deltoids(self, k: int) -> list[tuple[int, float]]:
        """The k items with the largest |weight| = |log-ratio estimate|."""
        return self.classifier.top_weights(k)

    def estimated_log_ratio(self, item: int) -> float:
        """The estimated log occurrence ratio of one item."""
        return self.classifier.estimate_weight(item)


class PairedCountMinDeltoid:
    """Paired Count-Min ratio estimation baseline.

    Parameters
    ----------
    width, depth:
        Per-stream Count-Min dimensions.
    candidates:
        Heap capacity for candidate deltoids (ranked by |log ratio| of
        the sketch estimates, refreshed on every occurrence).
    seed:
        Hash seed (both sketches share it so the same item hits the same
        buckets, making the ratio of estimates better behaved).
    smoothing:
        Added to both counts before the ratio (CM estimates can be zero
        early on).
    """

    def __init__(
        self,
        width: int,
        depth: int = 2,
        candidates: int = 2_048,
        seed: int = 0,
        smoothing: float = 1.0,
    ):
        self.cm_first = CountMinSketch(width, depth, seed=seed)
        self.cm_second = CountMinSketch(width, depth, seed=seed)
        self.heap = TopKStore(candidates)
        self.smoothing = smoothing

    def observe(self, item: int, stream: int) -> None:
        """Feed one item occurrence; ``stream`` is +1 (first) or -1."""
        if stream == 1:
            self.cm_first.update_one(item)
        elif stream == -1:
            self.cm_second.update_one(item)
        else:
            raise ValueError(f"stream must be +1 or -1, got {stream}")
        ratio = self.estimated_log_ratio(item)
        if (
            item in self.heap
            or not self.heap.is_full
            or abs(ratio) > self.heap.min_priority()
        ):
            self.heap.push(item, ratio)

    def consume(self, pairs) -> None:
        """Feed an iterable of (item, stream) pairs."""
        for item, stream in pairs:
            self.observe(item, stream)

    def estimated_log_ratio(self, item: int) -> float:
        """log[(n1 + smoothing) / (n2 + smoothing)] from the sketches."""
        n1 = self.cm_first.estimate_one(item)
        n2 = self.cm_second.estimate_one(item)
        return math.log((n1 + self.smoothing) / (n2 + self.smoothing))

    def top_deltoids(self, k: int) -> list[tuple[int, float]]:
        """The k tracked items with largest |log ratio| (refreshed)."""
        entries = [
            (item, self.estimated_log_ratio(item)) for item, _ in self.heap.items()
        ]
        entries.sort(key=lambda kv: abs(kv[1]), reverse=True)
        return entries[:k]

    @property
    def memory_cost_bytes(self) -> int:
        """Cost-model footprint: two CM tables + heap (id + ratio)."""
        from repro.learning.base import CELL_BYTES

        table_cells = 2 * self.cm_first.width * self.cm_first.depth
        return CELL_BYTES * (table_cells + 2 * self.heap.capacity)
