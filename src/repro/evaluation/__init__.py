"""Evaluation harness: metrics and experiment drivers.

* :mod:`~repro.evaluation.metrics` — the RelErr recovery metric of
  Section 7.2, recall@threshold (Fig. 10), Pearson correlation (Fig. 9)
  and supporting statistics.
* :mod:`~repro.evaluation.harness` — method registry + drivers that run
  every budgeted method over a shared stream and report recovery and
  online classification error (the machinery behind Figs. 3-7).
* :mod:`~repro.evaluation.runtime` — wall-clock measurement normalized
  to the unconstrained baseline (Fig. 7).
"""

from repro.evaluation.harness import (
    MethodResult,
    RecoveryExperiment,
    make_budgeted_methods,
)
from repro.evaluation.metrics import (
    online_error_rate,
    pearson_correlation,
    recall_at_threshold,
    relative_error,
    top_k_vector,
)

__all__ = [
    "relative_error",
    "top_k_vector",
    "recall_at_threshold",
    "pearson_correlation",
    "online_error_rate",
    "RecoveryExperiment",
    "MethodResult",
    "make_budgeted_methods",
]
