"""Evaluation metrics.

The central one is the paper's relative L2 recovery error (Section 7.2):

.. math::

    \\mathrm{RelErr}(w^K, w^*) =
        \\frac{\\|w^K - w^*\\|_2}{\\|w^K_* - w^*\\|_2}

where ``w^K`` is the K-sparse vector of a method's estimated top-K
weights (estimated values at estimated positions), ``w*`` the reference
uncompressed model, and ``w^K_*`` the true top-K of ``w*``.  RelErr >= 1
always, with 1 meaning the method's top-K is exactly the optimal
K-sparse approximation of ``w*``.
"""

from __future__ import annotations

import math

import numpy as np


def top_k_vector(
    d: int, entries: list[tuple[int, float]], k: int | None = None
) -> np.ndarray:
    """Materialize a K-sparse estimate as a dense length-``d`` vector.

    Parameters
    ----------
    d:
        Ambient dimension.
    entries:
        (index, weight) pairs, highest magnitude first.
    k:
        Keep only the first ``k`` entries (default: all).
    """
    out = np.zeros(d, dtype=np.float64)
    if k is not None:
        entries = entries[:k]
    for idx, w in entries:
        if not 0 <= idx < d:
            raise IndexError(f"feature id {idx} out of range [0, {d})")
        out[idx] = w
    return out


def true_top_k(w_star: np.ndarray, k: int) -> np.ndarray:
    """The optimal K-sparse approximation of ``w_star`` (true top-K)."""
    w_star = np.asarray(w_star, dtype=np.float64)
    out = np.zeros_like(w_star)
    if k >= w_star.size:
        return w_star.copy()
    idx = np.argpartition(-np.abs(w_star), k)[:k]
    out[idx] = w_star[idx]
    return out


def relative_error(
    estimated: list[tuple[int, float]] | np.ndarray,
    w_star: np.ndarray,
    k: int,
) -> float:
    """The paper's RelErr metric for a method's top-K estimate.

    ``estimated`` may be (index, weight) pairs (sorted by magnitude,
    descending) or an already-dense K-sparse vector.
    """
    w_star = np.asarray(w_star, dtype=np.float64)
    if isinstance(estimated, np.ndarray):
        w_k = estimated
    else:
        w_k = top_k_vector(w_star.size, estimated, k)
    reference = true_top_k(w_star, k)
    denom = float(np.linalg.norm(reference - w_star))
    num = float(np.linalg.norm(w_k - w_star))
    if denom == 0.0:
        # w* itself is K-sparse: perfect recovery gives 0/0 -> 1.
        return 1.0 if num == 0.0 else math.inf
    return num / denom


def recall_at_threshold(
    retrieved: set[int] | list[int], relevant: set[int] | list[int]
) -> float:
    """|retrieved ∩ relevant| / |relevant| (1.0 when nothing is relevant).

    Fig. 10 reports this for "IP addresses with relative occurrence ratio
    above the given threshold".
    """
    relevant = set(relevant)
    if not relevant:
        return 1.0
    return len(set(retrieved) & relevant) / len(relevant)


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson's r between two samples (Fig. 9 reports 0.95 / 0.91)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise ValueError("need at least two points for a correlation")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = float(np.sqrt((xc**2).sum() * (yc**2).sum()))
    if denom == 0.0:
        return 0.0
    return float((xc * yc).sum() / denom)


def online_error_rate(mistakes: int, n: int) -> float:
    """Cumulative mistakes / examples (Section 7.3's metric)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return mistakes / n


def f1_score(retrieved: set[int], relevant: set[int]) -> float:
    """F1 of a retrieved set vs. the relevant set (auxiliary metric)."""
    retrieved, relevant = set(retrieved), set(relevant)
    if not retrieved or not relevant:
        return 0.0
    tp = len(retrieved & relevant)
    if tp == 0:
        return 0.0
    precision = tp / len(retrieved)
    recall = tp / len(relevant)
    return 2 * precision * recall / (precision + recall)


def median(values) -> float:
    """Median of a non-empty sequence (used for run aggregation;
    the paper's plots show medians over 10 trials)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("median of empty sequence")
    return float(np.median(arr))
