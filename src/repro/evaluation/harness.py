"""Experiment drivers shared by the benchmark suite (Figs. 3-7).

The harness fixes the experimental protocol of Section 7.1:

* every method sees the *same* single pass over the same example
  sequence;
* methods are configured to fit a common byte budget via the Section 7.1
  cost model (:mod:`repro.core.config`);
* the recovery reference ``w*`` is the memory-unconstrained online
  logistic regression trained on the identical sequence;
* recovery quality is RelErr over a grid of K; classification quality is
  progressive-validation error; runtime is wall-clock for the full pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.awm_sketch import AWMSketch
from repro.core.config import (
    count_min_frequent_sizes,
    default_awm_config,
    default_wm_config,
    feature_hashing_width,
    probabilistic_truncation_capacity,
    space_saving_capacity,
    truncation_capacity,
)
from repro.core.wm_sketch import WMSketch
from repro.data.sparse import SparseExample
from repro.evaluation.metrics import relative_error
from repro.learning.base import OnlineErrorTracker, StreamingClassifier
from repro.learning.feature_hashing import FeatureHashing
from repro.learning.frequent import CountMinFrequent, SpaceSavingFrequent
from repro.learning.ogd import UncompressedClassifier
from repro.learning.truncation import ProbabilisticTruncation, SimpleTruncation

#: Canonical short names used in the paper's figures.
METHOD_NAMES = ("Trun", "PTrun", "SS", "CM", "Hash", "WM", "AWM")


def make_budgeted_methods(
    budget_bytes: int,
    lambda_: float = 1e-6,
    learning_rate: float = 0.1,
    seed: int = 0,
    include: Sequence[str] = ("Trun", "PTrun", "SS", "Hash", "WM", "AWM"),
) -> dict[str, StreamingClassifier]:
    """Instantiate every requested method configured for one byte budget.

    The returned classifiers all satisfy
    ``clf.memory_cost_bytes <= budget_bytes``.
    """
    methods: dict[str, StreamingClassifier] = {}
    common = dict(lambda_=lambda_, learning_rate=learning_rate)
    for name in include:
        if name == "Trun":
            methods[name] = SimpleTruncation(
                truncation_capacity(budget_bytes), **common
            )
        elif name == "PTrun":
            methods[name] = ProbabilisticTruncation(
                probabilistic_truncation_capacity(budget_bytes),
                seed=seed,
                **common,
            )
        elif name == "SS":
            methods[name] = SpaceSavingFrequent(
                space_saving_capacity(budget_bytes), **common
            )
        elif name == "CM":
            heap, width, depth = count_min_frequent_sizes(budget_bytes)
            methods[name] = CountMinFrequent(
                heap, width, depth, seed=seed, **common
            )
        elif name == "Hash":
            methods[name] = FeatureHashing(
                feature_hashing_width(budget_bytes), seed=seed, **common
            )
        elif name == "WM":
            cfg = default_wm_config(budget_bytes)
            methods[name] = WMSketch(
                cfg.width,
                cfg.depth,
                heap_capacity=cfg.heap_capacity,
                seed=seed,
                **common,
            )
        elif name == "AWM":
            cfg = default_awm_config(budget_bytes)
            methods[name] = AWMSketch(
                cfg.width,
                cfg.depth,
                heap_capacity=cfg.heap_capacity,
                seed=seed,
                **common,
            )
        else:
            raise ValueError(f"unknown method name {name!r}")
    for name, clf in methods.items():
        if clf.memory_cost_bytes > budget_bytes:
            raise AssertionError(
                f"{name} exceeds budget: {clf.memory_cost_bytes} > {budget_bytes}"
            )
    return methods


@dataclass
class MethodResult:
    """Everything measured for one method on one run."""

    name: str
    rel_err: dict[int, float] = field(default_factory=dict)
    error_rate: float = float("nan")
    runtime_s: float = float("nan")
    memory_bytes: int = 0

    def normalized_runtime(self, baseline_s: float) -> float:
        """Runtime as a multiple of the unconstrained baseline's."""
        if baseline_s <= 0:
            raise ValueError("baseline runtime must be positive")
        return self.runtime_s / baseline_s


class RecoveryExperiment:
    """Run budgeted methods + the unconstrained reference on one stream.

    Parameters
    ----------
    examples:
        Materialized example sequence (all methods must see the identical
        order, so the stream is realized once up front).
    d:
        Feature dimension (for the dense reference).
    lambda_, learning_rate:
        Shared optimizer settings (the paper tunes lambda per dataset and
        shares eta0 = 0.1).
    ks:
        The K grid for RelErr curves (the paper plots K <= 128).
    batch_size:
        If set, every method (and the reference) is driven through the
        batched streaming engine (``fit_stream``) with this mini-batch
        size instead of the per-example predict-then-update loop.  The
        batched kernels replay the per-example sequence exactly, so
        results are identical — only the wall-clock changes.
    """

    def __init__(
        self,
        examples: Iterable[SparseExample],
        d: int,
        lambda_: float = 1e-6,
        learning_rate: float = 0.1,
        ks: Sequence[int] = (8, 16, 32, 64, 128),
        batch_size: int | None = None,
    ):
        self.examples = list(examples)
        if not self.examples:
            raise ValueError("empty example stream")
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.d = d
        self.lambda_ = lambda_
        self.learning_rate = learning_rate
        self.ks = tuple(ks)
        self.batch_size = batch_size
        self._observed: np.ndarray | None = None
        self._reference: UncompressedClassifier | None = None
        self._reference_runtime: float = float("nan")

    def _drive(
        self, clf: StreamingClassifier, tracker: OnlineErrorTracker
    ) -> None:
        """One predict-then-update pass over the shared stream."""
        if self.batch_size is None:
            for ex in self.examples:
                prediction = clf.predict(ex)
                tracker.record(prediction, ex.label)
                clf.update(ex)
        else:
            clf.fit_stream(
                self.examples, batch_size=self.batch_size, tracker=tracker
            )

    # ------------------------------------------------------------------
    @property
    def observed_features(self) -> np.ndarray:
        """All feature ids occurring in the stream (candidate set for
        methods that store no identifiers)."""
        if self._observed is None:
            seen: set[int] = set()
            for ex in self.examples:
                seen.update(ex.indices.tolist())
            self._observed = np.fromiter(seen, dtype=np.int64, count=len(seen))
        return self._observed

    def reference(self) -> UncompressedClassifier:
        """Train (once) and return the unconstrained reference model."""
        if self._reference is None:
            clf = UncompressedClassifier(
                self.d,
                lambda_=self.lambda_,
                learning_rate=self.learning_rate,
                track_top=128,
            )
            tracker = OnlineErrorTracker(checkpoint_every=0)
            start = time.perf_counter()
            self._drive(clf, tracker)
            self._reference_runtime = time.perf_counter() - start
            self._reference_error = tracker.error_rate
            self._reference = clf
        return self._reference

    def reference_result(self) -> MethodResult:
        """The unconstrained model's own result row (the "LR" line)."""
        clf = self.reference()
        w_star = clf.dense_weights()
        result = MethodResult(
            name="LR",
            error_rate=self._reference_error,
            runtime_s=self._reference_runtime,
            memory_bytes=clf.memory_cost_bytes,
        )
        for k in self.ks:
            result.rel_err[k] = relative_error(clf.top_weights(k), w_star, k)
        return result

    # ------------------------------------------------------------------
    def _top_weights(
        self, clf: StreamingClassifier, k: int
    ) -> list[tuple[int, float]]:
        """Top-k from the method, via candidates when ids are not stored."""
        if isinstance(clf, (FeatureHashing, WMSketch)) and hasattr(
            clf, "top_weights_from_candidates"
        ):
            if isinstance(clf, WMSketch) and clf.heap is not None:
                return clf.top_weights(k)
            return clf.top_weights_from_candidates(self.observed_features, k)
        return clf.top_weights(k)

    def run_method(self, name: str, clf: StreamingClassifier) -> MethodResult:
        """Single pass + metrics for one method."""
        tracker = OnlineErrorTracker(checkpoint_every=0)
        start = time.perf_counter()
        self._drive(clf, tracker)
        runtime = time.perf_counter() - start
        w_star = self.reference().dense_weights()
        result = MethodResult(
            name=name,
            error_rate=tracker.error_rate,
            runtime_s=runtime,
            memory_bytes=clf.memory_cost_bytes,
        )
        for k in self.ks:
            result.rel_err[k] = relative_error(
                self._top_weights(clf, k), w_star, k
            )
        return result

    def run_budget(
        self,
        budget_bytes: int,
        seed: int = 0,
        include: Sequence[str] = ("Trun", "PTrun", "SS", "Hash", "WM", "AWM"),
    ) -> dict[str, MethodResult]:
        """Run every budgeted method at one budget; returns name->result."""
        methods = make_budgeted_methods(
            budget_bytes,
            lambda_=self.lambda_,
            learning_rate=self.learning_rate,
            seed=seed,
            include=include,
        )
        return {
            name: self.run_method(name, clf) for name, clf in methods.items()
        }

    def run_factory(
        self, name: str, factory: Callable[[], StreamingClassifier]
    ) -> MethodResult:
        """Run a custom (e.g. swept-configuration) method."""
        return self.run_method(name, factory())
