"""Runtime measurement normalized to the unconstrained baseline (Fig. 7).

Fig. 7 reports each method's wall-clock for a full pass over RCV1 as a
multiple of memory-unconstrained logistic regression (weights in a flat
array + a K=128 heap).  The paper's absolute numbers come from optimized
C++ on a Xeon E5-2690; ours come from Python — but the *normalized*
ratios are comparable because numerator and denominator share the
substrate (DESIGN.md Section 3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.data.batch import SparseBatch, iter_batches
from repro.data.sparse import SparseExample
from repro.learning.base import StreamingClassifier


@dataclass
class TimingResult:
    """Wall-clock of one method over one pass."""

    name: str
    seconds: float
    n_examples: int

    @property
    def us_per_example(self) -> float:
        """Microseconds per processed example."""
        return 1e6 * self.seconds / max(self.n_examples, 1)

    @property
    def examples_per_second(self) -> float:
        """Throughput over the timed pass."""
        if self.seconds <= 0:
            return float("inf")
        return self.n_examples / self.seconds


def time_pass(
    name: str,
    classifier: StreamingClassifier,
    examples: Sequence[SparseExample],
    with_prediction: bool = True,
    batch_size: int | None = None,
) -> TimingResult:
    """Time a full predict-then-update pass (the Fig. 7 workload).

    With ``batch_size`` set, the pass is driven through ``fit_batch``
    over pre-built :class:`SparseBatch` windows (batch construction is
    excluded from the clock — a streaming deployment receives batches
    natively; :mod:`benchmarks.bench_update_throughput` reports the
    construction-inclusive number separately).  ``fit_batch`` returns
    each example's pre-update margin, so the batched pass does the same
    predict-then-update work as the per-example loop.
    """
    if batch_size is not None:
        if not with_prediction:
            raise ValueError(
                "batch_size and with_prediction=False cannot be combined: "
                "fit_batch always computes the pre-update margins, so an "
                "update-only batched pass does not exist"
            )
        batches = list(iter_batches(examples, batch_size))
        start = time.perf_counter()
        for b in batches:
            classifier.fit_batch(b)
        elapsed = time.perf_counter() - start
        return TimingResult(
            name=name, seconds=elapsed, n_examples=len(examples)
        )
    start = time.perf_counter()
    if with_prediction:
        for ex in examples:
            classifier.predict_margin(ex)
            classifier.update(ex)
    else:
        for ex in examples:
            classifier.update(ex)
    elapsed = time.perf_counter() - start
    return TimingResult(name=name, seconds=elapsed, n_examples=len(examples))


def normalized_runtimes(
    factories: dict[str, Callable[[], StreamingClassifier]],
    baseline_factory: Callable[[], StreamingClassifier],
    examples: Sequence[SparseExample],
    repeats: int = 1,
    batch_size: int | None = None,
) -> dict[str, float]:
    """Each method's best-of-``repeats`` runtime divided by the baseline's.

    Best-of-N damps scheduler noise, which matters because the Python
    substrate's absolute times are small for CI-sized streams.  With
    ``batch_size`` set, every method (baseline included) runs through
    the batched engine.
    """
    def best_time(factory: Callable[[], StreamingClassifier]) -> float:
        return min(
            time_pass(
                "x", factory(), examples, batch_size=batch_size
            ).seconds
            for _ in range(repeats)
        )

    base = best_time(baseline_factory)
    if base <= 0:
        raise RuntimeError("baseline measured at zero seconds; enlarge stream")
    return {name: best_time(f) / base for name, f in factories.items()}
