"""Sparse example representation used throughout the library.

Streams are iterables of :class:`SparseExample`.  An example is a sparse
feature vector — parallel ``indices`` / ``values`` arrays — plus a binary
label in {-1, +1}.  Keeping the representation this small (two NumPy
arrays and an int) matters because every learner touches every example
exactly once, and the per-example overhead dominates runtime for the
Python substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class SparseExample:
    """A labelled sparse feature vector.

    Attributes
    ----------
    indices:
        int64 array of distinct feature identifiers (need not be sorted).
    values:
        float64 array of the corresponding feature values.
    label:
        +1 or -1.
    """

    indices: np.ndarray
    values: np.ndarray
    label: int = field(default=1)

    def __post_init__(self):
        indices = np.atleast_1d(np.asarray(self.indices, dtype=np.int64))
        values = np.atleast_1d(np.asarray(self.values, dtype=np.float64))
        if indices.shape != values.shape:
            raise ValueError(
                f"indices shape {indices.shape} != values shape {values.shape}"
            )
        if self.label not in (-1, 1):
            raise ValueError(f"label must be +1 or -1, got {self.label}")
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "values", values)

    @property
    def nnz(self) -> int:
        """Number of stored (possibly zero-valued) entries."""
        return int(self.indices.size)

    def l1_norm(self) -> float:
        """The l1 norm of the feature vector (gamma in Theorem 1)."""
        return float(np.abs(self.values).sum())

    def l2_norm(self) -> float:
        """The l2 norm of the feature vector."""
        return float(np.sqrt((self.values**2).sum()))

    def scaled(self, factor: float) -> "SparseExample":
        """A copy with all feature values multiplied by ``factor``."""
        return SparseExample(self.indices.copy(), self.values * factor, self.label)

    def normalized(self, norm: str = "l1") -> "SparseExample":
        """A copy normalized to unit l1 or l2 norm (no-op for zero vectors).

        Theorem 1's bound is stated for gamma = max_t ||x_t||_1; the paper
        notes inputs can be normalized so gamma = 1.
        """
        if norm == "l1":
            n = self.l1_norm()
        elif norm == "l2":
            n = self.l2_norm()
        else:
            raise ValueError(f"unknown norm {norm!r}")
        if n == 0.0:
            return self
        return self.scaled(1.0 / n)


def sparse_dot(
    weights: np.ndarray, indices: np.ndarray, values: np.ndarray
) -> float:
    """Dense-weights / sparse-input inner product ``w . x``."""
    return float(weights[indices] @ values)


def dense_to_sparse(x: np.ndarray, label: int = 1) -> SparseExample:
    """Convert a dense vector to a :class:`SparseExample` (drops zeros)."""
    x = np.asarray(x, dtype=np.float64)
    idx = np.flatnonzero(x)
    return SparseExample(idx.astype(np.int64), x[idx], label)


def one_hot(index: int, value: float = 1.0, label: int = 1) -> SparseExample:
    """A 1-sparse example — the encoding used by the stream-processing
    applications of Section 8 (one attribute / IP / bigram per example)."""
    return SparseExample(
        np.array([index], dtype=np.int64),
        np.array([value], dtype=np.float64),
        label,
    )
