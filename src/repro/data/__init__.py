"""Data substrate: sparse examples and synthetic stream generators.

The paper evaluates on six datasets (Table 1).  None of them can be
downloaded in this offline environment, so each is replaced by a
parametric generator that reproduces the statistical properties the
algorithms are sensitive to — feature-frequency skew, sparsity of the
discriminative signal, correlation (or anti-correlation) between feature
frequency and feature weight, and dimension much larger than the memory
budget.  See DESIGN.md Section 3 for the substitution rationale, and
:mod:`repro.data.datasets` for the per-dataset knobs.

Contents
--------
* :class:`~repro.data.sparse.SparseExample` — the (indices, values,
  label) triple flowing through every stream.
* :class:`~repro.data.batch.SparseBatch` /
  :func:`~repro.data.batch.iter_batches` — CSR mini-batches for the
  batched streaming engine.
* :func:`~repro.data.partition.partition_stream` — deterministic
  disjoint/exhaustive sharding for the parallel training subsystem.
* :mod:`~repro.data.synthetic` — the core Zipfian sparse-classification
  stream generator.
* :mod:`~repro.data.datasets` — RCV1-, URL- and KDDA-flavoured presets.
* :mod:`~repro.data.fec` — FEC-disbursements-like categorical outlier
  data (streaming explanation, Figs. 8-9).
* :mod:`~repro.data.network` — paired packet streams with planted
  relative deltoids (Fig. 10).
* :mod:`~repro.data.text` — Zipfian corpus with planted collocations
  (Table 3, Fig. 11).
"""

from repro.data.batch import SparseBatch, iter_batches
from repro.data.partition import partition_stream, shard_assignments
from repro.data.sparse import SparseExample, dense_to_sparse, sparse_dot
from repro.data.synthetic import SyntheticStream, zipf_probabilities

__all__ = [
    "SparseExample",
    "SparseBatch",
    "iter_batches",
    "partition_stream",
    "shard_assignments",
    "SyntheticStream",
    "dense_to_sparse",
    "sparse_dot",
    "zipf_probabilities",
]
