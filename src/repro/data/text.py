"""Zipfian text corpus with planted collocations (Section 8.3).

The streaming-PMI experiment needs a token stream whose bigram
distribution contains (a) very frequent pairs with PMI near zero (e.g.
", the" in the paper's Table 3 right panel), and (b) rarer pairs with
high PMI (collocations like "prime minister", "los angeles").

The generator produces a unigram-Zipf token stream and, with probability
``collocation_rate``, emits a planted collocation pair (two dedicated
tokens in sequence) instead of an independent token.  Because planted
pairs co-occur far more often than independence predicts, their PMI is
high; head-of-Zipf token pairs co-occur often but at close to the
product of their unigram rates, so their PMI is near zero — exactly the
contrast of Table 3.

Exact unigram and within-window bigram counts are tracked so that exact
PMIs (the reference values in Table 3 / Fig. 11) can be computed.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from math import log
from typing import Iterator

import numpy as np

from repro.data.synthetic import zipf_probabilities


def pair_id(u: int, v: int, vocab: int) -> int:
    """Stable feature identifier for the ordered token pair (u, v)."""
    return u * vocab + v


def unpair_id(pid: int, vocab: int) -> tuple[int, int]:
    """Invert :func:`pair_id`."""
    return pid // vocab, pid % vocab


@dataclass
class CooccurrenceCounts:
    """Exact unigram / bigram counts over a sliding window."""

    unigrams: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    bigrams: dict[tuple[int, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    n_tokens: int = 0
    n_pairs: int = 0

    def pmi(self, u: int, v: int, smoothing: float = 0.0) -> float:
        """Exact PMI(u, v) = log [ p(u,v) / (p(u) p(v)) ] from counts.

        Returns -inf if the pair was never observed (with smoothing=0).
        """
        c_uv = self.bigrams.get((u, v), 0) + smoothing
        if c_uv == 0 or self.n_pairs == 0:
            return float("-inf")
        c_u = self.unigrams.get(u, 0) + smoothing
        c_v = self.unigrams.get(v, 0) + smoothing
        if c_u == 0 or c_v == 0:
            return float("-inf")
        p_uv = c_uv / self.n_pairs
        p_u = c_u / self.n_tokens
        p_v = c_v / self.n_tokens
        return log(p_uv / (p_u * p_v))

    def pair_frequency(self, u: int, v: int) -> float:
        """Empirical within-window pair frequency p(u, v)."""
        if self.n_pairs == 0:
            return 0.0
        return self.bigrams.get((u, v), 0) / self.n_pairs


class CollocationCorpus:
    """Synthetic token stream with planted high-PMI collocations.

    Parameters
    ----------
    vocab:
        Unigram vocabulary size.
    n_collocations:
        Number of planted collocation pairs.  Each consumes two dedicated
        mid-frequency tokens.
    collocation_rate:
        Probability that the next emission is a collocation pair rather
        than an independent Zipf token.
    window:
        Sliding co-occurrence window size (the paper uses 5-6 tokens).
    skew:
        Zipf exponent of the background unigram law.
    seed:
        Reproducibility seed.
    """

    def __init__(
        self,
        vocab: int = 5_000,
        n_collocations: int = 50,
        collocation_rate: float = 0.05,
        window: int = 5,
        skew: float = 1.05,
        seed: int = 0,
    ):
        if vocab < 10:
            raise ValueError(f"vocab must be >= 10, got {vocab}")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if not 0 <= collocation_rate < 1:
            raise ValueError(
                f"collocation_rate must be in [0,1), got {collocation_rate}"
            )
        self.vocab = vocab
        self.window = window
        self.collocation_rate = collocation_rate
        self.seed = seed

        root = np.random.SeedSequence(seed)
        setup = np.random.Generator(np.random.PCG64(root.spawn(1)[0]))
        self._probs = zipf_probabilities(vocab, skew)

        # Dedicate mid-frequency tokens (ranks 10%-60%) to collocations.
        lo = int(0.10 * vocab)
        hi = max(int(0.60 * vocab), lo + 2 * n_collocations)
        hi = min(hi, vocab)
        # Clamp to the available band for small vocabularies.
        n_collocations = min(n_collocations, (hi - lo) // 2)
        picks = setup.choice(
            np.arange(lo, hi), size=2 * n_collocations, replace=False
        )
        self.collocations = [
            (int(picks[2 * i]), int(picks[2 * i + 1]))
            for i in range(n_collocations)
        ]
        # Collocations themselves follow a Zipf usage law: some planted
        # pairs are frequent (lower PMI: their tokens are common), some
        # rare (higher PMI) — giving Fig. 11 its frequency/PMI gradient
        # across sketch widths.
        if n_collocations > 0:
            self._collocation_probs = zipf_probabilities(n_collocations, 1.0)
        else:
            self._collocation_probs = None

        self.counts = CooccurrenceCounts()

    # ------------------------------------------------------------------
    def tokens(self, n: int, seed_offset: int = 0) -> Iterator[int]:
        """Yield approximately ``n`` tokens (collocations emit in pairs)."""
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence((self.seed, 131_071 + seed_offset)))
        )
        emitted = 0
        n_colloc = len(self.collocations)
        while emitted < n:
            if n_colloc and rng.random() < self.collocation_rate:
                pick = int(rng.choice(n_colloc, p=self._collocation_probs))
                u, v = self.collocations[pick]
                yield u
                yield v
                emitted += 2
            else:
                yield int(rng.choice(self.vocab, p=self._probs))
                emitted += 1

    def pairs(
        self, n_tokens: int, seed_offset: int = 0, count: bool = True
    ) -> Iterator[tuple[int, int]]:
        """Yield ordered within-window co-occurrence pairs.

        For each new token v and each of the ``window - 1`` preceding
        tokens u, yields (u, v).  With ``count=True`` (default), exact
        unigram/bigram counts are accumulated in :attr:`counts`.
        """
        history: list[int] = []
        for token in self.tokens(n_tokens, seed_offset=seed_offset):
            if count:
                self.counts.unigrams[token] += 1
                self.counts.n_tokens += 1
            for prev in history:
                if count:
                    self.counts.bigrams[(prev, token)] += 1
                    self.counts.n_pairs += 1
                yield prev, token
            history.append(token)
            if len(history) >= self.window:
                history.pop(0)

    def exact_pmi(self, u: int, v: int) -> float:
        """Exact PMI from the accumulated counts."""
        return self.counts.pmi(u, v)
