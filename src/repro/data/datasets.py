"""Preset synthetic stand-ins for the paper's benchmark datasets.

Table 1 of the paper lists three binary-classification benchmarks:

=====================  ==========  ==========  =========
Dataset                # Examples  # Features  Space(MB)
=====================  ==========  ==========  =========
Reuters RCV1           6.77e5      4.72e4      0.4
Malicious URLs         2.40e6      3.23e6      25.8
KDD Cup Algebra        8.41e6      2.02e7      161.8
=====================  ==========  ==========  =========

Since the real datasets are unavailable offline, each preset configures
:class:`repro.data.synthetic.SyntheticStream` to match the properties the
evaluated algorithms are actually sensitive to (DESIGN.md Section 3):

* **rcv1_like** — moderate dimension, dense-ish examples, signal planted
  in the frequency *head* so that frequent features are also
  discriminative (the paper finds Space Saving competitive on RCV1).
  A dense Laplace background weight (the paper stresses w* "may be a
  dense vector") makes classification accuracy budget-sensitive.
* **url_like** — much larger dimension, signal planted in the mid-tail
  so frequency and discriminativeness decouple (the paper finds Space
  Saving *underperforms* Probabilistic Truncation on URL).
* **kdda_like** — largest dimension, extremely sparse signal, low label
  noise (KDDA error rates in the paper sit near 0.13 for every method,
  i.e. the problem is hard and methods cluster tightly).

``scale`` shrinks the dimensions/default stream lengths uniformly so the
full benchmark suite runs in CI time; ``scale=1.0`` approximates the
paper's dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.synthetic import SyntheticStream

#: The number of examples the paper streams for each dataset.
PAPER_SIZES = {
    "rcv1": 677_000,
    "url": 2_400_000,
    "kdda": 8_410_000,
}

#: The feature dimensions the paper reports (Table 1).
PAPER_DIMS = {
    "rcv1": 47_200,
    "url": 3_230_000,
    "kdda": 20_200_000,
}


@dataclass
class DatasetSpec:
    """A named dataset preset: the generator plus a default stream length."""

    name: str
    stream: SyntheticStream
    default_n: int

    def examples(self, n: int | None = None, seed_offset: int = 0):
        """Yield ``n`` (default: the preset length) examples."""
        return self.stream.examples(n or self.default_n, seed_offset=seed_offset)


def rcv1_like(scale: float = 0.1, seed: int = 0) -> DatasetSpec:
    """RCV1-flavoured stream: head-planted signal, moderate dimension.

    At ``scale=1.0``: d = 47,200 and 100k examples by default (the paper
    streams 677k; the curves stabilize long before that).
    """
    d = max(int(47_200 * scale), 2_000)
    return DatasetSpec(
        name="rcv1_like",
        stream=SyntheticStream(
            d=d,
            n_signal=max(int(0.08 * d), 100),
            avg_nnz=50.0,
            skew=1.05,
            signal_rank_range=(0.0, 0.25),
            signal_scale=1.0,
            dense_scale=0.15,
            label_noise=0.02,
            seed=seed,
        ),
        default_n=max(int(100_000 * scale), 5_000),
    )


def url_like(scale: float = 0.02, seed: int = 0) -> DatasetSpec:
    """URL-flavoured stream: mid-tail signal, large dimension.

    The mid-tail placement decouples frequency from discriminativeness,
    reproducing the regime where the paper's Space Saving baseline falls
    behind Probabilistic Truncation (Fig. 3, middle panel).
    """
    d = max(int(3_230_000 * scale), 5_000)
    return DatasetSpec(
        name="url_like",
        stream=SyntheticStream(
            d=d,
            n_signal=max(int(0.05 * d), 100),
            avg_nnz=40.0,
            skew=1.15,
            signal_rank_range=(0.02, 0.3),
            signal_scale=1.5,
            dense_scale=0.1,
            label_noise=0.01,
            seed=seed,
        ),
        default_n=max(int(2_400_000 * scale * 0.02), 5_000),
    )


def kdda_like(scale: float = 0.003, seed: int = 0) -> DatasetSpec:
    """KDDA-flavoured stream: very high dimension, hard problem.

    High label noise keeps every method's error near a common floor, as
    in the paper's KDDA panel of Fig. 6 (0.130-0.145 for all methods).
    """
    d = max(int(20_200_000 * scale), 10_000)
    return DatasetSpec(
        name="kdda_like",
        stream=SyntheticStream(
            d=d,
            n_signal=max(int(0.02 * d), 150),
            avg_nnz=25.0,
            skew=1.1,
            signal_rank_range=(0.0, 0.3),
            signal_scale=0.6,
            dense_scale=0.1,
            label_noise=0.12,
            seed=seed,
        ),
        default_n=max(int(8_410_000 * scale * 0.002), 5_000),
    )


ALL_PRESETS = {
    "rcv1_like": rcv1_like,
    "url_like": url_like,
    "kdda_like": kdda_like,
}
