"""FEC-disbursements-like data for the streaming-explanation experiment.

The paper's Section 8.1 uses itemized disbursements from U.S. House and
Senate races (2010-2016): rows of categorical attributes (recipient,
category, state, ...) labelled *outlier* if the dollar amount is in the
top 20%.  For each row, a sequence of 1-sparse feature vectors is emitted
(one per observed attribute) so learned logistic-regression weights
correlate with per-attribute relative risk.

The synthetic generator plants a controlled joint distribution over
attributes x outlier status:

* each of ``n_fields`` categorical fields draws a value from a Zipfian
  vocabulary (attribute ids are globally unique across fields);
* some attribute values are *risky* — conditioned on them the outlier
  probability is boosted; some are *protective* — it is suppressed;
* crucially, the generator includes frequent-but-neutral values
  (relative risk near 1), reproducing Fig. 8's finding that pure
  heavy-hitter filtering wastes its budget on high-frequency, low-risk
  attributes.

Exact per-attribute positive/negative counts are tracked so that true
relative risks are available for evaluation without a second pass.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.data.sparse import SparseExample
from repro.data.synthetic import zipf_probabilities


@dataclass
class AttributeCounts:
    """Exact per-attribute occurrence counts split by label."""

    positive: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    negative: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    n_positive: int = 0
    n_negative: int = 0

    def record(self, attributes: np.ndarray, label: int) -> None:
        """Record one row's attributes under its outlier label."""
        bucket = self.positive if label == 1 else self.negative
        for a in attributes.tolist():
            bucket[a] += 1
        if label == 1:
            self.n_positive += 1
        else:
            self.n_negative += 1

    def relative_risk(self, attribute: int, smoothing: float = 0.5) -> float:
        """r_x = P(y=1 | x=1) / P(y=1 | x=0), with add-``smoothing``
        regularization so unseen cells stay finite."""
        pos_with = self.positive.get(attribute, 0)
        neg_with = self.negative.get(attribute, 0)
        pos_without = self.n_positive - pos_with
        neg_without = self.n_negative - neg_with
        p_with = (pos_with + smoothing) / (pos_with + neg_with + 2 * smoothing)
        p_without = (pos_without + smoothing) / (
            pos_without + neg_without + 2 * smoothing
        )
        return p_with / p_without

    def occurrences(self, attribute: int) -> int:
        """Total occurrences of an attribute across both classes."""
        return self.positive.get(attribute, 0) + self.negative.get(attribute, 0)

    def all_attributes(self) -> list[int]:
        """Every attribute observed at least once."""
        return list(set(self.positive) | set(self.negative))


class FECLikeStream:
    """Synthetic categorical-outlier stream in the shape of the FEC data.

    Parameters
    ----------
    n_fields:
        Categorical fields per row.
    values_per_field:
        Vocabulary size per field (total attribute dimension =
        ``n_fields * values_per_field``).
    outlier_rate:
        Base P(outlier) — the paper's setup labels the top-20% of
        disbursements as outliers, so 0.2.
    n_risky, n_protective:
        Number of planted high-risk / low-risk attribute values.
    risk_boost:
        Log-odds boost added per active risky attribute (and subtracted
        per protective one).
    skew:
        Zipf exponent of each field's value distribution; the planted
        risky/protective values are drawn from mid-ranked values so the
        head of the frequency distribution stays risk-neutral.
    seed:
        Reproducibility seed.
    """

    def __init__(
        self,
        n_fields: int = 8,
        values_per_field: int = 1_000,
        outlier_rate: float = 0.2,
        n_risky: int = 60,
        n_protective: int = 60,
        risk_boost: float = 1.6,
        skew: float = 1.1,
        seed: int = 0,
    ):
        if n_fields < 1:
            raise ValueError(f"n_fields must be >= 1, got {n_fields}")
        if not 0 < outlier_rate < 1:
            raise ValueError(f"outlier_rate must be in (0,1), got {outlier_rate}")
        self.n_fields = n_fields
        self.values_per_field = values_per_field
        self.d = n_fields * values_per_field
        self.outlier_rate = outlier_rate
        self.seed = seed

        root = np.random.SeedSequence(seed)
        setup = np.random.Generator(np.random.PCG64(root.spawn(1)[0]))
        self._field_probs = zipf_probabilities(values_per_field, skew)

        # Plant risky/protective attributes in the upper-mid frequency
        # band (ranks 1%-10%): frequent enough to accumulate meaningful
        # counts, but leaving the head of the distribution risk-neutral.
        lo = max(int(0.01 * values_per_field), 1)
        hi = max(int(0.10 * values_per_field), lo + n_risky + n_protective)
        hi = min(hi, values_per_field)
        band = hi - lo
        # Clamp planted counts to the available band (small vocabularies).
        if n_risky + n_protective > band:
            scale_down = band / (n_risky + n_protective)
            n_risky = max(int(n_risky * scale_down), 1)
            n_protective = max(min(int(n_protective * scale_down),
                                   band - n_risky), 0)
        self.log_odds = np.zeros(self.d, dtype=np.float64)
        picks = setup.choice(
            np.arange(lo, hi), size=n_risky + n_protective, replace=False
        )
        fields = setup.integers(0, n_fields, size=picks.size)
        attr_ids = fields * values_per_field + picks
        self.risky_attributes = attr_ids[:n_risky]
        self.protective_attributes = attr_ids[n_risky:]
        self.log_odds[self.risky_attributes] = risk_boost
        self.log_odds[self.protective_attributes] = -risk_boost

        self.counts = AttributeCounts()

    # ------------------------------------------------------------------
    def rows(self, n: int, seed_offset: int = 0) -> Iterator[tuple[np.ndarray, int]]:
        """Yield ``n`` (attribute-ids, outlier-label) rows."""
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence((self.seed, 104_729 + seed_offset)))
        )
        base_logit = float(np.log(self.outlier_rate / (1 - self.outlier_rate)))
        for _ in range(n):
            values = rng.choice(
                self.values_per_field,
                size=self.n_fields,
                replace=True,
                p=self._field_probs,
            )
            attrs = (
                np.arange(self.n_fields) * self.values_per_field + values
            ).astype(np.int64)
            logit = base_logit + float(self.log_odds[attrs].sum())
            p = 1.0 / (1.0 + np.exp(-logit))
            label = 1 if rng.random() < p else -1
            self.counts.record(attrs, label)
            yield attrs, label

    def examples(self, n_rows: int, seed_offset: int = 0) -> Iterator[SparseExample]:
        """Yield the paper's 1-sparse encoding: one example per attribute
        of each row, labelled by the row's outlier status (footnote 4)."""
        one = np.ones(1, dtype=np.float64)
        for attrs, label in self.rows(n_rows, seed_offset=seed_offset):
            for a in attrs.tolist():
                yield SparseExample(
                    np.array([a], dtype=np.int64), one.copy(), label
                )

    def true_relative_risks(self, attributes) -> np.ndarray:
        """Exact relative risks (from tracked counts) for attributes."""
        return np.array(
            [self.counts.relative_risk(int(a)) for a in attributes],
            dtype=np.float64,
        )
