"""Zipfian sparse binary-classification stream generator.

This is the workhorse behind the RCV1-, URL- and KDDA-flavoured datasets
(see :mod:`repro.data.datasets`).  The generative model:

1. Feature *frequencies* follow a Zipf law with exponent ``skew`` over a
   dimension-``d`` vocabulary — matching the heavy-tailed token / URL /
   interaction-feature statistics of the real datasets.
2. A sparse ground-truth weight vector ``w_true`` places ``n_signal``
   non-zero weights (Laplace-distributed magnitudes) at configurable
   frequency ranks.  ``signal_rank_range=(0, 0.01)`` plants the signal in
   the frequent head (frequency and discriminativeness correlated, as the
   paper observes on RCV1 where Space Saving is competitive);
   ``(0.01, 0.3)`` plants it in the mid-tail (frequency and
   discriminativeness *decoupled*, the regime where the paper finds
   frequent-feature heuristics underperform, as on URL).
3. Each example draws ``nnz ~ 1 + Poisson(avg_nnz - 1)`` distinct
   features from the Zipf law, with binary values, and a label sampled
   from the logistic model ``P(y=+1|x) = sigmoid(w_true . x + bias)``
   with optional label noise.

Exact per-feature occurrence counts and the ground-truth weights are
retained so that evaluation code can compute reference quantities
without a second pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.sparse import SparseExample


def zipf_probabilities(d: int, skew: float = 1.1) -> np.ndarray:
    """Normalized Zipf probability vector: p_i proportional to (i+1)^-skew."""
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    ranks = np.arange(1, d + 1, dtype=np.float64)
    p = ranks**-skew
    return p / p.sum()


def _sigmoid(z: np.ndarray | float) -> np.ndarray | float:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))


@dataclass
class StreamStats:
    """Summary statistics accumulated while a stream is generated."""

    n_examples: int = 0
    n_positive: int = 0
    total_nnz: int = 0

    @property
    def avg_nnz(self) -> float:
        """Mean number of non-zeros per generated example."""
        if self.n_examples == 0:
            return 0.0
        return self.total_nnz / self.n_examples


class SyntheticStream:
    """A reproducible synthetic sparse classification stream.

    Parameters
    ----------
    d:
        Feature dimension.
    n_signal:
        Number of non-zero ground-truth weights.
    avg_nnz:
        Mean non-zeros per example.
    skew:
        Zipf exponent of the feature-frequency law.
    signal_rank_range:
        ``(lo, hi)`` fractions of the frequency-ranked vocabulary from
        which signal features are drawn; controls the
        frequency/discriminativeness correlation.
    signal_scale:
        Laplace scale of the non-zero ground-truth weights.
    dense_scale:
        Laplace scale of a *dense* background weight on every feature
        (0 disables).  The paper stresses that the optimal classifier
        "may be a dense vector"; a dense tail is what makes classification
        accuracy budget-sensitive — id-based methods (truncation, frequent
        features) cannot represent the tail at all, while hashing-based
        methods capture it in aggregate (the Fig. 6 regime).
    label_noise:
        Probability of flipping each sampled label.
    bias:
        Intercept added to the logistic model's margin.
    seed:
        Root seed; identical parameters + seed reproduce the identical
        stream.
    shuffle_ids:
        If True (default), feature identifiers are a random permutation
        of frequency ranks, so feature id carries no frequency
        information (as in real hashed/indexed data).
    """

    def __init__(
        self,
        d: int = 20_000,
        n_signal: int = 200,
        avg_nnz: float = 40.0,
        skew: float = 1.1,
        signal_rank_range: tuple[float, float] = (0.0, 0.05),
        signal_scale: float = 1.5,
        dense_scale: float = 0.0,
        label_noise: float = 0.05,
        bias: float = 0.0,
        seed: int = 0,
        shuffle_ids: bool = True,
    ):
        if d < 2:
            raise ValueError(f"d must be >= 2, got {d}")
        if not 0 < n_signal <= d:
            raise ValueError(f"n_signal must be in (0, {d}], got {n_signal}")
        if avg_nnz < 1:
            raise ValueError(f"avg_nnz must be >= 1, got {avg_nnz}")
        lo, hi = signal_rank_range
        if not (0.0 <= lo < hi <= 1.0):
            raise ValueError(f"invalid signal_rank_range {signal_rank_range}")
        self.d = d
        self.n_signal = n_signal
        self.avg_nnz = avg_nnz
        self.skew = skew
        self.signal_rank_range = signal_rank_range
        self.dense_scale = dense_scale
        self.label_noise = label_noise
        self.bias = bias
        self.seed = seed

        root = np.random.SeedSequence(seed)
        setup_rng = np.random.Generator(np.random.PCG64(root.spawn(1)[0]))
        self._stream_seed = root.spawn(1)[0]

        # Frequency law over ranks, then map ranks -> feature ids.
        self._rank_probs = zipf_probabilities(d, skew)
        if shuffle_ids:
            self._rank_to_id = setup_rng.permutation(d).astype(np.int64)
        else:
            self._rank_to_id = np.arange(d, dtype=np.int64)

        # Plant the signal at the requested frequency ranks.
        lo_rank = int(lo * d)
        hi_rank = max(int(hi * d), lo_rank + n_signal)
        hi_rank = min(hi_rank, d)
        candidate_ranks = np.arange(lo_rank, hi_rank)
        signal_ranks = setup_rng.choice(
            candidate_ranks, size=n_signal, replace=False
        )
        magnitudes = setup_rng.laplace(0.0, signal_scale, size=n_signal)
        # Clip spike magnitudes to 2.5x the scale: unclipped Laplace
        # tails occasionally plant a handful of giant weights that alone
        # determine every label, collapsing the budget-sensitivity of
        # classification accuracy (and its seed-to-seed stability).
        magnitudes = np.sign(magnitudes) * np.minimum(
            np.abs(magnitudes), 2.5 * signal_scale
        )
        if dense_scale > 0.0:
            self.true_weights = setup_rng.laplace(0.0, dense_scale, size=d)
        else:
            self.true_weights = np.zeros(d, dtype=np.float64)
        self.true_weights[self._rank_to_id[signal_ranks]] = magnitudes

        # Expected per-feature occurrence probability (by id), exposed for
        # evaluation code that wants frequency/weight diagnostics.
        self.id_probs = np.zeros(d, dtype=np.float64)
        self.id_probs[self._rank_to_id] = self._rank_probs

        self.stats = StreamStats()

    # ------------------------------------------------------------------
    def examples(self, n: int, seed_offset: int = 0) -> Iterator[SparseExample]:
        """Yield ``n`` fresh examples.

        ``seed_offset`` selects an independent substream (e.g. a held-out
        evaluation set) without disturbing reproducibility of the default
        stream.
        """
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence((self.seed, 7_919 + seed_offset)))
        )
        d = self.d
        for _ in range(n):
            nnz = 1 + rng.poisson(max(self.avg_nnz - 1.0, 0.0))
            nnz = min(nnz, d)
            ranks = rng.choice(d, size=nnz, replace=True, p=self._rank_probs)
            ids = np.unique(self._rank_to_id[ranks])
            values = np.ones(ids.size, dtype=np.float64)
            margin = self.true_weights[ids] @ values + self.bias
            p_pos = _sigmoid(margin)
            y = 1 if rng.random() < p_pos else -1
            if self.label_noise > 0 and rng.random() < self.label_noise:
                y = -y
            self.stats.n_examples += 1
            self.stats.total_nnz += ids.size
            if y == 1:
                self.stats.n_positive += 1
            yield SparseExample(ids, values, y)

    def materialize(self, n: int, seed_offset: int = 0) -> list[SparseExample]:
        """Generate ``n`` examples into a list (for repeated passes)."""
        return list(self.examples(n, seed_offset=seed_offset))

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Dataset metadata in the shape of the paper's Table 1 rows."""
        return {
            "d": self.d,
            "n_signal": self.n_signal,
            "avg_nnz": self.avg_nnz,
            "skew": self.skew,
            "dense_space_mb": 4.0 * self.d / 2**20,
        }
