"""Mini-batches of sparse examples in CSR layout.

The per-example :class:`~repro.data.sparse.SparseExample` representation
is convenient but pays Python-object overhead for every example touched.
:class:`SparseBatch` concatenates a window of the stream into four flat
arrays — the classic CSR layout plus a label vector — so that the
batched update kernels (``fit_batch`` on every
:class:`~repro.learning.base.StreamingClassifier`) can hash, gather and
scatter whole batches with a constant number of NumPy calls.

A batch is a *view of stream order*: example ``i`` of the batch is the
``i``-th example of the underlying stream window, and the batched
kernels are written to reproduce the per-example update sequence
exactly (see ``tests/test_batched_equivalence.py``), so batching is a
throughput knob, not a semantics knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.data.sparse import SparseExample


@dataclass(frozen=True)
class SparseBatch:
    """A labelled window of a sparse stream in CSR layout.

    Attributes
    ----------
    indptr:
        int64 array of shape ``(n + 1,)``; example ``i`` owns the slice
        ``indices[indptr[i]:indptr[i + 1]]`` (and the same of
        ``values``).
    indices:
        int64 array of all examples' feature identifiers, concatenated
        in stream order.
    values:
        float64 array parallel to ``indices``.
    labels:
        int64 array of shape ``(n,)`` with entries in {-1, +1}.
    """

    indptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray
    labels: np.ndarray

    def __post_init__(self):
        indptr = np.atleast_1d(np.asarray(self.indptr, dtype=np.int64))
        indices = np.atleast_1d(np.asarray(self.indices, dtype=np.int64))
        values = np.atleast_1d(np.asarray(self.values, dtype=np.float64))
        labels = np.atleast_1d(np.asarray(self.labels, dtype=np.int64))
        if indices.size == 0:
            indices = indices.reshape(0)
        if values.size == 0:
            values = values.reshape(0)
        if indptr.ndim != 1 or indptr.size < 1:
            raise ValueError("indptr must be a 1-D array of length n + 1")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError(
                f"indptr must run from 0 to nnz={indices.size}, "
                f"got [{indptr[0]}, {indptr[-1]}]"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indices.shape != values.shape:
            raise ValueError(
                f"indices shape {indices.shape} != values shape {values.shape}"
            )
        if labels.size != indptr.size - 1:
            raise ValueError(
                f"{labels.size} labels for {indptr.size - 1} examples"
            )
        if labels.size and not np.all(np.isin(labels, (-1, 1))):
            raise ValueError("labels must be +1 or -1")
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "labels", labels)

    # ------------------------------------------------------------------
    @classmethod
    def from_examples(cls, examples: Sequence[SparseExample]) -> "SparseBatch":
        """Concatenate a sequence of examples into one batch."""
        examples = list(examples)
        if not examples:
            return cls(
                np.zeros(1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        counts = np.fromiter(
            (ex.indices.size for ex in examples),
            dtype=np.int64,
            count=len(examples),
        )
        indptr = np.zeros(len(examples) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.concatenate([ex.indices for ex in examples])
        values = np.concatenate([ex.values for ex in examples])
        labels = np.fromiter(
            (ex.label for ex in examples), dtype=np.int64, count=len(examples)
        )
        return cls(indptr, indices, values, labels)

    @classmethod
    def _trusted(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
        labels: np.ndarray,
    ) -> "SparseBatch":
        """Construct without re-validating the CSR invariants.

        For internal hot paths whose parts provably satisfy the
        contract already — e.g. the serving coalescer's flush merge,
        which concatenates previously validated batches.  All four
        arrays must carry the documented dtypes and shapes; nothing is
        checked here.
        """
        batch = object.__new__(cls)
        object.__setattr__(batch, "indptr", indptr)
        object.__setattr__(batch, "indices", indices)
        object.__setattr__(batch, "values", values)
        object.__setattr__(batch, "labels", labels)
        return batch

    @classmethod
    def from_pairs(
        cls,
        indices: np.ndarray,
        labels: np.ndarray,
        values: np.ndarray | None = None,
    ) -> "SparseBatch":
        """A batch of 1-sparse examples: one (feature, label) row each.

        The encoding used by the stream-processing applications of
        Section 8 (one attribute / IP / token pair per example).
        ``values`` defaults to all-ones.
        """
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        labels = np.atleast_1d(np.asarray(labels, dtype=np.int64))
        if values is None:
            values = np.ones(indices.size, dtype=np.float64)
        return cls(
            np.arange(indices.size + 1, dtype=np.int64),
            indices,
            values,
            labels,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.labels.size)

    @property
    def nnz(self) -> int:
        """Total stored entries across all examples."""
        return int(self.indices.size)

    def example(self, i: int) -> SparseExample:
        """Materialize example ``i`` back to the per-example type."""
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return SparseExample(
            self.indices[lo:hi], self.values[lo:hi], int(self.labels[i])
        )

    def __iter__(self) -> Iterator[SparseExample]:
        for i in range(len(self)):
            yield self.example(i)

    def windows(self, batch_size: int) -> Iterator["SparseBatch"]:
        """Split into consecutive sub-batches of ``batch_size`` examples.

        Sub-batches are CSR *views* of this batch's arrays (no copies of
        indices/values beyond the re-based indptr), preserving stream
        order — the cheap way to drive ``fit_batch`` over a shard that
        arrived as one large CSR block.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        n = len(self)
        for lo_ex in range(0, n, batch_size):
            hi_ex = min(lo_ex + batch_size, n)
            lo, hi = int(self.indptr[lo_ex]), int(self.indptr[hi_ex])
            yield SparseBatch(
                self.indptr[lo_ex : hi_ex + 1] - lo,
                self.indices[lo:hi],
                self.values[lo:hi],
                self.labels[lo_ex:hi_ex],
            )


def iter_batches(
    stream: Iterable[SparseExample], batch_size: int
) -> Iterator[SparseBatch]:
    """Chunk a stream of examples into :class:`SparseBatch` windows.

    Works on any iterable (lists, generators); the final batch may be
    smaller than ``batch_size``.  Stream order is preserved and every
    example appears in exactly one batch.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    it = iter(stream)
    while True:
        chunk = list(islice(it, batch_size))
        if not chunk:
            return
        yield SparseBatch.from_examples(chunk)
