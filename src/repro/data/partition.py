"""Deterministic stream partitioning for sharded training.

The parallel training subsystem (:mod:`repro.parallel`) splits one
logical stream across N workers.  The partitioner must be

* **disjoint and exhaustive** — every example lands in exactly one
  shard, so the union of shard streams is the original stream;
* **deterministic** — the same (stream, n_workers, seed) triple always
  produces the same shards, which is what makes merged-model runs
  reproducible and the merge-equivalence spec executable;
* **order-preserving within a shard** — each worker sees its examples
  in original stream order, so per-worker training is the ordinary
  sequential algorithm.

Assignment is an i.i.d. uniform draw per position from a PCG64 stream
keyed by ``(seed, n_workers)`` — statistically balanced shards
(n/k +- sqrt) with no dependence on example *content*, mirroring how a
stream router would spray traffic.  A round-robin mode is provided for
callers that need exactly-balanced shard sizes.
"""

from __future__ import annotations

from typing import Iterable, Literal

import numpy as np

from repro.data.batch import SparseBatch
from repro.data.sparse import SparseExample

__all__ = ["shard_assignments", "partition_stream", "partition_batch"]


def shard_assignments(
    n: int,
    n_workers: int,
    seed: int = 0,
    mode: Literal["uniform", "round_robin"] = "uniform",
) -> np.ndarray:
    """Shard id in ``[0, n_workers)`` for each of ``n`` stream positions.

    Deterministic in (n, n_workers, seed, mode); positions are assigned
    independently of example content.  ``"uniform"`` draws i.i.d.
    uniform shard ids (balanced in expectation); ``"round_robin"``
    cycles ``0..n_workers-1`` starting at a seed-derived offset
    (balanced exactly, sizes differ by at most 1).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if mode == "uniform":
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence((seed, n_workers, 0x5A)))
        )
        return rng.integers(0, n_workers, size=n, dtype=np.int64)
    if mode == "round_robin":
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence((seed, n_workers, 0x5B)))
        )
        offset = int(rng.integers(0, n_workers))
        return ((np.arange(n, dtype=np.int64) + offset) % n_workers)
    raise ValueError(f"unknown mode {mode!r}")


def partition_stream(
    stream: Iterable[SparseExample],
    n_workers: int,
    seed: int = 0,
    mode: Literal["uniform", "round_robin"] = "uniform",
) -> list[list[SparseExample]]:
    """Split a stream into ``n_workers`` disjoint, exhaustive shards.

    The stream is materialized (a single pass); shard ``j`` receives the
    examples whose positions were assigned ``j`` by
    :func:`shard_assignments`, in original stream order.  Identical
    inputs always produce identical shards.
    """
    examples = list(stream)
    assignment = shard_assignments(
        len(examples), n_workers, seed=seed, mode=mode
    )
    shards: list[list[SparseExample]] = [[] for _ in range(n_workers)]
    for example, shard in zip(examples, assignment.tolist()):
        shards[shard].append(example)
    return shards


def partition_batch(
    batch: SparseBatch,
    n_workers: int,
    seed: int = 0,
    mode: Literal["uniform", "round_robin"] = "uniform",
) -> list[SparseBatch]:
    """Split one CSR batch into ``n_workers`` disjoint CSR shards.

    Routes example *positions* through the same
    :func:`shard_assignments` as :func:`partition_stream`, so the two
    partitioners produce content-identical shards for the same
    (length, n_workers, seed, mode) — but this one stays entirely in
    CSR land (vectorized row gather, no per-example Python objects),
    which is what the 1-sparse application streams feed the parallel
    harness.
    """
    n = len(batch)
    assignment = shard_assignments(n, n_workers, seed=seed, mode=mode)
    counts = np.diff(batch.indptr)
    shards: list[SparseBatch] = []
    for worker in range(n_workers):
        positions = np.flatnonzero(assignment == worker)
        shard_counts = counts[positions]
        indptr = np.zeros(positions.size + 1, dtype=np.int64)
        np.cumsum(shard_counts, out=indptr[1:])
        total = int(indptr[-1])
        # Vectorized CSR row gather: entry e of the shard belongs to
        # shard-row r = searchsorted(...) — equivalently, offset within
        # its row plus that row's start in the source arrays.
        within = np.arange(total, dtype=np.int64) - np.repeat(
            indptr[:-1], shard_counts
        )
        entries = np.repeat(batch.indptr[positions], shard_counts) + within
        shards.append(
            SparseBatch(
                indptr,
                batch.indices[entries],
                batch.values[entries],
                batch.labels[positions],
            )
        )
    return shards
