"""Paired packet streams with planted relative deltoids (Section 8.2).

The paper's network-monitoring experiment uses a CAIDA OC48 trace: the
positive class is the stream of outbound source IPs, the negative class
the stream of inbound destination IPs, and the task is to find addresses
whose occurrence ratio ``phi(i) = n1(i) / n2(i)`` between the two streams
is large (relative deltoids).

The synthetic trace draws addresses from a Zipfian popularity law shared
by both directions, then *tilts* a planted subset: deltoid addresses are
``ratio`` times more likely in the outbound stream than inbound.  Exact
per-address counts for both directions are tracked so reference ratios
(the ground truth of Fig. 10's recall metric) are free.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.data.sparse import SparseExample
from repro.data.synthetic import zipf_probabilities


@dataclass
class DirectionalCounts:
    """Exact per-address counts for the two directions."""

    outbound: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    inbound: dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def ratio(self, address: int, smoothing: float = 1.0) -> float:
        """(n_out + smoothing) / (n_in + smoothing) — the phi of §8.2."""
        return (self.outbound.get(address, 0) + smoothing) / (
            self.inbound.get(address, 0) + smoothing
        )

    def addresses(self) -> list[int]:
        """Every address seen in either direction."""
        return list(set(self.outbound) | set(self.inbound))

    def addresses_above(self, log_ratio: float) -> list[int]:
        """Addresses with |log ratio| >= ``log_ratio`` (either direction)."""
        out = []
        for a in self.addresses():
            r = self.ratio(a)
            if abs(np.log(r)) >= log_ratio:
                out.append(a)
        return out


class PacketTrace:
    """Synthetic paired packet streams.

    Parameters
    ----------
    n_addresses:
        Address-space size (the paper's trace has ~126K addresses).
    n_deltoids:
        Number of planted high-ratio addresses.
    ratio:
        The planted outbound:inbound tilt for deltoid addresses (half
        are tilted outbound, half inbound, so both signs occur).
    skew:
        Zipf exponent of baseline address popularity.
    seed:
        Reproducibility seed.
    """

    def __init__(
        self,
        n_addresses: int = 50_000,
        n_deltoids: int = 200,
        ratio: float = 512.0,
        skew: float = 1.05,
        seed: int = 0,
    ):
        if n_addresses < 2:
            raise ValueError(f"n_addresses must be >= 2, got {n_addresses}")
        if ratio <= 1:
            raise ValueError(f"ratio must be > 1, got {ratio}")
        self.n_addresses = n_addresses
        self.n_deltoids = n_deltoids
        self.ratio = ratio
        self.seed = seed

        root = np.random.SeedSequence(seed)
        setup = np.random.Generator(np.random.PCG64(root.spawn(1)[0]))
        base = zipf_probabilities(n_addresses, skew)
        # Randomize which addresses are popular.
        perm = setup.permutation(n_addresses)
        base = base[perm]

        # Tilt planted deltoids *symmetrically*: multiply one direction
        # by sqrt(ratio) and divide the other, so the planted addresses
        # keep their overall popularity (they do not become trivially
        # frequent — the property that makes Fig. 10 non-trivial) while
        # their directional ratio is `ratio`.  Half tilt outbound, half
        # inbound, so both signs occur.
        order = np.argsort(-base)
        band = order[int(0.02 * n_addresses) : int(0.3 * n_addresses)]
        picks = setup.choice(band, size=min(n_deltoids, band.size), replace=False)
        self.deltoid_addresses = picks.astype(np.int64)
        half = picks.size // 2
        out_p = base.copy()
        in_p = base.copy()
        tilt = float(np.sqrt(ratio))
        out_p[picks[:half]] *= tilt
        in_p[picks[:half]] /= tilt
        out_p[picks[half:]] /= tilt
        in_p[picks[half:]] *= tilt
        self._out_probs = out_p / out_p.sum()
        self._in_probs = in_p / in_p.sum()

        self.counts = DirectionalCounts()

    # ------------------------------------------------------------------
    def packets(
        self, n: int, seed_offset: int = 0
    ) -> Iterator[tuple[int, int]]:
        """Yield ``n`` (address, direction) pairs, direction +1=outbound.

        Directions alternate stochastically (fair coin), modelling the
        concurrent observation of both links.
        """
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence((self.seed, 65_537 + seed_offset)))
        )
        # Draw in blocks for speed.
        block = 4_096
        remaining = n
        while remaining > 0:
            m = min(block, remaining)
            directions = rng.random(m) < 0.5
            outs = rng.choice(self.n_addresses, size=m, p=self._out_probs)
            ins = rng.choice(self.n_addresses, size=m, p=self._in_probs)
            for is_out, a_out, a_in in zip(
                directions.tolist(), outs.tolist(), ins.tolist()
            ):
                if is_out:
                    self.counts.outbound[a_out] += 1
                    yield a_out, 1
                else:
                    self.counts.inbound[a_in] += 1
                    yield a_in, -1
            remaining -= m

    def examples(self, n: int, seed_offset: int = 0) -> Iterator[SparseExample]:
        """The classifier encoding: 1-sparse examples, label = direction."""
        for address, direction in self.packets(n, seed_offset=seed_offset):
            yield SparseExample(
                np.array([address], dtype=np.int64),
                np.ones(1, dtype=np.float64),
                direction,
            )
