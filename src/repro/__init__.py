"""repro — a reproduction of "Sketching Linear Classifiers over Data
Streams" (Tai, Sharan, Bailis & Valiant, SIGMOD 2018).

The library provides:

* the **Weight-Median Sketch** (:class:`~repro.core.wm_sketch.WMSketch`)
  and **Active-Set Weight-Median Sketch**
  (:class:`~repro.core.awm_sketch.AWMSketch`) — memory-budgeted online
  linear classifiers supporting recovery of the most heavily-weighted
  features;
* every baseline the paper evaluates (truncation, frequent-features,
  feature hashing, unconstrained logistic regression);
* the classical sketch substrate (Count-Sketch, Count-Min, Space Saving,
  reservoirs), vectorized hashing, and an indexed top-K heap;
* the three Section 8 applications (streaming explanation, relative
  deltoids, streaming PMI);
* synthetic stand-ins for the six evaluation datasets, an evaluation
  harness, and benchmark drivers regenerating every table and figure.

Quickstart
----------

>>> import numpy as np
>>> from repro import AWMSketch, SparseExample
>>> clf = AWMSketch(width=1024, depth=1, heap_capacity=512, lambda_=1e-6)
>>> x = SparseExample(np.array([3, 17, 42]), np.ones(3), label=1)
>>> clf.update(x)
>>> clf.predict(x)
1
>>> len(clf.top_weights(2)) <= 2
True
"""

from repro.core import (
    AWMSketch,
    MulticlassSketch,
    SketchConfig,
    WMSketch,
    default_awm_config,
    default_wm_config,
    enumerate_sketch_configs,
    theorem1_sizing,
    theorem2_sample_size,
)
from repro.data.sparse import SparseExample
from repro.learning import (
    CountMinFrequent,
    FeatureHashing,
    LogisticLoss,
    OnlineErrorTracker,
    ProbabilisticTruncation,
    SimpleTruncation,
    SmoothedHingeLoss,
    SpaceSavingFrequent,
    UncompressedClassifier,
    run_stream,
)
from repro.learning.adagrad import AdaGradAWMSketch, AdaGradFeatureHashing
from repro.parallel import (
    ParallelHarness,
    fit_stream_pipelined,
    train_sharded,
)
from repro.data.partition import partition_stream
from repro.kernels import (
    available_backends,
    get_backend,
    set_backend,
)
from repro.sketch import CountMinSketch, CountSketch, SpaceSaving

__version__ = "1.0.0"

__all__ = [
    "WMSketch",
    "AWMSketch",
    "MulticlassSketch",
    "SparseExample",
    "SketchConfig",
    "default_awm_config",
    "default_wm_config",
    "enumerate_sketch_configs",
    "theorem1_sizing",
    "theorem2_sample_size",
    "UncompressedClassifier",
    "FeatureHashing",
    "SimpleTruncation",
    "ProbabilisticTruncation",
    "SpaceSavingFrequent",
    "CountMinFrequent",
    "LogisticLoss",
    "SmoothedHingeLoss",
    "OnlineErrorTracker",
    "run_stream",
    "AdaGradFeatureHashing",
    "AdaGradAWMSketch",
    "ParallelHarness",
    "train_sharded",
    "fit_stream_pipelined",
    "partition_stream",
    "available_backends",
    "get_backend",
    "set_backend",
    "CountSketch",
    "CountMinSketch",
    "SpaceSaving",
    "__version__",
]
