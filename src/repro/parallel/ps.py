"""Stale-synchronous parameter-server loop with O(dirty) delta sync.

PR 2's harness merges worker sketches **once**, after every shard is
fully consumed — workers never see each other's updates, and the
driver never has a servable model until the end.  This module upgrades
that to a live loop: the driver owns the global model, workers train
disjoint shards and periodically **push** O(dirty) deltas
(:mod:`repro.parallel.delta`) and **pull** the merged state back,
under a stale-synchronous barrier with a bounded-staleness knob ``s``.

Roles
-----
:class:`PSWorker`
    One shard-bound replica.  Trains ``sync_every``-example rounds
    through the batched kernels, encodes its dirty chunks + top-K
    promotion log into a :class:`~repro.parallel.delta.PushDelta`, and
    rebuilds itself as a bit-exact replica of the driver on every pull
    (raw chunk bits + scale copied; heap re-estimated against the
    merged table, mirroring the one-shot merge's re-promotion).
:class:`ParameterServer`
    The driver.  Applies pushes to the global model
    (``G <- delta * G + U``: a lazy-scale decay plus chunk adds — the
    exact sum-merge of PR 2, replayed incrementally), folds promotion
    logs by re-estimating the logged keys against the merged table,
    sum-merges worker telemetry deltas into the fleet registry, and
    tracks **per-worker pull bitmaps** (the OR of all chunks changed
    since that worker's last pull) so pulls ship only what the worker
    does not already have.
:class:`PSHarness`
    Deterministic in-process scheduler.  Workers advance round by
    round under the SSP invariant — a worker may run round ``r`` only
    while ``r <= min_round + s`` — with relative ``speeds`` modelling
    heterogeneous hardware; the fastest eligible worker (modelled
    completion time, ties by id) goes next, so every run with the same
    inputs replays the same interleaving.  ``s = 0`` is bulk-synchronous:
    everyone pushes and pulls every round, and in the data-linear
    regime the final table is **bit-identical** to single-stream
    training (``tests/test_ps.py``); ``s > 0`` trades freshness for
    fewer pulls (one every ``s + 1`` rounds), with divergence bounded
    by the decayed mass of the examples a stale worker has not yet
    seen.

Correctness sketch
------------------
Linearity does the heavy lifting, exactly as in the one-shot merge:
each push satisfies ``alpha*raw == decay*(pushed-at-sync state) + U``
per chunk, so the driver's scaled table is always the left-to-right
sum of every update each worker has pushed, each decayed by the decays
pushed after it — the same associativity `sum_merge_scaled_tables`
relies on.  Pulls copy raw bits + scale, so a pulled worker *is* the
driver (induction over changed-chunk tracking); its next push
therefore never re-ships driver state, only its own new updates.

Everything here is single-process by design (like
``ParallelHarness(n_workers=1)``): the protocol and its costs — delta
bytes, dirty fractions, staleness, round-trip spans — are measured
for real (``BENCH_ps.json``), while scheduling is modelled, keeping
every test deterministic.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Sequence

import numpy as np

from repro.data.batch import SparseBatch
from repro.data.partition import partition_batch
from repro.heap.topk import TopKStore
from repro.parallel.delta import (
    PullDelta,
    PushDelta,
    SyncPoint,
    apply_pull,
    apply_push,
    encode_pull,
    encode_push,
    full_table_bytes,
)
from repro.serving.snapshot import SnapshotManager
from repro.telemetry import MetricsRegistry, merge_snapshots, trace

__all__ = ["PSWorker", "ParameterServer", "PSHarness"]


def _check_delta_capable(model) -> None:
    if not getattr(model, "ps_delta_sync", False):
        raise TypeError(
            f"{type(model).__name__} does not support parameter-server "
            f"delta sync (needs ps_delta_sync=True: full state must be "
            f"recoverable from raw table chunks + scale; use the "
            f"one-shot ParallelHarness merge instead)"
        )


class PSWorker:
    """One shard-bound worker replica (driver-side object; the state it
    ships is what a remote process would ship)."""

    def __init__(
        self,
        worker_id: int,
        model,
        shard: "SparseBatch | Sequence",
        *,
        sync_every: int = 256,
        batch_size: int = 64,
    ):
        _check_delta_capable(model)
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1, got {sync_every}")
        self.worker_id = worker_id
        self.model = model
        self.batch_size = int(batch_size)
        if not isinstance(shard, SparseBatch):
            shard = SparseBatch.from_examples(list(shard))
        self._round_windows = list(shard.windows(sync_every))
        self.n_rounds = len(self._round_windows)
        self.rounds_done = 0
        self.last_pull_round = 0
        self.train_seconds = 0.0
        #: Worker-side codec wall (encode_push / apply_pull): runs on
        #: the worker's own core in a real deployment, so it belongs to
        #: the parallel track of the modeled critical path, not the
        #: serialized driver track.
        self.sync_seconds = 0.0
        self._round_examples = 0
        # A fresh model is all-dirty by construction; this worker is a
        # bit-exact replica of the (identically fresh) global model, so
        # nothing has diverged yet and the first push should ship only
        # what the first round touches.
        model._dirty[:] = False
        self.sync = SyncPoint(model)
        if model.heap is not None:
            model.heap.enable_promo_log()
        #: Worker-local telemetry, shipped as additive deltas with every
        #: push and sum-merged into the driver registry (counters and
        #: histograms only — levels would double-count under sum-merge).
        self.registry = MetricsRegistry()
        self._m_examples = self.registry.counter("ps.worker.examples")
        self._m_batches = self.registry.counter("ps.worker.batches")
        self._m_rounds = self.registry.counter("ps.worker.rounds")
        self._m_train_seconds = self.registry.histogram(
            "ps.worker.round_seconds"
        )
        self._metrics_mark = self.registry.snapshot()

    def train_round(self) -> tuple[float, int]:
        """Train the next ``sync_every``-example round; returns
        (wall seconds, examples trained)."""
        window = self._round_windows[self.rounds_done]
        n_batches = 0
        t0 = perf_counter()
        for sub in window.windows(self.batch_size):
            self.model.fit_batch(sub)
            n_batches += 1
        dt = perf_counter() - t0
        n = len(window)
        self.train_seconds += dt
        self._round_examples = n
        self._m_examples.inc(n)
        self._m_batches.inc(n_batches)
        self._m_rounds.inc()
        self._m_train_seconds.record(dt)
        return dt, n

    def encode_push(self) -> tuple[PushDelta, dict]:
        """Encode everything learned since the last sync point.

        Returns the wire delta plus this worker's additive telemetry
        delta (sum-merged into the driver registry on apply).  Advances
        the round counter: a round is *complete* once its delta exists.
        """
        heap = self.model.heap
        promo = heap.drain_promo_log() if heap is not None else ()
        delta = encode_push(
            self.model,
            self.sync,
            promo_keys=promo,
            n_examples=self._round_examples,
            worker_id=self.worker_id,
            round_id=self.rounds_done,
        )
        self.rounds_done += 1
        self._round_examples = 0
        metrics_delta = self.registry.delta(self._metrics_mark)
        self._metrics_mark = self.registry.snapshot()
        return delta, metrics_delta

    def apply_pull(self, pull: PullDelta) -> None:
        """Become a bit-exact replica of the driver's encoded state.

        Called push-first by the harness, so at entry the worker's raw
        bits equal its sync base everywhere; the pull overwrites only
        the shipped chunks, and re-anchoring the sync point is O(pull)
        — scatter the same chunks into the base — not O(table).
        """
        apply_pull(self.model, pull)
        self.model.scatter_chunks(
            pull.chunk_ids, pull.chunks, out=self.sync.base_raw
        )
        self.sync.scale = pull.scale
        self.sync.fold_log = pull.fold_log
        self.model._dirty[:] = False
        self.last_pull_round = self.rounds_done
        heap = self.model.heap
        if heap is not None:
            # Re-estimate the tracked set against the merged table —
            # the same re-promotion the one-shot merge performs.  The
            # admissions this logs are driver-derived (every candidate
            # reached the driver through an earlier push's promo log),
            # so drain them: the next push ships only *new* promotions.
            candidates = {k for k, _ in heap.items()}
            fresh = TopKStore(heap.capacity, backend=self.model.backend)
            fresh.enable_promo_log()
            self.model.heap = fresh
            self.model._repromote(
                fresh, candidates, self.model.estimate_weights
            )
            fresh.drain_promo_log()

    def residual_metrics(self) -> dict:
        """Telemetry accrued since the last push (read-only peek —
        does not advance the shipping mark)."""
        return self.registry.delta(self._metrics_mark)


class ParameterServer:
    """The driver: global model + per-worker pull bitmaps."""

    def __init__(self, model, n_workers: int, *,
                 registry: MetricsRegistry | None = None):
        _check_delta_capable(model)
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.model = model
        self.n_workers = int(n_workers)
        #: Row ``i`` ORs every chunk changed since worker ``i``'s last
        #: pull — by its own pushes (it must see merged contributions,
        #: not its raw local ones), by other workers', or by a renorm
        #: fold (which rewrites all raw bits, so the row saturates).
        self._pull_dirty = np.zeros(
            (self.n_workers, model._n_chunks()), dtype=bool
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_push_count = self.registry.counter("ps.push.count")
        self._m_push_bytes = self.registry.counter("ps.push.delta_bytes")
        self._m_push_full_bytes = self.registry.counter(
            "ps.push.full_table_bytes"
        )
        self._m_push_chunks = self.registry.counter("ps.push.chunks")
        self._m_dirty_fraction = self.registry.histogram(
            "ps.push.dirty_fraction", lo=1e-6, hi=2.0
        )
        self._m_promo_keys = self.registry.counter("ps.promo.keys")
        self._m_promo_admitted = self.registry.counter("ps.promo.admitted")
        self._m_folds = self.registry.counter("ps.fold.count")
        self._m_pull_count = self.registry.counter("ps.pull.count")
        self._m_pull_bytes = self.registry.counter("ps.pull.bytes")
        self._m_examples = self.registry.counter("ps.examples")

    def apply_push(self, delta: PushDelta,
                   metrics_delta: dict | None = None) -> None:
        """Fold one worker's delta into the global model."""
        with trace.span("ps.apply_push", worker=delta.worker_id,
                        round=delta.round_id):
            folded = apply_push(self.model, delta)
            if folded:
                self._m_folds.inc()
                self._pull_dirty[:, :] = True
            else:
                self._pull_dirty[:, delta.chunk_ids] = True
            heap = self.model.heap
            if heap is not None and delta.promo_keys.size:
                # Fold the promotion log: re-estimate the keys the
                # worker admitted against the *merged* table and let
                # the heap's own admission rule keep the heaviest.
                uniq = np.unique(delta.promo_keys)
                admitted = heap.fold_delta(
                    uniq, self.model.estimate_weights(uniq)
                )
                self._m_promo_keys.inc(int(uniq.size))
                self._m_promo_admitted.inc(int(admitted))
        self._m_push_count.inc()
        self._m_push_bytes.inc(delta.nbytes)
        self._m_push_full_bytes.inc(full_table_bytes(self.model))
        self._m_push_chunks.inc(int(delta.chunk_ids.size))
        self._m_dirty_fraction.record(
            delta.chunk_ids.size / max(1, delta.n_chunks)
        )
        self._m_examples.inc(delta.n_examples)
        if metrics_delta is not None:
            self.registry.merge_snapshot(metrics_delta)

    def encode_pull(self, worker_id: int) -> PullDelta:
        """Encode the chunks ``worker_id`` has not seen since its last
        pull, and clear its bitmap."""
        with trace.span("ps.encode_pull", worker=worker_id):
            row = self._pull_dirty[worker_id]
            chunk_ids = np.flatnonzero(row)
            pull = encode_pull(self.model, chunk_ids)
            row[:] = False
        self._m_pull_count.inc()
        self._m_pull_bytes.inc(pull.nbytes)
        return pull


class PSHarness:
    """Partition -> SSP loop -> served snapshots, behind one call.

    Parameters
    ----------
    factory / factory_kwargs:
        Model constructor for the driver and every worker (identical
        kwargs — mergeability requires identical hashing seeds).  Must
        build a ``ps_delta_sync`` model (the WM-Sketch).
    n_workers:
        Shard count.
    staleness:
        The SSP bound ``s``: a worker may run round ``r`` only while
        ``r <= min_round + s``, and pulls the merged state once every
        ``s + 1`` rounds.  ``0`` is bulk-synchronous.
    sync_every:
        Examples per round (between pushes) per worker.
    batch_size:
        Mini-batch size inside a round.
    speeds:
        Relative worker speeds for the modelled schedule (default all
        equal).  With unequal speeds and ``s`` small, fast workers hit
        the barrier and block — counted in ``ps.ssp.blocked``.
    publish_every:
        Publish a serving snapshot every N pushes (0 disables the
        :class:`~repro.serving.snapshot.SnapshotManager`); a final
        publish always lands after the loop so the served model is the
        fully merged one.
    """

    def __init__(
        self,
        factory: Callable[..., Any],
        factory_kwargs: dict[str, Any] | None = None,
        *,
        n_workers: int = 4,
        staleness: int = 0,
        sync_every: int = 256,
        batch_size: int = 64,
        seed: int = 0,
        speeds: Sequence[float] | None = None,
        publish_every: int = 1,
        registry: MetricsRegistry | None = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness}")
        if speeds is not None:
            speeds = [float(v) for v in speeds]
            if len(speeds) != n_workers:
                raise ValueError(
                    f"speeds has {len(speeds)} entries for "
                    f"{n_workers} workers"
                )
            if any(v <= 0 for v in speeds):
                raise ValueError("speeds must be positive")
        self.factory = factory
        self.factory_kwargs = dict(factory_kwargs or {})
        self.n_workers = int(n_workers)
        self.staleness = int(staleness)
        self.sync_every = int(sync_every)
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self.speeds = speeds or [1.0] * self.n_workers
        self.publish_every = int(publish_every)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_staleness = self.registry.histogram(
            "ps.staleness", lo=0.5, hi=128.0, buckets_per_decade=12
        )
        self._m_blocked = self.registry.counter("ps.ssp.blocked")
        self._m_publishes = self.registry.counter("ps.publish.count")
        self.model = None
        self.server: ParameterServer | None = None
        self.manager: SnapshotManager | None = None
        self.workers: list[PSWorker] = []
        #: One row per (worker, round) sync event, in schedule order —
        #: the raw material for ``BENCH_ps.json``.
        self.history: list[dict] = []
        #: Wall seconds of driver-side work (applying pushes, encoding
        #: pulls, publishing snapshots), serialized on the driver in
        #: the modelled schedule; the worker-side codec halves live in
        #: each worker's ``sync_seconds``.
        self.driver_seconds = 0.0

    def fit(self, examples) -> Any:
        """Run the PS loop over ``examples``; returns the global model."""
        batch = (
            examples if isinstance(examples, SparseBatch)
            else SparseBatch.from_examples(list(examples))
        )
        shards = partition_batch(batch, self.n_workers, seed=self.seed)
        model = self.factory(**self.factory_kwargs)
        _check_delta_capable(model)
        self.model = model
        self.server = ParameterServer(
            model, self.n_workers, registry=self.registry
        )
        # The manager's construction publishes version 0 (a full
        # rebase), so every later publish is O(chunks dirtied by
        # pushes) — the driver model's own bitmap, distinct from the
        # per-worker pull bitmaps.
        self.manager = (
            SnapshotManager(model, registry=self.registry)
            if self.publish_every > 0 else None
        )
        self.workers = [
            PSWorker(
                i,
                self.factory(**self.factory_kwargs),
                shards[i],
                sync_every=self.sync_every,
                batch_size=self.batch_size,
            )
            for i in range(self.n_workers)
        ]
        self.history = []
        self.driver_seconds = 0.0
        s = self.staleness
        active = [i for i in range(self.n_workers)
                  if self.workers[i].n_rounds > 0]
        pushes_since_publish = 0

        def modeled_finish(i: int) -> float:
            # Completion time of worker i's next round on its own core,
            # under constant per-round cost 1/speed.
            return (self.workers[i].rounds_done + 1) / self.speeds[i]

        while active:
            min_round = min(self.workers[i].rounds_done for i in active)
            preferred = min(active, key=lambda i: (modeled_finish(i), i))
            eligible = [
                i for i in active
                if self.workers[i].rounds_done <= min_round + s
            ]
            chosen = min(eligible, key=lambda i: (modeled_finish(i), i))
            if chosen != preferred:
                # The modelled-fastest worker is barred by the SSP
                # bound: a real deployment would stall it here.
                self._m_blocked.inc()
            worker = self.workers[chosen]
            stale = worker.rounds_done - min_round
            self._m_staleness.record(stale)
            with trace.span("ps.round", worker=chosen,
                            round=worker.rounds_done):
                train_dt, n_ex = worker.train_round()
                t0 = perf_counter()
                delta, metrics_delta = worker.encode_push()
                t1 = perf_counter()
                self.server.apply_push(delta, metrics_delta)
                t2 = perf_counter()
                sync_dt = t2 - t0
            worker.sync_seconds += t1 - t0
            self.driver_seconds += t2 - t1
            row = {
                "worker": chosen,
                "round": worker.rounds_done,
                "examples": n_ex,
                "staleness": stale,
                "train_seconds": train_dt,
                "sync_seconds": sync_dt,
                "push_bytes": delta.nbytes,
                "push_chunks": int(delta.chunk_ids.size),
                "pulled": False,
                "pull_bytes": 0,
            }
            if worker.rounds_done >= worker.n_rounds:
                active.remove(chosen)
            elif worker.rounds_done - worker.last_pull_round > s:
                # Pull cadence: every s+1 rounds (every round at s=0).
                t0 = perf_counter()
                pull = self.server.encode_pull(chosen)
                t1 = perf_counter()
                worker.apply_pull(pull)
                self.driver_seconds += t1 - t0
                worker.sync_seconds += perf_counter() - t1
                row["pulled"] = True
                row["pull_bytes"] = pull.nbytes
            self.history.append(row)
            pushes_since_publish += 1
            if (self.manager is not None
                    and pushes_since_publish >= self.publish_every):
                t0 = perf_counter()
                self.manager.publish()
                self.driver_seconds += perf_counter() - t0
                self._m_publishes.inc()
                pushes_since_publish = 0
        heap = model.heap
        if heap is not None:
            # Fold-time promotion estimates go stale as later pushes
            # land; re-score the tracked set against the final table —
            # the same re-promotion the one-shot merge ends with.
            candidates = {k for k, _ in heap.items()}
            fresh = TopKStore(heap.capacity, backend=model.backend)
            model.heap = fresh
            model._repromote(fresh, candidates, model.estimate_weights)
        if self.manager is not None:
            # Always land a final snapshot: the served model must be the
            # fully merged, finally re-estimated one.
            self.manager.publish()
            self._m_publishes.inc()
        return model

    # -- observability ---------------------------------------------------
    def stats(self) -> dict:
        """One fleet-wide telemetry cut: the driver registry (which
        already holds every pushed worker delta) plus each worker's
        since-last-push residual."""
        return merge_snapshots(
            self.registry.snapshot(),
            *[w.residual_metrics() for w in self.workers],
        )

    def modeled_wall_seconds(self) -> float:
        """Modelled critical path: each worker's training + codec work
        runs in parallel on its own core (the slowest binds); driver
        work — applying pushes, encoding pulls, publishing — is
        serialized."""
        slowest = max(
            (w.train_seconds + w.sync_seconds for w in self.workers),
            default=0.0,
        )
        return slowest + self.driver_seconds

    def delta_bytes_ratio(self) -> float:
        """Headline: full-table sync bytes / actual delta bytes, summed
        over every push."""
        snap = self.registry.snapshot()
        pushed = snap["counters"].get("ps.push.delta_bytes", 0)
        full = snap["counters"].get("ps.push.full_table_bytes", 0)
        return full / pushed if pushed else float("inf")
