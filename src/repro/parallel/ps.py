"""Stale-synchronous parameter-server loop with O(dirty) delta sync.

PR 2's harness merges worker sketches **once**, after every shard is
fully consumed — workers never see each other's updates, and the
driver never has a servable model until the end.  This module upgrades
that to a live loop: the driver owns the global model, workers train
disjoint shards and periodically **push** O(dirty) deltas
(:mod:`repro.parallel.delta`) and **pull** the merged state back,
under a stale-synchronous barrier with a bounded-staleness knob ``s``.

Roles
-----
:class:`PSWorker`
    One shard-bound replica.  Trains ``sync_every``-example rounds
    through the batched kernels, encodes its dirty chunks + top-K
    promotion log into a :class:`~repro.parallel.delta.PushDelta`, and
    rebuilds itself as a bit-exact replica of the driver on every pull
    (raw chunk bits + scale copied; heap re-estimated against the
    merged table, mirroring the one-shot merge's re-promotion).
:class:`ParameterServer`
    The driver.  Applies pushes to the global model
    (``G <- delta * G + U``: a lazy-scale decay plus chunk adds — the
    exact sum-merge of PR 2, replayed incrementally), folds promotion
    logs by re-estimating the logged keys against the merged table,
    sum-merges worker telemetry deltas into the fleet registry, and
    tracks **per-worker pull bitmaps** (the OR of all chunks changed
    since that worker's last pull) so pulls ship only what the worker
    does not already have.
:class:`PSHarness`
    Deterministic in-process scheduler.  Workers advance round by
    round under the SSP invariant — a worker may run round ``r`` only
    while ``r <= min_round + s`` — with relative ``speeds`` modelling
    heterogeneous hardware; the fastest eligible worker (modelled
    completion time, ties by id) goes next, so every run with the same
    inputs replays the same interleaving.  ``s = 0`` is bulk-synchronous:
    everyone pushes and pulls every round, and in the data-linear
    regime the final table is **bit-identical** to single-stream
    training (``tests/test_ps.py``); ``s > 0`` trades freshness for
    fewer pulls (one every ``s + 1`` rounds), with divergence bounded
    by the decayed mass of the examples a stale worker has not yet
    seen.

Correctness sketch
------------------
Linearity does the heavy lifting, exactly as in the one-shot merge:
each push satisfies ``alpha*raw == decay*(pushed-at-sync state) + U``
per chunk, so the driver's scaled table is always the left-to-right
sum of every update each worker has pushed, each decayed by the decays
pushed after it — the same associativity `sum_merge_scaled_tables`
relies on.  Pulls copy raw bits + scale, so a pulled worker *is* the
driver (induction over changed-chunk tracking); its next push
therefore never re-ships driver state, only its own new updates.

Everything here is single-process by design (like
``ParallelHarness(n_workers=1)``): the protocol and its costs — delta
bytes, dirty fractions, staleness, round-trip spans — are measured
for real (``BENCH_ps.json``), while scheduling is modelled, keeping
every test deterministic.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Sequence

import numpy as np

from repro.data.batch import SparseBatch
from repro.data.partition import partition_batch
from repro.heap.topk import TopKStore
from repro.parallel.delta import (
    PayloadCorruptionError,
    PullDelta,
    PushDelta,
    SyncPoint,
    apply_pull,
    apply_push,
    encode_pull,
    encode_push,
    full_table_bytes,
)
from repro.serving.snapshot import SnapshotManager
from repro.telemetry import MetricsRegistry, merge_snapshots, trace

__all__ = ["PSWorker", "ParameterServer", "PSHarness", "SyncTimeout"]


class SyncTimeout(RuntimeError):
    """A push or pull could not be delivered within the retry budget.

    Raised after ``max_retries`` transmission attempts (exponential
    backoff between them) all failed — the in-process analogue of a
    sync RPC timing out against a dead or unreachable peer.
    """


def _check_delta_capable(model) -> None:
    if not getattr(model, "ps_delta_sync", False):
        raise TypeError(
            f"{type(model).__name__} does not support parameter-server "
            f"delta sync (needs ps_delta_sync=True: full state must be "
            f"recoverable from raw table chunks + scale; use the "
            f"one-shot ParallelHarness merge instead)"
        )


class PSWorker:
    """One shard-bound worker replica (driver-side object; the state it
    ships is what a remote process would ship)."""

    def __init__(
        self,
        worker_id: int,
        model,
        shard: "SparseBatch | Sequence",
        *,
        sync_every: int = 256,
        batch_size: int = 64,
    ):
        _check_delta_capable(model)
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1, got {sync_every}")
        self.worker_id = worker_id
        self.model = model
        self.batch_size = int(batch_size)
        if not isinstance(shard, SparseBatch):
            shard = SparseBatch.from_examples(list(shard))
        self._round_windows = list(shard.windows(sync_every))
        self.n_rounds = len(self._round_windows)
        self.rounds_done = 0
        self.last_pull_round = 0
        self.train_seconds = 0.0
        #: Worker-side codec wall (encode_push / apply_pull): runs on
        #: the worker's own core in a real deployment, so it belongs to
        #: the parallel track of the modeled critical path, not the
        #: serialized driver track.
        self.sync_seconds = 0.0
        self._round_examples = 0
        # A fresh model is all-dirty by construction; this worker is a
        # bit-exact replica of the (identically fresh) global model, so
        # nothing has diverged yet and the first push should ship only
        # what the first round touches.
        model._dirty[:] = False
        self.sync = SyncPoint(model)
        if model.heap is not None:
            model.heap.enable_promo_log()
        #: Worker-local telemetry, shipped as additive deltas with every
        #: push and sum-merged into the driver registry (counters and
        #: histograms only — levels would double-count under sum-merge).
        self.registry = MetricsRegistry()
        self._m_examples = self.registry.counter("ps.worker.examples")
        self._m_batches = self.registry.counter("ps.worker.batches")
        self._m_rounds = self.registry.counter("ps.worker.rounds")
        self._m_train_seconds = self.registry.histogram(
            "ps.worker.round_seconds"
        )
        self._metrics_mark = self.registry.snapshot()

    def train_round(self) -> tuple[float, int]:
        """Train the next ``sync_every``-example round; returns
        (wall seconds, examples trained)."""
        window = self._round_windows[self.rounds_done]
        n_batches = 0
        t0 = perf_counter()
        for sub in window.windows(self.batch_size):
            self.model.fit_batch(sub)
            n_batches += 1
        dt = perf_counter() - t0
        n = len(window)
        self.train_seconds += dt
        self._round_examples = n
        self._m_examples.inc(n)
        self._m_batches.inc(n_batches)
        self._m_rounds.inc()
        self._m_train_seconds.record(dt)
        return dt, n

    def encode_push(self) -> tuple[PushDelta, dict]:
        """Encode everything learned since the last sync point.

        Returns the wire delta plus this worker's additive telemetry
        delta (sum-merged into the driver registry on apply).  Advances
        the round counter: a round is *complete* once its delta exists.
        """
        heap = self.model.heap
        promo = heap.drain_promo_log() if heap is not None else ()
        delta = encode_push(
            self.model,
            self.sync,
            promo_keys=promo,
            n_examples=self._round_examples,
            worker_id=self.worker_id,
            round_id=self.rounds_done,
        )
        self.rounds_done += 1
        self._round_examples = 0
        metrics_delta = self.registry.delta(self._metrics_mark)
        self._metrics_mark = self.registry.snapshot()
        return delta, metrics_delta

    def apply_pull(self, pull: PullDelta) -> None:
        """Become a bit-exact replica of the driver's encoded state.

        Called push-first by the harness, so at entry the worker's raw
        bits equal its sync base everywhere; the pull overwrites only
        the shipped chunks, and re-anchoring the sync point is O(pull)
        — scatter the same chunks into the base — not O(table).
        """
        apply_pull(self.model, pull)
        self.model.scatter_chunks(
            pull.chunk_ids, pull.chunks, out=self.sync.base_raw
        )
        self.sync.scale = pull.scale
        self.sync.fold_log = pull.fold_log
        self.model._dirty[:] = False
        self.last_pull_round = self.rounds_done
        heap = self.model.heap
        if heap is not None:
            # Re-estimate the tracked set against the merged table —
            # the same re-promotion the one-shot merge performs.  The
            # admissions this logs are driver-derived (every candidate
            # reached the driver through an earlier push's promo log),
            # so drain them: the next push ships only *new* promotions.
            candidates = {k for k, _ in heap.items()}
            fresh = TopKStore(heap.capacity, backend=self.model.backend)
            fresh.enable_promo_log()
            self.model.heap = fresh
            self.model._repromote(
                fresh, candidates, self.model.estimate_weights
            )
            fresh.drain_promo_log()

    def residual_metrics(self) -> dict:
        """Telemetry accrued since the last push (read-only peek —
        does not advance the shipping mark)."""
        return self.registry.delta(self._metrics_mark)

    def recover(self, model, pull: PullDelta) -> None:
        """Respawn this worker onto ``model`` (a fresh factory build)
        from a full-state recovery pull.

        The replacement becomes a bit-exact replica of the driver —
        raw chunk bits, scale, fold accumulator, example clock — and
        ``rounds_done`` is the durable cursor into ``_round_windows``:
        a crash loses only the in-flight round's local (never-pushed)
        updates, and the replay retrains exactly that round onward on
        the pulled state, so every shard example still lands in the
        global model exactly once.
        """
        _check_delta_capable(model)
        self.model = model
        apply_pull(model, pull)
        model._dirty[:] = False
        self.sync = SyncPoint(model)
        if model.heap is not None:
            # The respawned heap starts empty, like a first boot; local
            # training re-promotes, and the driver's heap (which folded
            # every pushed promo log) remains the authoritative top-K.
            model.heap.enable_promo_log()
        self.last_pull_round = self.rounds_done
        self._round_examples = 0
        self._metrics_mark = self.registry.snapshot()


class ParameterServer:
    """The driver: global model + per-worker pull bitmaps."""

    def __init__(self, model, n_workers: int, *,
                 registry: MetricsRegistry | None = None):
        _check_delta_capable(model)
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.model = model
        self.n_workers = int(n_workers)
        #: Row ``i`` ORs every chunk changed since worker ``i``'s last
        #: pull — by its own pushes (it must see merged contributions,
        #: not its raw local ones), by other workers', or by a renorm
        #: fold (which rewrites all raw bits, so the row saturates).
        self._pull_dirty = np.zeros(
            (self.n_workers, model._n_chunks()), dtype=bool
        )
        #: Highest round sequence number applied per worker — the
        #: dedup ledger that makes :meth:`apply_push` idempotent when
        #: the wire layer retransmits (at-least-once delivery).
        self._applied_round = np.full(self.n_workers, -1, dtype=np.int64)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_push_count = self.registry.counter("ps.push.count")
        self._m_push_bytes = self.registry.counter("ps.push.delta_bytes")
        self._m_push_full_bytes = self.registry.counter(
            "ps.push.full_table_bytes"
        )
        self._m_push_chunks = self.registry.counter("ps.push.chunks")
        self._m_dirty_fraction = self.registry.histogram(
            "ps.push.dirty_fraction", lo=1e-6, hi=2.0
        )
        self._m_promo_keys = self.registry.counter("ps.promo.keys")
        self._m_promo_admitted = self.registry.counter("ps.promo.admitted")
        self._m_folds = self.registry.counter("ps.fold.count")
        self._m_pull_count = self.registry.counter("ps.pull.count")
        self._m_pull_bytes = self.registry.counter("ps.pull.bytes")
        self._m_examples = self.registry.counter("ps.examples")
        self._m_dup_dropped = self.registry.counter("ps.push.duplicates")

    def apply_push(self, delta: PushDelta,
                   metrics_delta: dict | None = None) -> bool:
        """Fold one worker's delta into the global model.

        Idempotent under duplicated delivery: pushes carry a
        per-worker monotone round sequence number, and a delta at or
        below the last applied round for its worker is dropped whole
        (a retransmission racing its own ack; applying it twice would
        double-count every update it carries).  Returns True when the
        delta was applied, False when it was deduplicated away.
        """
        wid = int(delta.worker_id)
        if (0 <= wid < self.n_workers
                and delta.round_id <= self._applied_round[wid]):
            self._m_dup_dropped.inc()
            return False
        with trace.span("ps.apply_push", worker=delta.worker_id,
                        round=delta.round_id):
            folded = apply_push(self.model, delta)
            if folded:
                self._m_folds.inc()
                self._pull_dirty[:, :] = True
            else:
                self._pull_dirty[:, delta.chunk_ids] = True
            heap = self.model.heap
            if heap is not None and delta.promo_keys.size:
                # Fold the promotion log: re-estimate the keys the
                # worker admitted against the *merged* table and let
                # the heap's own admission rule keep the heaviest.
                uniq = np.unique(delta.promo_keys)
                admitted = heap.fold_delta(
                    uniq, self.model.estimate_weights(uniq)
                )
                self._m_promo_keys.inc(int(uniq.size))
                self._m_promo_admitted.inc(int(admitted))
        self._m_push_count.inc()
        self._m_push_bytes.inc(delta.nbytes)
        self._m_push_full_bytes.inc(full_table_bytes(self.model))
        self._m_push_chunks.inc(int(delta.chunk_ids.size))
        self._m_dirty_fraction.record(
            delta.chunk_ids.size / max(1, delta.n_chunks)
        )
        self._m_examples.inc(delta.n_examples)
        if 0 <= wid < self.n_workers:
            self._applied_round[wid] = delta.round_id
        if metrics_delta is not None:
            self.registry.merge_snapshot(metrics_delta)
        return True

    def encode_pull(self, worker_id: int) -> PullDelta:
        """Encode the chunks ``worker_id`` has not seen since its last
        pull, and clear its bitmap."""
        with trace.span("ps.encode_pull", worker=worker_id):
            row = self._pull_dirty[worker_id]
            chunk_ids = np.flatnonzero(row)
            pull = encode_pull(self.model, chunk_ids)
            row[:] = False
        self._m_pull_count.inc()
        self._m_pull_bytes.inc(pull.nbytes)
        return pull

    def encode_recovery_pull(self, worker_id: int) -> PullDelta:
        """Full-state pull for a respawned worker: saturate its bitmap
        first so the encode ships every chunk — replica bootstrap, not
        the steady-state O(dirty) path."""
        self._pull_dirty[worker_id, :] = True
        return self.encode_pull(worker_id)


class PSHarness:
    """Partition -> SSP loop -> served snapshots, behind one call.

    Parameters
    ----------
    factory / factory_kwargs:
        Model constructor for the driver and every worker (identical
        kwargs — mergeability requires identical hashing seeds).  Must
        build a ``ps_delta_sync`` model (the WM-Sketch).
    n_workers:
        Shard count.
    staleness:
        The SSP bound ``s``: a worker may run round ``r`` only while
        ``r <= min_round + s``, and pulls the merged state once every
        ``s + 1`` rounds.  ``0`` is bulk-synchronous.
    sync_every:
        Examples per round (between pushes) per worker.
    batch_size:
        Mini-batch size inside a round.
    speeds:
        Relative worker speeds for the modelled schedule (default all
        equal).  With unequal speeds and ``s`` small, fast workers hit
        the barrier and block — counted in ``ps.ssp.blocked``.
    publish_every:
        Publish a serving snapshot every N pushes (0 disables the
        :class:`~repro.serving.snapshot.SnapshotManager`); a final
        publish always lands after the loop so the served model is the
        fully merged one.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan` consulted
        at the named hook points (``ps.round``, ``ps.push.wire``,
        ``ps.pull.wire``).  ``None`` (the default) keeps the loop on
        the exact fault-free fast path — no payload round-trips, no
        extra branches in the hot code.
    heartbeat_timeout:
        Scheduler ticks a worker may miss its heartbeat before the
        driver declares it dead and respawns it (each loop iteration
        is one tick; live workers heartbeat by completing rounds).
    max_retries:
        Transmission attempts per push/pull before :class:`SyncTimeout`.
    backoff_base:
        First retry's modelled backoff in seconds; doubles per attempt
        (charged to the worker's ``sync_seconds`` track).
    """

    def __init__(
        self,
        factory: Callable[..., Any],
        factory_kwargs: dict[str, Any] | None = None,
        *,
        n_workers: int = 4,
        staleness: int = 0,
        sync_every: int = 256,
        batch_size: int = 64,
        seed: int = 0,
        speeds: Sequence[float] | None = None,
        publish_every: int = 1,
        registry: MetricsRegistry | None = None,
        fault_plan=None,
        heartbeat_timeout: int = 2,
        max_retries: int = 6,
        backoff_base: float = 0.001,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness}")
        if heartbeat_timeout < 1:
            raise ValueError(
                f"heartbeat_timeout must be >= 1, got {heartbeat_timeout}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if speeds is not None:
            speeds = [float(v) for v in speeds]
            if len(speeds) != n_workers:
                raise ValueError(
                    f"speeds has {len(speeds)} entries for "
                    f"{n_workers} workers"
                )
            if any(v <= 0 for v in speeds):
                raise ValueError("speeds must be positive")
        self.factory = factory
        self.factory_kwargs = dict(factory_kwargs or {})
        self.n_workers = int(n_workers)
        self.staleness = int(staleness)
        self.sync_every = int(sync_every)
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self.speeds = speeds or [1.0] * self.n_workers
        self.publish_every = int(publish_every)
        self.fault_plan = fault_plan
        self.heartbeat_timeout = int(heartbeat_timeout)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_staleness = self.registry.histogram(
            "ps.staleness", lo=0.5, hi=128.0, buckets_per_decade=12
        )
        self._m_blocked = self.registry.counter("ps.ssp.blocked")
        self._m_publishes = self.registry.counter("ps.publish.count")
        self._m_retries = self.registry.counter("ps.retry.count")
        self._m_backoff = self.registry.histogram(
            "ps.retry.backoff_seconds", lo=1e-5, hi=100.0
        )
        self._m_wire_dropped = self.registry.counter("ps.wire.dropped")
        self._m_wire_corrupt = self.registry.counter(
            "ps.wire.corrupt_rejected"
        )
        self._m_crashes = self.registry.counter("ps.crash.count")
        self._m_recoveries = self.registry.counter("ps.recover.count")
        self._m_heartbeat_missed = self.registry.counter(
            "ps.heartbeat.missed"
        )
        self._m_recovery_seconds = self.registry.histogram(
            "ps.recover.wall_seconds", lo=1e-6, hi=100.0
        )
        self.model = None
        self.server: ParameterServer | None = None
        self.manager: SnapshotManager | None = None
        self.workers: list[PSWorker] = []
        #: One row per (worker, round) sync event, in schedule order —
        #: the raw material for ``BENCH_ps.json``.
        self.history: list[dict] = []
        #: Fault-lifecycle events (crash / stall / recover), separate
        #: from ``history`` so the bench aggregations stay untouched.
        self.events: list[dict] = []
        self._stall_penalty: list[float] = []
        #: Wall seconds of driver-side work (applying pushes, encoding
        #: pulls, publishing snapshots), serialized on the driver in
        #: the modelled schedule; the worker-side codec halves live in
        #: each worker's ``sync_seconds``.
        self.driver_seconds = 0.0

    def fit(self, examples) -> Any:
        """Run the PS loop over ``examples``; returns the global model."""
        batch = (
            examples if isinstance(examples, SparseBatch)
            else SparseBatch.from_examples(list(examples))
        )
        shards = partition_batch(batch, self.n_workers, seed=self.seed)
        model = self.factory(**self.factory_kwargs)
        _check_delta_capable(model)
        self.model = model
        self.server = ParameterServer(
            model, self.n_workers, registry=self.registry
        )
        # The manager's construction publishes version 0 (a full
        # rebase), so every later publish is O(chunks dirtied by
        # pushes) — the driver model's own bitmap, distinct from the
        # per-worker pull bitmaps.
        self.manager = (
            SnapshotManager(model, registry=self.registry)
            if self.publish_every > 0 else None
        )
        self.workers = [
            PSWorker(
                i,
                self.factory(**self.factory_kwargs),
                shards[i],
                sync_every=self.sync_every,
                batch_size=self.batch_size,
            )
            for i in range(self.n_workers)
        ]
        self.history = []
        self.events = []
        self.driver_seconds = 0.0
        self._stall_penalty = [0.0] * self.n_workers
        s = self.staleness
        active = [i for i in range(self.n_workers)
                  if self.workers[i].n_rounds > 0]
        #: worker id -> tick of death, awaiting heartbeat-timeout
        #: detection and respawn.
        crashed: dict[int, int] = {}
        clock = 0
        pushes_since_publish = 0

        def modeled_finish(i: int) -> float:
            # Completion time of worker i's next round on its own core,
            # under constant per-round cost 1/speed, plus any injected
            # stall penalty (a straggler runs late but correct).
            return (
                (self.workers[i].rounds_done + 1) / self.speeds[i]
                + self._stall_penalty[i]
            )

        while active or crashed:
            clock += 1
            if crashed:
                # Liveness: a worker heartbeats by completing rounds;
                # one that misses heartbeat_timeout ticks is declared
                # dead and respawned from the driver's state.
                self._m_heartbeat_missed.inc(len(crashed))
                for i, since in sorted(crashed.items()):
                    if clock - since >= self.heartbeat_timeout:
                        del crashed[i]
                        self._recover_worker(i, clock)
                        if (self.workers[i].rounds_done
                                < self.workers[i].n_rounds):
                            active.append(i)
                if not active:
                    continue
            min_round = min(self.workers[i].rounds_done for i in active)
            preferred = min(active, key=lambda i: (modeled_finish(i), i))
            eligible = [
                i for i in active
                if self.workers[i].rounds_done <= min_round + s
            ]
            chosen = min(eligible, key=lambda i: (modeled_finish(i), i))
            if chosen != preferred:
                # The modelled-fastest worker is barred by the SSP
                # bound: a real deployment would stall it here.
                self._m_blocked.inc()
            worker = self.workers[chosen]
            if self.fault_plan is not None:
                ev = self.fault_plan.next_event(
                    "ps.round", worker=chosen, round=worker.rounds_done
                )
                if ev is not None and ev.action == "crash":
                    active.remove(chosen)
                    crashed[chosen] = clock
                    self._m_crashes.inc()
                    self.events.append({
                        "event": "crash", "worker": chosen,
                        "round": worker.rounds_done, "clock": clock,
                    })
                    continue
                if ev is not None and ev.action == "stall":
                    self._stall_penalty[chosen] += float(ev.param or 1.0)
                    self.events.append({
                        "event": "stall", "worker": chosen,
                        "round": worker.rounds_done, "clock": clock,
                        "penalty": float(ev.param or 1.0),
                    })
                    # Re-schedule: the stalled worker finishes later in
                    # modelled time, so another worker may now go first.
                    continue
            stale = worker.rounds_done - min_round
            self._m_staleness.record(stale)
            with trace.span("ps.round", worker=chosen,
                            round=worker.rounds_done):
                train_dt, n_ex = worker.train_round()
                t0 = perf_counter()
                delta, metrics_delta = worker.encode_push()
                t1 = perf_counter()
                self._transmit_push(worker, delta, metrics_delta)
                t2 = perf_counter()
                sync_dt = t2 - t0
            worker.sync_seconds += t1 - t0
            self.driver_seconds += t2 - t1
            row = {
                "worker": chosen,
                "round": worker.rounds_done,
                "examples": n_ex,
                "staleness": stale,
                "train_seconds": train_dt,
                "sync_seconds": sync_dt,
                "push_bytes": delta.nbytes,
                "push_chunks": int(delta.chunk_ids.size),
                "pulled": False,
                "pull_bytes": 0,
            }
            if worker.rounds_done >= worker.n_rounds:
                active.remove(chosen)
            elif worker.rounds_done - worker.last_pull_round > s:
                # Pull cadence: every s+1 rounds (every round at s=0).
                t0 = perf_counter()
                pull = self.server.encode_pull(chosen)
                t1 = perf_counter()
                self._deliver_pull(worker, pull)
                self.driver_seconds += t1 - t0
                worker.sync_seconds += perf_counter() - t1
                row["pulled"] = True
                row["pull_bytes"] = pull.nbytes
            self.history.append(row)
            pushes_since_publish += 1
            if (self.manager is not None
                    and pushes_since_publish >= self.publish_every):
                t0 = perf_counter()
                self.manager.publish()
                self.driver_seconds += perf_counter() - t0
                self._m_publishes.inc()
                pushes_since_publish = 0
        heap = model.heap
        if heap is not None:
            # Fold-time promotion estimates go stale as later pushes
            # land; re-score the tracked set against the final table —
            # the same re-promotion the one-shot merge ends with.
            candidates = {k for k, _ in heap.items()}
            fresh = TopKStore(heap.capacity, backend=model.backend)
            model.heap = fresh
            model._repromote(fresh, candidates, model.estimate_weights)
        if self.manager is not None:
            # Always land a final snapshot: the served model must be the
            # fully merged, finally re-estimated one.
            self.manager.publish()
            self._m_publishes.inc()
        return model

    # -- wire transmission under faults ---------------------------------
    def _backoff(self, worker: PSWorker, attempt: int) -> None:
        """Model one retry wait: exponential backoff charged to the
        worker's sync track, counted + histogrammed."""
        delay = self.backoff_base * (2.0 ** attempt)
        self._m_retries.inc()
        self._m_backoff.record(delay)
        worker.sync_seconds += delay

    def _check_attempts(self, attempt: int, kind: str,
                        worker_id: int, round_id: int) -> None:
        if attempt > self.max_retries:
            raise SyncTimeout(
                f"{kind} from worker {worker_id} round {round_id} not "
                f"delivered after {self.max_retries} retries "
                f"(exponential backoff exhausted)"
            )

    def _transmit_push(self, worker: PSWorker, delta: PushDelta,
                       metrics_delta: dict | None) -> None:
        """Deliver one push to the driver, at-least-once.

        Without a fault plan this is a direct apply (the fault-free
        fast path ships no payload round-trip).  With one, the delta
        crosses the wire as its checksummed payload: drops and
        corruption-rejects retransmit the pristine copy after modelled
        backoff, and a duplicated delivery is applied twice so the
        driver's sequence-number dedup is exercised for real.
        """
        plan = self.fault_plan
        if plan is None:
            self.server.apply_push(delta, metrics_delta)
            return
        wire = delta.to_payload()
        attempt = 0
        while True:
            ev = plan.next_event(
                "ps.push.wire", worker=delta.worker_id,
                round=delta.round_id, attempt=attempt,
            )
            action = ev.action if ev is not None else None
            if action == "drop":
                self._m_wire_dropped.inc()
                self._backoff(worker, attempt)
                attempt += 1
                self._check_attempts(
                    attempt, "push", delta.worker_id, delta.round_id
                )
                continue
            send = plan.corrupt_payload(wire) if action == "corrupt" else wire
            try:
                received = PushDelta.from_payload(send)
            except PayloadCorruptionError:
                # Receiver-side reject: nothing was applied; NACK and
                # retransmit the pristine payload.
                self._m_wire_corrupt.inc()
                self._backoff(worker, attempt)
                attempt += 1
                self._check_attempts(
                    attempt, "push", delta.worker_id, delta.round_id
                )
                continue
            self.server.apply_push(received, metrics_delta)
            if action == "duplicate":
                # The retransmission raced its own ack: the driver sees
                # the same round twice and must dedup it.
                self.server.apply_push(PushDelta.from_payload(wire), None)
            return

    def _deliver_pull(self, worker: PSWorker, pull: PullDelta) -> None:
        """Deliver one (already encoded) pull to its worker — same
        retransmit discipline as pushes; the encoded object is retained
        until applied, so a dropped/corrupted attempt loses nothing."""
        plan = self.fault_plan
        if plan is None:
            worker.apply_pull(pull)
            return
        wire = pull.to_payload()
        attempt = 0
        while True:
            ev = plan.next_event(
                "ps.pull.wire", worker=worker.worker_id,
                round=worker.rounds_done, attempt=attempt,
            )
            action = ev.action if ev is not None else None
            if action == "drop":
                self._m_wire_dropped.inc()
                self._backoff(worker, attempt)
                attempt += 1
                self._check_attempts(
                    attempt, "pull", worker.worker_id, worker.rounds_done
                )
                continue
            send = plan.corrupt_payload(wire) if action == "corrupt" else wire
            try:
                received = PullDelta.from_payload(send)
            except PayloadCorruptionError:
                self._m_wire_corrupt.inc()
                self._backoff(worker, attempt)
                attempt += 1
                self._check_attempts(
                    attempt, "pull", worker.worker_id, worker.rounds_done
                )
                continue
            worker.apply_pull(received)
            return

    def _recover_worker(self, i: int, clock: int) -> None:
        """Respawn dead worker ``i`` as a bit-exact driver replica.

        The replacement model comes from the same factory, the state
        from a full-table recovery pull, and the work cursor from the
        worker's own ``rounds_done`` — recovery therefore replays the
        in-flight round deterministically and the chaos run converges
        to the fault-free table in the data-linear regime.
        """
        t0 = perf_counter()
        worker = self.workers[i]
        pull = self.server.encode_recovery_pull(i)
        worker.recover(self.factory(**self.factory_kwargs), pull)
        dt = perf_counter() - t0
        self.driver_seconds += dt
        self._m_recoveries.inc()
        self._m_recovery_seconds.record(dt)
        self.events.append({
            "event": "recover", "worker": i, "clock": clock,
            "round": worker.rounds_done, "wall_seconds": dt,
            "pull_bytes": pull.nbytes,
        })

    # -- observability ---------------------------------------------------
    def stats(self) -> dict:
        """One fleet-wide telemetry cut: the driver registry (which
        already holds every pushed worker delta) plus each worker's
        since-last-push residual."""
        return merge_snapshots(
            self.registry.snapshot(),
            *[w.residual_metrics() for w in self.workers],
        )

    def modeled_wall_seconds(self) -> float:
        """Modelled critical path: each worker's training + codec work
        runs in parallel on its own core (the slowest binds); driver
        work — applying pushes, encoding pulls, publishing — is
        serialized."""
        slowest = max(
            (w.train_seconds + w.sync_seconds for w in self.workers),
            default=0.0,
        )
        return slowest + self.driver_seconds

    def delta_bytes_ratio(self) -> float:
        """Headline: full-table sync bytes / actual delta bytes, summed
        over every push."""
        snap = self.registry.snapshot()
        pushed = snap["counters"].get("ps.push.delta_bytes", 0)
        full = snap["counters"].get("ps.push.full_table_bytes", 0)
        return full / pushed if pushed else float("inf")
