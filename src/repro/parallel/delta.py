"""O(dirty) delta codec for parameter-server synchronisation.

The chunked dirty bitmap that makes snapshot publication O(dirty)
(PR 8) doubles as a *wire format*: everything a worker learned since
its last sync lives in the chunks its bitmap names, so a push ships
``(chunk id, 256 buckets)`` pairs instead of the whole table.  This
module is the codec — the pure encode/decode/apply functions between a
live :class:`~repro.core.sketch_table.ScaledSketchTable` and the two
message types crossing the driver/worker boundary:

* :class:`PushDelta` (worker -> driver): the worker's *scaled-space*
  contribution ``U`` on its dirty chunks, the decay product ``delta``
  it applied since its last sync, the top-K promotion log, and the
  example count.  The driver applies ``G <- delta * G + U`` — scale
  times raw-table chunk adds, never a full-table pass.
* :class:`PullDelta` (driver -> worker): the merged table's *raw bits*
  on the chunks that changed since this worker's last pull, plus the
  driver's scale.  Applying a pull makes the worker a bit-exact replica
  of the driver (raw bits equal everywhere by induction — both sides
  track which chunks changed — and the scale is copied).

Why the decomposition is O(dirty)
---------------------------------
A worker's scaled state factors as ``W = delta * P + U`` where ``P`` is
the state it pulled, ``delta`` the decay product it applied since, and
``U`` the decayed sum of its local gradient updates.  Decays move only
the lazy scale; gradient scatters land in dirty-marked chunks — so
``U`` is supported entirely on the dirty set, and outside it
``W = delta * P`` exactly.  Shipping ``(delta, U on dirty chunks)``
loses nothing.

``U`` is computed against a *base*: the worker's raw table copy at the
last sync point (:class:`SyncPoint`).  On a fold-free window the decay
product is the exact scale ratio ``alpha_now / alpha_ref`` and
``delta * alpha_ref == alpha_now`` up to one rounding, so
``U = alpha_now * (raw_now - base_raw)`` on the dirty chunks; with
``lambda == 0`` every factor is exactly 1.0 and the identity is
bit-exact — the regime in which the s=0 loop reproduces the
single-stream table bit-for-bit (``tests/test_ps.py``).  A renorm fold
inside the window marks every chunk dirty, so ``U`` then covers the
whole table and the recovered state is exact regardless of the decay
product's rounding (the log-space fold accounting is
:meth:`~repro.core.sketch_table.ScaledSketchTable.log_virtual_scale`).
"""

from __future__ import annotations

import math
import zlib

import numpy as np

__all__ = [
    "PayloadCorruptionError",
    "PushDelta",
    "PullDelta",
    "SyncPoint",
    "encode_push",
    "apply_push",
    "encode_pull",
    "apply_pull",
    "full_table_bytes",
    "payload_crc",
]

#: Fixed per-message overhead we account for on the wire: the decay
#: product, the example count, worker/round ids, the chunk count, and
#: the CRC32 checksum word (8 bytes each).  Honest but immaterial next
#: to the chunk payload.
_HEADER_BYTES = 6 * 8


class PayloadCorruptionError(ValueError):
    """A wire payload failed structural or checksum validation.

    Raised by ``from_payload`` *before* any state is touched: a
    corrupted delta is rejected at the receiver boundary and the sender
    retransmits its pristine copy — it is never partially applied.
    """


def payload_crc(fields) -> int:
    """CRC32 over a wire tuple's fields, in order.

    Arrays contribute their dtype, shape, and raw bytes (so a
    truncation, a reordering, or a single flipped bit all change the
    digest); scalars contribute their exact ``repr`` (round-trip exact
    for Python ints and floats).
    """
    crc = 0
    for f in fields:
        if isinstance(f, np.ndarray):
            a = np.ascontiguousarray(f)
            crc = zlib.crc32(repr((a.dtype.str, a.shape)).encode(), crc)
            crc = zlib.crc32(a.tobytes(), crc)
        else:
            crc = zlib.crc32(repr(f).encode(), crc)
    return crc


def _decode_checked(cls, payload):
    """Shared ``from_payload`` body: arity check + CRC verify, every
    failure mode funnelled into :class:`PayloadCorruptionError`."""
    try:
        n = len(payload)
    except TypeError as exc:
        raise PayloadCorruptionError(
            f"malformed {cls.__name__} payload: not a sequence ({exc})"
        ) from exc
    if n != len(cls.__slots__) + 1:
        raise PayloadCorruptionError(
            f"malformed {cls.__name__} payload: {n} fields, expected "
            f"{len(cls.__slots__) + 1} (incl. checksum)"
        )
    fields, crc = payload[:-1], payload[-1]
    try:
        expect = payload_crc(fields)
    except Exception as exc:
        raise PayloadCorruptionError(
            f"malformed {cls.__name__} payload: {exc!r}"
        ) from exc
    if crc != expect:
        raise PayloadCorruptionError(
            f"{cls.__name__} checksum mismatch: payload carries "
            f"{crc!r}, contents hash to {expect}"
        )
    return cls(*fields)


def full_table_bytes(model) -> int:
    """The bytes a *full-state* sync of ``model``'s table would ship —
    the denominator of the headline delta-bytes ratio."""
    return 8 * model.size


class SyncPoint:
    """Worker-side record of the state at the last push or pull.

    ``base_raw`` is a flat copy of the model's raw table bits,
    ``scale`` / ``fold_log`` the lazy scale and fold accumulator at the
    same instant.  :func:`encode_push` diffs the live model against
    this record and then advances it in place (O(dirty): only the
    shipped chunks are re-copied); :meth:`reset` re-anchors it after a
    pull replaced the worker's state wholesale.
    """

    __slots__ = ("base_raw", "scale", "fold_log")

    def __init__(self, model):
        self.base_raw = model._table_flat.copy()
        self.scale = model._scale
        self.fold_log = model._fold_log

    def reset(self, model) -> None:
        """Full re-anchor (after a pull overwrote the worker state)."""
        np.copyto(self.base_raw, model._table_flat)
        self.scale = model._scale
        self.fold_log = model._fold_log


class PushDelta:
    """One worker -> driver sync message (see the module docstring)."""

    __slots__ = (
        "worker_id", "round_id", "decay", "n_examples",
        "chunk_ids", "chunks", "promo_keys", "n_chunks",
    )

    def __init__(self, worker_id, round_id, decay, n_examples,
                 chunk_ids, chunks, promo_keys, n_chunks):
        self.worker_id = worker_id
        self.round_id = round_id
        self.decay = decay
        self.n_examples = n_examples
        self.chunk_ids = chunk_ids
        self.chunks = chunks
        self.promo_keys = promo_keys
        self.n_chunks = n_chunks

    @property
    def nbytes(self) -> int:
        """Wire bytes of this message (the headline numerator)."""
        return (
            _HEADER_BYTES
            + self.chunk_ids.nbytes
            + self.chunks.nbytes
            + self.promo_keys.nbytes
        )

    def to_payload(self) -> tuple:
        """A plain picklable tuple (process-boundary transport), CRC32
        appended so the receiver can reject in-flight corruption."""
        fields = (
            self.worker_id, self.round_id, self.decay, self.n_examples,
            self.chunk_ids, self.chunks, self.promo_keys, self.n_chunks,
        )
        return fields + (payload_crc(fields),)

    @classmethod
    def from_payload(cls, payload: tuple) -> "PushDelta":
        """Decode and verify; raises :class:`PayloadCorruptionError`
        on any structural damage or checksum mismatch."""
        return _decode_checked(cls, payload)


class PullDelta:
    """One driver -> worker sync message: raw chunk bits + scale."""

    __slots__ = (
        "chunk_ids", "chunks", "scale", "fold_log", "t", "n_chunks",
    )

    def __init__(self, chunk_ids, chunks, scale, fold_log, t, n_chunks):
        self.chunk_ids = chunk_ids
        self.chunks = chunks
        self.scale = scale
        self.fold_log = fold_log
        self.t = t
        self.n_chunks = n_chunks

    @property
    def nbytes(self) -> int:
        return _HEADER_BYTES + self.chunk_ids.nbytes + self.chunks.nbytes

    def to_payload(self) -> tuple:
        fields = (
            self.chunk_ids, self.chunks, self.scale, self.fold_log,
            self.t, self.n_chunks,
        )
        return fields + (payload_crc(fields),)

    @classmethod
    def from_payload(cls, payload: tuple) -> "PullDelta":
        """Decode and verify; raises :class:`PayloadCorruptionError`
        on any structural damage or checksum mismatch."""
        return _decode_checked(cls, payload)


def _check_geometry(model, n_chunks: int) -> None:
    if n_chunks != model._n_chunks():
        raise ValueError(
            f"delta geometry mismatch: message carries {n_chunks} "
            f"chunks, model has {model._n_chunks()} — different width/"
            f"depth or chunk size"
        )


def encode_push(
    model,
    sync: SyncPoint,
    *,
    promo_keys=(),
    n_examples: int = 0,
    worker_id: int = 0,
    round_id: int = 0,
) -> PushDelta:
    """Encode the worker's contribution since ``sync`` and advance it.

    Consumes the model's dirty set (cleared, exactly like
    ``snapshot_incremental``) and moves ``sync`` to the current state —
    the next push diffs against *now*.  The encoded ``U`` satisfies
    ``alpha_now * raw_now == decay * (sync.scale * sync.base_raw) + U``
    on every chunk: exactly on clean chunks (raw bits untouched, so
    both sides are the same decayed value), and by construction on the
    shipped dirty chunks.
    """
    dirty = model._dirty
    if dirty is None:
        raise TypeError("cannot encode a push from a read-only snapshot")
    chunk_ids = np.flatnonzero(dirty)
    alpha_now = model._scale
    if model._fold_log == sync.fold_log:
        # Fold-free window: the decay product is the exact scale ratio.
        decay = alpha_now / sync.scale
    else:
        # A renorm fold reset the scale mid-window; recover the product
        # from the virtual log-scale.  Every chunk is dirty after a
        # fold, so U carries the full state and the (approximate) decay
        # only weights other workers' interleaved contributions — see
        # log_virtual_scale's docstring.
        decay = math.exp(
            model.log_virtual_scale()
            - (math.log(sync.scale) + sync.fold_log)
        )
    cur = model.gather_chunks(chunk_ids)
    base = model.gather_chunks(chunk_ids, source=sync.base_raw)
    # U = alpha_now * raw_now - (decay * alpha_ref) * base_raw.  On a
    # fold-free window decay * alpha_ref is alpha_now up to one
    # rounding (exactly alpha_now when lambda == 0: every factor is
    # 1.0), which is what makes the data-linear loop bit-exact.
    drift = decay * sync.scale
    if alpha_now == 1.0 and drift == 1.0:
        chunks = cur - base
    else:
        chunks = alpha_now * cur - drift * base
    # Advance the sync point: base := current state.  Clean chunks'
    # raw bits are untouched since the last sync, so only the shipped
    # chunks need re-copying — O(dirty), like the message itself.
    model.scatter_chunks(chunk_ids, cur, out=sync.base_raw)
    sync.scale = alpha_now
    sync.fold_log = model._fold_log
    dirty[:] = False
    return PushDelta(
        worker_id=worker_id,
        round_id=round_id,
        decay=float(decay),
        n_examples=int(n_examples),
        chunk_ids=chunk_ids,
        chunks=chunks,
        promo_keys=np.asarray(promo_keys, dtype=np.int64),
        n_chunks=int(dirty.shape[0]),
    )


def apply_push(model, delta: PushDelta) -> bool:
    """Apply one push to the driver's global model.

    ``G <- delta.decay * G + U``: the decay multiplies the lazy scale
    (folding into the raw table only on underflow, like any decay), and
    ``U`` accumulates into the raw bits of the named chunks — which are
    marked dirty, keeping the driver's own snapshot publications
    O(dirty).  Returns ``True`` if the decay triggered a renorm fold
    (the caller must then widen every worker's pull set to the whole
    table — the fold rewrote all raw bits).

    The top-K promotion log is *not* folded here: re-estimating the
    logged keys needs the model's recovery machinery and belongs to the
    driver loop (:meth:`repro.parallel.ps.ParameterServer.apply_push`).
    """
    _check_geometry(model, delta.n_chunks)
    fold_log_before = model._fold_log
    if delta.decay != 1.0:
        model._decay_scale(delta.decay)
    model.add_scaled_chunks(delta.chunk_ids, delta.chunks)
    model.t += delta.n_examples
    return model._fold_log != fold_log_before


def encode_pull(model, chunk_ids: np.ndarray, *,
                worker_round: int = 0) -> PullDelta:
    """Encode the driver chunks a worker needs to become a replica.

    Ships *raw bits* plus the scale (not scaled values): raw bits are
    stable under decay, so the worker-side copy reproduces the driver's
    representation exactly and later deltas stay O(dirty) on both
    sides.
    """
    return PullDelta(
        chunk_ids=chunk_ids,
        chunks=model.gather_chunks(chunk_ids),
        scale=model._scale,
        fold_log=model._fold_log,
        t=int(model.t),
        n_chunks=int(model._n_chunks()),
    )


def apply_pull(model, pull: PullDelta) -> None:
    """Overwrite the worker's state with the pulled driver state.

    Raw bits of the named chunks are assigned verbatim and the scale /
    fold accumulator / example clock copied, making the worker's scaled
    state a **bit-exact replica** of the driver's at encode time — the
    un-shipped chunks already agreed by the changed-chunk-tracking
    induction (``tests/test_ps.py`` asserts the full-table equality).

    The caller owns the bookkeeping that follows: re-anchoring its
    :class:`SyncPoint`, clearing the dirty set (the pulled state *is*
    the new sync base), and re-estimating its top-K heap against the
    merged table.
    """
    _check_geometry(model, pull.n_chunks)
    model.scatter_chunks(pull.chunk_ids, pull.chunks)
    model._scale = pull.scale
    model._fold_log = pull.fold_log
    model.t = pull.t
