"""The per-shard training worker: the unit a process pool executes.

Workers are designed around two constraints:

* **spawn-safety** — the payload crossing the process boundary is a
  plain tuple of (picklable factory, kwargs, CSR arrays, batch size);
  the worker function itself lives at module top level so it is
  importable by a freshly spawned interpreter.  No state is inherited
  from the parent beyond the payload.
* **cheap transport** — shards travel as one CSR block
  (:func:`pack_shard`), not as per-example objects; four NumPy arrays
  pickle in microseconds where a list of ``SparseExample`` dataclasses
  costs a Python round trip per example.

Inside the worker, training runs through the batched ``fit_batch``
kernels over CSR window views (``SparseBatch.windows``), i.e. exactly
the single-node batched engine — ``fit_batch`` is the natural RPC unit
the engine was built around.  The worker returns the trained model
(picklable via the classes' ``__getstate__`` support) plus its
in-worker training wall-clock, which the scaling benchmark uses to
report critical-path throughput independently of how many physical
cores this machine happens to have.

Model transport covers the array-backed top-K store: a trained model's
active set / passive heap crosses the process boundary as the live
prefix of its contiguous key/value slot arrays
(:meth:`repro.heap.topk.TopKStore.__getstate__`), with the position
map, min-slot and sorted-key caches rebuilt on the receiving side —
the same derived-state discipline as ``ScaledSketchTable``'s
``_table_flat`` view aliasing.  Store priorities are module-level
callables (``abs``, ``identity``, ``negate``), so every heap-carrying
model, including the truncation baselines and reservoir summaries, is
spawn-safe.
"""

from __future__ import annotations

import pickle
import time
from typing import Any, Callable, Sequence

from repro.data.batch import SparseBatch
from repro.data.sparse import SparseExample
from repro.learning.base import StreamingClassifier

__all__ = ["WorkerResult", "pack_shard", "train_shard"]

#: Payload type crossing the process boundary:
#: (factory, factory_kwargs, (indptr, indices, values, labels), batch_size)
ShardPayload = tuple


class WorkerResult:
    """What a worker sends back: the trained model + its own timings.

    Slots-only and pickled natively (protocol 2+ handles ``__slots__``
    without custom state hooks).
    """

    __slots__ = ("model", "n_examples", "train_seconds")

    def __init__(
        self,
        model: StreamingClassifier,
        n_examples: int,
        train_seconds: float,
    ):
        self.model = model
        self.n_examples = n_examples
        self.train_seconds = train_seconds


def pack_shard(
    factory: Callable[..., StreamingClassifier],
    factory_kwargs: dict[str, Any],
    shard: "Sequence[SparseExample] | SparseBatch",
    batch_size: int,
) -> ShardPayload:
    """Build the picklable payload for one worker.

    ``factory`` must itself be picklable — a model class
    (e.g. :class:`~repro.core.wm_sketch.WMSketch`) or a module-level
    function; lambdas and closures are rejected by the pickler at
    submission time, not deep inside the pool.  ``shard`` may be a
    sequence of examples or an already-packed CSR
    :class:`~repro.data.batch.SparseBatch` (the zero-copy path used by
    the 1-sparse application streams).
    """
    try:
        pickle.dumps((factory, factory_kwargs))
    except Exception as exc:
        raise TypeError(
            f"factory {factory!r} or its kwargs are not picklable "
            f"(lambdas/closures — including inside kwargs values such "
            f"as a custom loss — cannot cross the process boundary; "
            f"use module-level classes/functions): {exc}"
        ) from exc
    if isinstance(shard, SparseBatch):
        batch = shard
    else:
        batch = SparseBatch.from_examples(shard)
    return (
        factory,
        dict(factory_kwargs),
        (batch.indptr, batch.indices, batch.values, batch.labels),
        batch_size,
    )


def train_shard(payload: ShardPayload) -> WorkerResult:
    """Train one model on one shard (runs inside a worker process).

    Reconstructs the shard's CSR block, builds a fresh model from the
    factory, and drives the batched engine over window views.  Also
    callable in-process (the ``n_workers=1`` path and the tests use it
    directly), since it is a pure function of its payload.
    """
    factory, factory_kwargs, (indptr, indices, values, labels), batch_size = (
        payload
    )
    shard = SparseBatch(indptr, indices, values, labels)
    model = factory(**factory_kwargs)
    start = time.perf_counter()
    for window in shard.windows(batch_size):
        model.fit_batch(window)
    elapsed = time.perf_counter() - start
    return WorkerResult(model, len(shard), elapsed)
