"""Parallel training subsystem: sharded workers over mergeable sketches.

The WM-Sketch's core data structure is a *linear* Count-Sketch
projection, which makes independently trained sketches mergeable by
addition — the paper's key enabler for distributed stream processing.
This package turns that observation into an executable subsystem:

* :func:`~repro.data.partition.partition_stream` splits one logical
  stream into deterministic, disjoint, exhaustive shards;
* :mod:`~repro.parallel.worker` trains one (spawn-safe, picklable)
  model per shard through the batched ``fit_batch`` kernels;
* ``merge()`` on every model class combines the workers' results —
  summed Count-Sketch tables with lazy-scale reconciliation for
  WM/AWM/feature hashing (exact, by linearity), mean-merged dense
  weights for the uncompressed LR baseline (approximate, parameter
  averaging);
* :class:`~repro.parallel.harness.ParallelHarness` orchestrates
  partition -> pool -> merge behind one call, and
  :func:`~repro.parallel.pipeline.fit_stream_pipelined` overlaps
  hashing of batch t+1 with training of batch t on a single node;
* :mod:`~repro.parallel.ps` upgrades the one-shot merge to a live
  stale-synchronous parameter-server loop — workers push O(dirty)
  chunk deltas (:mod:`~repro.parallel.delta`) and pull merged state
  under a bounded-staleness barrier, with serving snapshots and
  telemetry wired through.

Merge-semantics contract (tested in ``tests/test_merge.py`` and
``tests/test_parallel.py``): the merged sketch *table* is exactly the
sum of the workers' scaled tables; recovered top-K weights are
approximate relative to single-stream training, with overlap verified
on the Fig. 7 synthetic workload.
"""

from repro.parallel.delta import (
    PullDelta,
    PushDelta,
    SyncPoint,
    apply_pull,
    apply_push,
    encode_pull,
    encode_push,
    full_table_bytes,
)
from repro.parallel.harness import ParallelHarness, train_sharded
from repro.parallel.pipeline import fit_stream_pipelined
from repro.parallel.ps import ParameterServer, PSHarness, PSWorker
from repro.parallel.worker import pack_shard, train_shard

__all__ = [
    "ParallelHarness",
    "ParameterServer",
    "PSHarness",
    "PSWorker",
    "PullDelta",
    "PushDelta",
    "SyncPoint",
    "apply_pull",
    "apply_push",
    "encode_pull",
    "encode_push",
    "full_table_bytes",
    "train_sharded",
    "fit_stream_pipelined",
    "pack_shard",
    "train_shard",
]
