"""Partition -> worker pool -> merge, behind one call.

:class:`ParallelHarness` owns the orchestration of sharded training:
it deterministically partitions a stream across N workers
(:func:`~repro.data.partition.partition_stream`), trains one model per
shard in a spawn-safe ``multiprocessing`` pool
(:func:`~repro.parallel.worker.train_shard`), and merges the results
through the models' own ``merge()`` semantics — exact summation for
sketch tables, mean for the uncompressed baseline.

The pool is created lazily and kept warm across ``fit`` calls, so a
steady-state deployment (or the scaling benchmark) pays interpreter
startup once, not per pass; use the harness as a context manager (or
call :meth:`close`) to release the workers.

``n_workers=1`` short-circuits the pool entirely and trains in-process
— same partitioner, same worker function, no multiprocessing — which
keeps the single-worker configuration exactly comparable in benchmarks
and usable on machines where spawning is restricted.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Iterable, Sequence

from repro.data.batch import SparseBatch
from repro.data.partition import partition_batch, partition_stream
from repro.data.sparse import SparseExample
from repro.learning.base import StreamingClassifier
from repro.parallel.worker import WorkerResult, pack_shard, train_shard

__all__ = ["ParallelHarness", "train_sharded"]


class ParallelHarness:
    """Sharded training orchestrator for any mergeable model class.

    Parameters
    ----------
    factory:
        Picklable constructor of the per-worker model — typically the
        model class itself (``WMSketch``, ``AWMSketch``,
        ``FeatureHashing``, ``UncompressedClassifier``) or a
        module-level function.  Every worker builds its model from the
        same (factory, kwargs), so all shard models share the hash
        family and are mergeable by construction.
    factory_kwargs:
        Keyword arguments passed to ``factory`` in each worker.
    n_workers:
        Number of shards / worker processes (>= 1).
    batch_size:
        Mini-batch size for the in-worker batched engine.
    seed:
        Partitioner seed (determines the shard assignment only).
    start_method:
        ``multiprocessing`` start method; the default ``"spawn"`` is
        the portable, state-isolation-safe choice the subsystem is
        tested with (``"fork"`` also works on POSIX and starts faster).
    """

    def __init__(
        self,
        factory: Callable[..., StreamingClassifier],
        factory_kwargs: dict[str, Any] | None = None,
        n_workers: int = 4,
        batch_size: int = 256,
        seed: int = 0,
        start_method: str = "spawn",
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.factory = factory
        self.factory_kwargs = dict(factory_kwargs or {})
        self.n_workers = n_workers
        self.batch_size = batch_size
        self.seed = seed
        self.start_method = start_method
        self._pool = None
        #: Per-worker results of the most recent :meth:`fit` call
        #: (shard sizes and in-worker train seconds, for diagnostics
        #: and the scaling benchmark's critical-path accounting).
        self.last_results: list[WorkerResult] = []

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            ctx = multiprocessing.get_context(self.start_method)
            self._pool = ctx.Pool(self.n_workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (no-op if never started)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelHarness":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def fit(
        self, stream: "Iterable[SparseExample] | SparseBatch"
    ) -> StreamingClassifier:
        """Partition ``stream``, train the shards, return the merged model.

        Every example is consumed by exactly one worker; the merged
        model has ``t`` equal to the stream length and ``merged_from``
        equal to ``n_workers``.  A :class:`SparseBatch` input is
        partitioned entirely in CSR land (no per-example objects) —
        the fast path for the 1-sparse application encodings.
        """
        if isinstance(stream, SparseBatch):
            shards = partition_batch(
                stream, self.n_workers, seed=self.seed
            )
        else:
            shards = partition_stream(
                stream, self.n_workers, seed=self.seed
            )
        payloads = [
            pack_shard(self.factory, self.factory_kwargs, shard,
                       self.batch_size)
            for shard in shards
        ]
        if self.n_workers == 1:
            results = [train_shard(payloads[0])]
        else:
            results = self._ensure_pool().map(train_shard, payloads)
        models = [r.model for r in results]
        merged = models[0].merge(*models[1:])
        for result in results:
            # merge() consumed the donors; keep only the diagnostics so
            # a long-lived warm harness does not pin k dead tables.
            result.model = None
        self.last_results = results
        return merged

    def fit_into(
        self,
        stream: "Iterable[SparseExample] | SparseBatch",
        existing: StreamingClassifier | None,
    ) -> StreamingClassifier:
        """Sharded :meth:`fit` that absorbs an already-trained model.

        The shared tail of the apps' ``consume_parallel``: if
        ``existing`` carries training state (``t > 0``) it is merged
        into the fresh sharded result (so repeated sharded consumption
        accumulates); untrained or absent models are simply replaced.
        ``existing`` must be mergeable with the factory's models — same
        class and hash family — or ``merge`` raises.

        Merging *consumes* ``existing`` as a donor (an AWM's active set
        is folded back into its sketch, for example): callers must
        treat the returned model as the sole survivor and discard
        ``existing``, as the apps do by overwriting their classifier.
        """
        merged = self.fit(stream)
        if existing is not None and getattr(existing, "t", 0) > 0:
            merged.merge(existing)
        return merged


def train_sharded(
    factory: Callable[..., StreamingClassifier],
    examples: Sequence[SparseExample],
    n_workers: int = 4,
    factory_kwargs: dict[str, Any] | None = None,
    batch_size: int = 256,
    seed: int = 0,
    start_method: str = "spawn",
) -> StreamingClassifier:
    """One-shot convenience: sharded training without keeping a pool."""
    with ParallelHarness(
        factory,
        factory_kwargs=factory_kwargs,
        n_workers=n_workers,
        batch_size=batch_size,
        seed=seed,
        start_method=start_method,
    ) as harness:
        return harness.fit(examples)
