"""Double-buffered pipelined ingestion: hash batch t+1 while t trains.

Hashing is a pure function of the batch's feature ids, so it can be
lifted off the training thread entirely: a producer thread chunks the
stream into CSR batches and evaluates each batch's (buckets, signs)
through its *own* :class:`~repro.hashing.batch.BatchHasher` over the
classifier's hash family — the pure seam the batched engine exposes —
and hands (batch, rows) pairs through a bounded queue to the training
loop, which feeds the precomputed rows straight into ``fit_batch``.

The queue is bounded (default depth 1: classic double buffering — one
batch in flight on each side), so memory stays O(batch) and the
producer can run at most one batch ahead.  Because the prefetch hasher
is a separate instance, the classifier's internal cache is never
touched concurrently; purity of the hash functions guarantees the
precomputed rows are bit-identical to what ``fit_batch`` would have
computed itself, so the pipelined pass reproduces the sequential
engine's state exactly (tested in ``tests/test_pipeline.py``).

How much *wall-clock* the overlap buys depends on the kernel backend
(:mod:`repro.kernels`): under the NumPy reference, hashing holds the
GIL through its Python-level dispatch, so producer and consumer mostly
timeshare one core and the gain is limited to NumPy's internal
GIL-released stretches.  Under the compiled (Numba) backend the hash
kernels are ``nogil`` — the prefetch thread hashes batch t+1 while the
training thread works on batch t for real concurrency (measured by
``benchmarks/bench_pipeline_overlap.py``; results are bit-identical
either way).  The prefetch hasher follows the classifier's own
``backend`` override automatically (it is built over
``classifier.family``).

Classifiers whose ``fit_batch`` takes no ``rows`` argument (no hashing
to prefetch — e.g. the uncompressed baseline) still pipeline batch
*construction*; they just receive the batch alone.
"""

from __future__ import annotations

import inspect
import queue
import threading
from typing import Iterable

from repro.data.batch import iter_batches
from repro.data.sparse import SparseExample
from repro.hashing.batch import BatchHasher
from repro.learning.base import OnlineErrorTracker, StreamingClassifier

__all__ = ["fit_stream_pipelined"]

#: Sentinel closing the queue (None is not used: a failed producer puts
#: an exception wrapper instead, which the consumer re-raises).
_DONE = object()


class _ProducerError:
    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


def _accepts_rows(classifier: StreamingClassifier) -> bool:
    try:
        sig = inspect.signature(classifier.fit_batch)
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    return "rows" in sig.parameters


def fit_stream_pipelined(
    classifier: StreamingClassifier,
    stream: Iterable[SparseExample],
    batch_size: int = 256,
    tracker: OnlineErrorTracker | None = None,
    queue_depth: int = 1,
) -> OnlineErrorTracker:
    """Batched predict-then-update pass with prefetched hashing.

    The pipelined analogue of
    :meth:`~repro.learning.base.StreamingClassifier.fit_stream`: same
    arguments, same progressive-validation tracker, same final state —
    only the wall-clock differs, because batch construction and hashing
    of batch t+1 overlap the training of batch t.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if queue_depth < 1:
        raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
    if tracker is None:
        tracker = OnlineErrorTracker()

    with_rows = _accepts_rows(classifier) and hasattr(classifier, "family")
    hasher = BatchHasher(classifier.family) if with_rows else None
    # A classifier with a scalar fast path (the AWM-Sketch) hashes
    # 1-sparse examples itself and ignores prefetched rows, so hashing
    # an all-1-sparse batch up front would be pure waste competing for
    # the GIL — mirror fit_batch's own lazy-hashing rule.
    scalar_fast = bool(getattr(classifier, "scalar_fast_path", False))
    buffer: queue.Queue = queue.Queue(maxsize=queue_depth)
    cancelled = threading.Event()

    def _put(item) -> bool:
        """Blocking put that aborts if the consumer has bailed out."""
        while not cancelled.is_set():
            try:
                buffer.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def producer() -> None:
        try:
            for batch in iter_batches(stream, batch_size):
                prehash = hasher is not None and not (
                    scalar_fast and batch.nnz == len(batch)
                )
                rows = hasher.rows(batch.indices) if prehash else None
                if not _put((batch, rows)):
                    return
        except BaseException as exc:  # noqa: BLE001 - relayed to consumer
            _put(_ProducerError(exc))
        else:
            _put(_DONE)

    thread = threading.Thread(
        target=producer, name="repro-pipeline-prefetch", daemon=True
    )
    thread.start()
    try:
        while True:
            item = buffer.get()
            if item is _DONE:
                break
            if isinstance(item, _ProducerError):
                raise item.exc
            batch, rows = item
            if rows is not None:
                margins = classifier.fit_batch(batch, rows=rows)
            else:
                margins = classifier.fit_batch(batch)
            for margin, label in zip(
                margins.tolist(), batch.labels.tolist()
            ):
                tracker.record(1 if margin >= 0.0 else -1, label)
    finally:
        cancelled.set()
        thread.join(timeout=5.0)
    return tracker
