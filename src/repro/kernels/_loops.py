"""Loop-style kernel implementations (the compiled-backend source).

One set of plain-Python functions written in the restricted style Numba
can compile (``nopython`` mode: typed NumPy scalars, no Python objects,
no cross-function calls): the ``numba`` backend wraps each with
``@njit(cache=True, nogil=True)``, and the ``python`` backend runs the
*same functions* interpreted — which is what lets the cross-backend
equivalence suite exercise the exact code the compiler will see even on
hosts without Numba installed.

Bit-level discipline mirrors the NumPy reference backend:

* margins use a port of CPython's ``math.fsum`` (Shewchuk partials with
  the same final round-half-even correction), so the exactly rounded
  sum equals ``math.fsum`` bit-for-bit for finite inputs whatever the
  summation order;
* the polynomial hash reproduces the reference's single-conditional-
  subtract Mersenne reduction with exact 128-bit products emulated in
  32-bit limbs (Numba has no big ints);
* scatters accumulate duplicates in C element order, matching
  ``np.add.at``;
* medians sort per-feature value copies — sorting selects the same
  multiset, so picked values are identical to the reference's row sort.

The exact-sum core is deliberately *inlined* into both margin kernels
instead of shared through a helper: Numba caching of cross-module /
closure calls is fragile, and a self-contained kernel compiles the same
way everywhere.  :func:`exact_fsum` is the standalone (tested) copy of
that algorithm.

Everything here is deterministic and GIL-releasing under Numba
(``nogil=True``), which is what lets the pipelined ingestion path
overlap hashing with training for real wall-clock gains.
"""

from __future__ import annotations

import math

import numpy as np

#: Maximum number of non-overlapping float64 partials math.fsum can
#: accumulate (exponent range / mantissa width, ~40); sized with slack.
_MAX_PARTIALS = 64

_M61 = np.uint64(0x1FFFFFFFFFFFFFFF)  # 2**61 - 1
_LOW32 = np.uint64(0xFFFFFFFF)


def exact_fsum(values: np.ndarray) -> float:
    """Exactly rounded sum of a 1-d float64 array (math.fsum port).

    Shewchuk's grow-expansion accumulation followed by CPython's final
    summation with the round-half-even correction; bit-identical to
    ``math.fsum`` for finite inputs.
    """
    partials = np.empty(_MAX_PARTIALS, dtype=np.float64)
    n = 0
    for k in range(values.shape[0]):
        x = values[k]
        i = 0
        for j in range(n):
            y = partials[j]
            if abs(x) < abs(y):
                t = x
                x = y
                y = t
            hi = x + y
            lo = y - (hi - x)
            if lo != 0.0:
                partials[i] = lo
                i += 1
            x = hi
        partials[i] = x
        n = i + 1
    # Final rounding: sum from the largest partial down, stopping at
    # the first inexact step, then nudge for round-half-even exactly as
    # CPython's math_fsum does.
    if n == 0:
        return 0.0
    n -= 1
    hi = partials[n]
    lo = 0.0
    while n > 0:
        x = hi
        n -= 1
        y = partials[n]
        hi = x + y
        yr = hi - x
        lo = y - yr
        if lo != 0.0:
            break
    if n > 0 and (
        (lo < 0.0 and partials[n - 1] < 0.0)
        or (lo > 0.0 and partials[n - 1] > 0.0)
    ):
        y = lo * 2.0
        x = hi + y
        yr = x - hi
        if y == yr:
            hi = x
    return hi


def tabulation_hash(
    flat_tables: np.ndarray, offsets: np.ndarray, keys: np.ndarray
) -> np.ndarray:
    n = keys.shape[0]
    n_bytes = offsets.shape[1]
    out = np.empty(n, dtype=np.uint64)
    for i in range(n):
        k = keys[i]
        h = np.uint64(0)
        for b in range(n_bytes):
            byte = (k >> np.uint64(8 * b)) & np.uint64(0xFF)
            h ^= flat_tables[b * 256 + int(byte)]
        out[i] = h
    return out


def polynomial_hash(coeffs: np.ndarray, keys: np.ndarray) -> np.ndarray:
    n = keys.shape[0]
    k = coeffs.shape[0]
    out = np.empty(n, dtype=np.uint64)
    for i in range(n):
        key = keys[i]
        # One reference-identical reduction of the key: a single
        # fold plus a single conditional subtract.
        x = (key & _M61) + (key >> np.uint64(61))
        if x >= _M61:
            x -= _M61
        acc = coeffs[k - 1]
        for j in range(k - 2, -1, -1):
            # t = acc * x + c exactly, via 32-bit limbs (acc, x < 2**61
            # keep every intermediate below 2**64 — no wraparound).
            a_lo = acc & _LOW32
            a_hi = acc >> np.uint64(32)
            x_lo = x & _LOW32
            x_hi = x >> np.uint64(32)
            lo = a_lo * x_lo
            mid = a_lo * x_hi + a_hi * x_lo
            hi = a_hi * x_hi
            # Assemble t = hi * 2**64 + mid * 2**32 + lo as (H, L).
            sum_mid = (lo >> np.uint64(32)) + (mid & _LOW32)
            low = ((sum_mid & _LOW32) << np.uint64(32)) + (lo & _LOW32)
            high = hi + (mid >> np.uint64(32)) + (sum_mid >> np.uint64(32))
            # t += c with carry.
            c = coeffs[j]
            s_lo = (low & _LOW32) + (c & _LOW32)
            s_hi = (low >> np.uint64(32)) + (c >> np.uint64(32)) + (
                s_lo >> np.uint64(32)
            )
            low = ((s_hi & _LOW32) << np.uint64(32)) + (s_lo & _LOW32)
            high = high + (s_hi >> np.uint64(32))
            # Reference reduction: r = (t & M) + (t >> 61), one
            # conditional subtract (t >> 61 == (H << 3) + (L >> 61)).
            r = (low & _M61) + (
                (high << np.uint64(3)) + (low >> np.uint64(61))
            )
            if r >= _M61:
                r -= _M61
            acc = r
        out[i] = acc
    return out


def bucket_sign(
    h: np.ndarray, width: int, pow2: bool, sign_bit: int
) -> tuple[np.ndarray, np.ndarray]:
    n = h.shape[0]
    buckets = np.empty(n, dtype=np.int64)
    signs = np.empty(n, dtype=np.float64)
    mask = np.uint64(width - 1)
    w = np.uint64(width)
    sb = np.uint64(sign_bit)
    one = np.uint64(1)
    for i in range(n):
        v = h[i]
        if pow2:
            buckets[i] = np.int64(v & mask)
        else:
            buckets[i] = np.int64(v % w)
        if (v >> sb) & one:
            signs[i] = 1.0
        else:
            signs[i] = -1.0
    return buckets, signs


def gather_rows_t(
    table_flat: np.ndarray, flat_buckets: np.ndarray
) -> np.ndarray:
    depth = flat_buckets.shape[0]
    nnz = flat_buckets.shape[1]
    out = np.empty((nnz, depth), dtype=np.float64)
    for j in range(depth):
        for i in range(nnz):
            out[i, j] = table_flat[flat_buckets[j, i]]
    return out


def margin(
    table_flat: np.ndarray,
    flat_buckets: np.ndarray,
    sign_values: np.ndarray,
    scale: float,
    sqrt_s: float,
) -> float:
    # Fused gather * sign_values with an inlined exact fsum (see the
    # module docstring for why the fsum core is not a shared helper).
    fb = flat_buckets.ravel()
    sv = sign_values.ravel()
    partials = np.empty(_MAX_PARTIALS, dtype=np.float64)
    n = 0
    for k in range(fb.shape[0]):
        x = table_flat[fb[k]] * sv[k]
        i = 0
        for j in range(n):
            y = partials[j]
            if abs(x) < abs(y):
                t = x
                x = y
                y = t
            hi = x + y
            lo = y - (hi - x)
            if lo != 0.0:
                partials[i] = lo
                i += 1
            x = hi
        partials[i] = x
        n = i + 1
    if n == 0:
        return scale * 0.0 / sqrt_s
    n -= 1
    hi = partials[n]
    lo = 0.0
    while n > 0:
        x = hi
        n -= 1
        y = partials[n]
        hi = x + y
        yr = hi - x
        lo = y - yr
        if lo != 0.0:
            break
    if n > 0 and (
        (lo < 0.0 and partials[n - 1] < 0.0)
        or (lo > 0.0 and partials[n - 1] > 0.0)
    ):
        y = lo * 2.0
        x = hi + y
        yr = x - hi
        if y == yr:
            hi = x
    return scale * hi / sqrt_s


def margin_gathered(
    gathered: np.ndarray,
    sign_values: np.ndarray,
    scale: float,
    sqrt_s: float,
) -> float:
    g = gathered.ravel()
    sv = sign_values.ravel()
    partials = np.empty(_MAX_PARTIALS, dtype=np.float64)
    n = 0
    for k in range(g.shape[0]):
        x = g[k] * sv[k]
        i = 0
        for j in range(n):
            y = partials[j]
            if abs(x) < abs(y):
                t = x
                x = y
                y = t
            hi = x + y
            lo = y - (hi - x)
            if lo != 0.0:
                partials[i] = lo
                i += 1
            x = hi
        partials[i] = x
        n = i + 1
    if n == 0:
        return scale * 0.0 / sqrt_s
    n -= 1
    hi = partials[n]
    lo = 0.0
    while n > 0:
        x = hi
        n -= 1
        y = partials[n]
        hi = x + y
        yr = hi - x
        lo = y - yr
        if lo != 0.0:
            break
    if n > 0 and (
        (lo < 0.0 and partials[n - 1] < 0.0)
        or (lo > 0.0 and partials[n - 1] > 0.0)
    ):
        y = lo * 2.0
        x = hi + y
        yr = x - hi
        if y == yr:
            hi = x
    return scale * hi / sqrt_s


def scatter_add(
    table_flat: np.ndarray, flat_buckets: np.ndarray, deltas: np.ndarray
) -> None:
    # C element order, matching np.add.at's buffered accumulation.
    fb = flat_buckets.ravel()
    d = deltas.ravel()
    for k in range(fb.shape[0]):
        table_flat[fb[k]] += d[k]


def median_estimate(
    gathered_t: np.ndarray, signs_t: np.ndarray, factor: float
) -> np.ndarray:
    nnz = gathered_t.shape[0]
    depth = gathered_t.shape[1]
    out = np.empty(nnz, dtype=np.float64)
    if depth == 1:
        for i in range(nnz):
            out[i] = factor * (signs_t[i, 0] * gathered_t[i, 0])
        return out
    buf = np.empty(depth, dtype=np.float64)
    mid = depth // 2
    odd = depth % 2 == 1
    for i in range(nnz):
        for j in range(depth):
            buf[j] = signs_t[i, j] * gathered_t[i, j]
        # Insertion sort: depth is small (<= 32) and sorting selects
        # the same values as the reference's vectorized row sort.
        for a in range(1, depth):
            v = buf[a]
            b = a - 1
            while b >= 0 and buf[b] > v:
                buf[b + 1] = buf[b]
                b -= 1
            buf[b + 1] = v
        if odd:
            out[i] = factor * buf[mid]
        else:
            out[i] = factor * (0.5 * (buf[mid - 1] + buf[mid]))
    return out


def estimate_bound(
    table_flat: np.ndarray, flat_buckets: np.ndarray
) -> float:
    fb = flat_buckets.ravel()
    hi = 0.0
    for k in range(fb.shape[0]):
        v = abs(table_flat[fb[k]])
        if v > hi:
            hi = v
    return hi


def screen_abs_gt(values: np.ndarray, threshold: float) -> np.ndarray:
    n = values.shape[0]
    out = np.empty(n, dtype=np.intp)
    count = 0
    for i in range(n):
        if abs(values[i]) > threshold:
            out[count] = i
            count += 1
    return out[:count]


#: Lazy-scale underflow threshold (== kernels.api.RENORM_THRESHOLD and
#: the classifiers' _RENORM_THRESHOLD; asserted equal by the fuzz suite).
_RENORM = 1e-150


def fused_update(
    table_flat: np.ndarray,
    flat_buckets: np.ndarray,
    sign_values: np.ndarray,
    indptr: np.ndarray,
    labels: np.ndarray,
    etas: np.ndarray,
    lam: float,
    scale: float,
    sqrt_s: float,
    loss_id: int,
    loss_param: float,
    margins_out: np.ndarray,
    gathered_out: np.ndarray,
    scales_out: np.ndarray,
    scratch: np.ndarray,
    touched_out: np.ndarray,
) -> float:
    # The whole per-example chain of the batched fit_batch loop — margin
    # (inlined exact fsum, as in :func:`margin`), loss derivative, lazy
    # decay + renorm, eta-scaled scatter — in one call; optionally
    # records each example's post-update gathered cells and scale for
    # the decoupled heap-maintain pass, plus the touched flat indices /
    # renorm-fold count into ``touched_out`` (see kernels.api).
    # ``scratch`` is unused here (partials live on the stack); the
    # signature matches the numpy composition, which needs it.
    n = margins_out.shape[0]
    depth = flat_buckets.shape[0]
    record = gathered_out.shape[0] > 0
    n_touched = touched_out.shape[0]
    record_touched = n_touched > 1
    if n_touched > 0:
        touched_out[0] = 0
    pos = 1
    partials = np.empty(_MAX_PARTIALS, dtype=np.float64)
    for i in range(n):
        lo = indptr[i]
        hi = indptr[i + 1]
        # --- margin: exactly rounded sum of table[fb] * sv ----------
        np_ = 0
        for j in range(depth):
            for p in range(lo, hi):
                x = table_flat[flat_buckets[j, p]] * sign_values[j, p]
                k = 0
                for q in range(np_):
                    y = partials[q]
                    if abs(x) < abs(y):
                        t = x
                        x = y
                        y = t
                    hi_p = x + y
                    lo_p = y - (hi_p - x)
                    if lo_p != 0.0:
                        partials[k] = lo_p
                        k += 1
                    x = hi_p
                partials[k] = x
                np_ = k + 1
        if np_ == 0:
            total = 0.0
        else:
            np_ -= 1
            hi_p = partials[np_]
            lo_p = 0.0
            while np_ > 0:
                x = hi_p
                np_ -= 1
                y = partials[np_]
                hi_p = x + y
                yr = hi_p - x
                lo_p = y - yr
                if lo_p != 0.0:
                    break
            if np_ > 0 and (
                (lo_p < 0.0 and partials[np_ - 1] < 0.0)
                or (lo_p > 0.0 and partials[np_ - 1] > 0.0)
            ):
                y = lo_p * 2.0
                x = hi_p + y
                yr = x - hi_p
                if y == yr:
                    hi_p = x
            total = hi_p
        tau = scale * total / sqrt_s
        margins_out[i] = tau
        # --- gradient step ------------------------------------------
        # The loss derivative is inlined (the same no-cross-call rule as
        # the fsum core): operation for operation the arithmetic of the
        # repro.learning.losses classes, selected by kernel id.
        y_i = labels[i]
        ytau = y_i * tau
        if loss_id == 0:  # logistic
            if ytau >= 0.0:
                e = math.exp(-ytau)
                g = -e / (1.0 + e)
            else:
                g = -1.0 / (1.0 + math.exp(ytau))
        elif loss_id == 1:  # smoothed hinge (loss_param = gamma)
            if ytau >= 1.0:
                g = 0.0
            elif ytau >= 1.0 - loss_param:
                g = (ytau - 1.0) / loss_param
            else:
                g = -1.0
        elif loss_id == 2:  # hinge
            g = -1.0 if ytau <= 1.0 else 0.0
        else:  # squared
            g = ytau - 1.0
        eta = etas[i]
        if lam > 0.0:
            scale *= 1.0 - eta * lam
            if scale < _RENORM:
                for c in range(table_flat.shape[0]):
                    table_flat[c] *= scale
                scale = 1.0
                if n_touched > 0:
                    touched_out[0] += 1
        coeff = -eta * y_i * g / (sqrt_s * scale)
        for j in range(depth):
            for p in range(lo, hi):
                table_flat[flat_buckets[j, p]] += coeff * sign_values[j, p]
                if record_touched:
                    touched_out[pos] = flat_buckets[j, p]
                    pos += 1
        if record:
            for p in range(lo, hi):
                for j in range(depth):
                    gathered_out[p, j] = table_flat[flat_buckets[j, p]]
            scales_out[i] = scale
    return scale


def fused_predict(
    table_flat: np.ndarray,
    flat_buckets: np.ndarray,
    sign_values: np.ndarray,
    indptr: np.ndarray,
    scale: float,
    sqrt_s: float,
    out: np.ndarray,
    scratch: np.ndarray,
) -> None:
    # Read-only batch margins: per example, the exact :func:`margin`
    # reduction (inlined fsum) — bit-identical to scalar predicts.
    n = out.shape[0]
    depth = flat_buckets.shape[0]
    partials = np.empty(_MAX_PARTIALS, dtype=np.float64)
    for i in range(n):
        lo = indptr[i]
        hi = indptr[i + 1]
        np_ = 0
        for j in range(depth):
            for p in range(lo, hi):
                x = table_flat[flat_buckets[j, p]] * sign_values[j, p]
                k = 0
                for q in range(np_):
                    y = partials[q]
                    if abs(x) < abs(y):
                        t = x
                        x = y
                        y = t
                    hi_p = x + y
                    lo_p = y - (hi_p - x)
                    if lo_p != 0.0:
                        partials[k] = lo_p
                        k += 1
                    x = hi_p
                partials[k] = x
                np_ = k + 1
        if np_ == 0:
            total = 0.0
        else:
            np_ -= 1
            hi_p = partials[np_]
            lo_p = 0.0
            while np_ > 0:
                x = hi_p
                np_ -= 1
                y = partials[np_]
                hi_p = x + y
                yr = hi_p - x
                lo_p = y - yr
                if lo_p != 0.0:
                    break
            if np_ > 0 and (
                (lo_p < 0.0 and partials[np_ - 1] < 0.0)
                or (lo_p > 0.0 and partials[np_ - 1] > 0.0)
            ):
                y = lo_p * 2.0
                x = hi_p + y
                yr = x - hi_p
                if y == yr:
                    hi_p = x
            total = hi_p
        out[i] = scale * total / sqrt_s


def fused_awm_update(
    table_flat: np.ndarray,
    flat_tail: np.ndarray,
    signs_tail: np.ndarray,
    tail_values: np.ndarray,
    heap_raw: np.ndarray,
    heap_slots: np.ndarray,
    heap_xvals: np.ndarray,
    n_heap: int,
    y: int,
    eta: float,
    decay: float,
    lam: float,
    scale: float,
    heap_scale: float,
    sqrt_s: float,
    loss_id: int,
    loss_param: float,
    l1: float,
    gathered_out: np.ndarray,
    candidates_out: np.ndarray,
) -> tuple:
    # The whole AWM per-example chain (see kernels.api) in one call:
    # active-set margin + tail margin (inlined exact fsum), inlined loss
    # derivative, both lazy decays with their renorm folds, the member
    # gradient step, tail recovery minus step into candidates_out, and
    # the promotion screen — finishing with the whole-tail stay-scatter
    # only when nothing can promote (handled = 1.0).
    depth = flat_tail.shape[0]
    tail_n = flat_tail.shape[1]
    m = heap_slots.shape[0]
    # --- margin: members first (sequential adds, element order), then
    # the tail's exactly rounded margin_gathered -----------------------
    tau = 0.0
    for i in range(m):
        tau += (heap_raw[heap_slots[i]] * heap_scale) * heap_xvals[i]
    for j in range(depth):
        for p in range(tail_n):
            gathered_out[p, j] = table_flat[flat_tail[j, p]]
    partials = np.empty(_MAX_PARTIALS, dtype=np.float64)
    np_ = 0
    for p in range(tail_n):
        for j in range(depth):
            x = gathered_out[p, j] * (signs_tail[j, p] * tail_values[p])
            k = 0
            for q in range(np_):
                yv = partials[q]
                if abs(x) < abs(yv):
                    t = x
                    x = yv
                    yv = t
                hi_p = x + yv
                lo_p = yv - (hi_p - x)
                if lo_p != 0.0:
                    partials[k] = lo_p
                    k += 1
                x = hi_p
            partials[k] = x
            np_ = k + 1
    if np_ == 0:
        total = 0.0
    else:
        np_ -= 1
        hi_p = partials[np_]
        lo_p = 0.0
        while np_ > 0:
            x = hi_p
            np_ -= 1
            yv = partials[np_]
            hi_p = x + yv
            yr = hi_p - x
            lo_p = yv - yr
            if lo_p != 0.0:
                break
        if np_ > 0 and (
            (lo_p < 0.0 and partials[np_ - 1] < 0.0)
            or (lo_p > 0.0 and partials[np_ - 1] > 0.0)
        ):
            yv = lo_p * 2.0
            x = hi_p + yv
            yr = x - hi_p
            if yv == yr:
                hi_p = x
        total = hi_p
    tau += scale * total / sqrt_s
    # --- loss derivative (inlined, selected by kernel id) -------------
    ytau = y * tau
    if loss_id == 0:  # logistic
        if ytau >= 0.0:
            e = math.exp(-ytau)
            g = -e / (1.0 + e)
        else:
            g = -1.0 / (1.0 + math.exp(ytau))
    elif loss_id == 1:  # smoothed hinge (loss_param = gamma)
        if ytau >= 1.0:
            g = 0.0
        elif ytau >= 1.0 - loss_param:
            g = (ytau - 1.0) / loss_param
        else:
            g = -1.0
    elif loss_id == 2:  # hinge
        g = -1.0 if ytau <= 1.0 else 0.0
    else:  # squared
        g = ytau - 1.0
    # --- lazy decays: store scale then table scale, each with the
    # 1e-150 renorm fold; a table fold stales the gather --------------
    if lam > 0.0:
        heap_scale *= decay
        if heap_scale < _RENORM:
            for i in range(n_heap):
                heap_raw[i] *= heap_scale
            heap_scale = 1.0
        scale *= decay
        if scale < _RENORM:
            for c in range(table_flat.shape[0]):
                table_flat[c] *= scale
            scale = 1.0
            for j in range(depth):
                for p in range(tail_n):
                    gathered_out[p, j] = table_flat[flat_tail[j, p]]
    step = eta * y * g
    # --- member gradient step (add_many semantics) --------------------
    if heap_scale == 1.0:
        for i in range(m):
            heap_raw[heap_slots[i]] += -step * heap_xvals[i]
    else:
        for i in range(m):
            heap_raw[heap_slots[i]] += (-step * heap_xvals[i]) / heap_scale
    # --- tail recovery (median_estimate at the query factor, optional
    # l1 soft-threshold) minus the gradient step ----------------------
    factor = scale if depth == 1 else sqrt_s * scale
    if depth == 1:
        for p in range(tail_n):
            qv = factor * (signs_tail[0, p] * gathered_out[p, 0])
            if l1 > 0.0:
                aq = abs(qv) - l1
                if aq < 0.0:
                    aq = 0.0
                if qv > 0.0:
                    qv = aq
                elif qv < 0.0:
                    qv = -aq
                else:
                    qv = 0.0 * aq
            candidates_out[p] = qv - step * tail_values[p]
    else:
        buf = np.empty(depth, dtype=np.float64)
        mid = depth // 2
        odd = depth % 2 == 1
        for p in range(tail_n):
            for j in range(depth):
                buf[j] = signs_tail[j, p] * gathered_out[p, j]
            for a in range(1, depth):
                v = buf[a]
                b = a - 1
                while b >= 0 and buf[b] > v:
                    buf[b + 1] = buf[b]
                    b -= 1
                buf[b + 1] = v
            if odd:
                qv = factor * buf[mid]
            else:
                qv = factor * (0.5 * (buf[mid - 1] + buf[mid]))
            if l1 > 0.0:
                aq = abs(qv) - l1
                if aq < 0.0:
                    aq = 0.0
                if qv > 0.0:
                    qv = aq
                elif qv < 0.0:
                    qv = -aq
                else:
                    qv = 0.0 * aq
            candidates_out[p] = qv - step * tail_values[p]
    # --- promotion screen against the store's min priority ------------
    minabs = abs(heap_raw[0])
    for i in range(1, n_heap):
        v = abs(heap_raw[i])
        if v < minabs:
            minabs = v
    threshold = minabs * heap_scale
    for p in range(tail_n):
        if abs(candidates_out[p]) > threshold:
            # A promotion is possible: hand back to the sequential
            # maintain loop before any table write.
            return (tau, scale, heap_scale, 0.0)
    # --- whole-tail stay-scatter (C element order) --------------------
    base = -step / (sqrt_s * scale)
    for j in range(depth):
        for p in range(tail_n):
            table_flat[flat_tail[j, p]] += (base * tail_values[p]) * signs_tail[j, p]
    return (tau, scale, heap_scale, 1.0)


def fused_query(
    table_flat: np.ndarray,
    flat_buckets: np.ndarray,
    signs_t: np.ndarray,
    factor: float,
    gathered_out: np.ndarray,
    est_out: np.ndarray,
    scratch: np.ndarray,
) -> None:
    # Gather + median recovery in one pass: gathered_out receives the
    # transposed (nnz, depth) gather, est_out the factor-scaled medians
    # of signs_t * gathered (same selection as :func:`median_estimate`).
    depth = flat_buckets.shape[0]
    nnz = flat_buckets.shape[1]
    for j in range(depth):
        for i in range(nnz):
            gathered_out[i, j] = table_flat[flat_buckets[j, i]]
    if depth == 1:
        for i in range(nnz):
            est_out[i] = factor * (signs_t[i, 0] * gathered_out[i, 0])
        return
    buf = np.empty(depth, dtype=np.float64)
    mid = depth // 2
    odd = depth % 2 == 1
    for i in range(nnz):
        for j in range(depth):
            buf[j] = signs_t[i, j] * gathered_out[i, j]
        for a in range(1, depth):
            v = buf[a]
            b = a - 1
            while b >= 0 and buf[b] > v:
                buf[b + 1] = buf[b]
                b -= 1
            buf[b + 1] = v
        if odd:
            est_out[i] = factor * buf[mid]
        else:
            est_out[i] = factor * (0.5 * (buf[mid - 1] + buf[mid]))
