"""The uniform kernel API every backend must implement.

A *kernel backend* is a named bundle of the hot inner-loop primitives
the sketch classifiers are built from.  Every backend implements the
same function set (:data:`KERNEL_NAMES`) with the same *bit-level*
semantics — the NumPy backend is the executable reference (the code
extracted verbatim from the pre-kernel classifiers), and every other
backend is fuzz-checked against it in ``tests/test_kernel_backends.py``
before it may be selected.  The contract is the same
sequential-equivalence discipline the batched engine already follows:
identical streams must produce bit-identical tables, heap state and
predictions whichever backend computed them.

Kernel signatures (shapes use ``depth`` = sketch rows, ``nnz`` = number
of key/feature positions in the call):

``tabulation_hash(flat_tables, offsets, keys) -> uint64[nnz]``
    XOR of per-byte table lookups.  ``flat_tables`` is the flattened
    ``(n_bytes, 256)`` uint64 table (byte ``b`` of a key indexes
    ``flat_tables[256 * b + byte]``), ``offsets`` the ``(1, n_bytes)``
    array of ``256 * b`` offsets, ``keys`` a contiguous 1-d uint64
    array.

``polynomial_hash(coeffs, keys) -> array[nnz]``
    Horner evaluation of the degree-(k-1) polynomial over the Mersenne
    prime 2**61 - 1, reproducing the exact (single conditional
    subtract) reduction steps of
    :func:`repro.hashing.universal._mod_mersenne61`.  ``coeffs`` is the
    uint64 coefficient array (c0 first), ``keys`` a 1-d uint64 array.
    Values are equal across backends; the dtype may be ``object`` (the
    reference's exact-int path) or ``uint64`` (compiled 128-bit limb
    arithmetic).

``bucket_sign(h, width, pow2, sign_bit) -> (int64[nnz], float64[nnz])``
    Derive (bucket, sign) pairs from raw 64-bit hash values: bucket
    from the low bits (mask when ``pow2`` else modulo), sign from bit
    ``sign_bit`` mapped to {-1.0, +1.0}.

``gather_rows_t(table_flat, flat_buckets) -> float64[nnz, depth]``
    Transposed table gather ``table_flat.take(flat_buckets.T)`` —
    the (nnz, depth) layout whose per-feature rows are contiguous,
    shared by the margin and median-recovery kernels.

``margin(table_flat, flat_buckets, sign_values, scale, sqrt_s) -> float``
    The linear margin ``scale * sum(table[b] * sv) / sqrt_s`` with an
    *exactly rounded* sum (``math.fsum`` semantics), so the result is
    independent of summation order and buffer alignment.

``margin_gathered(gathered, sign_values, scale, sqrt_s) -> float``
    Same margin from an already-gathered cell block (the AWM kernel
    shares one transposed gather between margin and tail queries).

``scatter_add(table_flat, flat_buckets, deltas) -> None``
    ``np.add.at`` semantics: accumulate ``deltas`` into ``table_flat``
    at ``flat_buckets``, duplicates folding in C element order.

``median_estimate(gathered_t, signs_t, factor) -> float64[nnz]``
    Count-Sketch recovery: per-feature median over rows of
    ``signs_t * gathered_t`` (both ``(nnz, depth)``), times ``factor``.
    ``depth == 1`` skips the sort; even depths average the two middle
    values as ``0.5 * (a + b)``.

``estimate_bound(table_flat, flat_buckets) -> float``
    ``max |table_flat[flat_buckets]|`` — the cheap upper bound that
    lets the WM maintain loop skip recovery when no estimate could
    beat the admission threshold.  ``flat_buckets`` must be non-empty.

``screen_abs_gt(values, threshold) -> integer[m]``
    Ascending positions where ``|values| > threshold`` — the admission
    screen of the WM maintain loop, the AWM tail-promotion screen and
    the top-K store's ``push_many`` pre-screen (abs priority).

Fused mega-kernels (PR 5)
-------------------------
The three ``fused_*`` kernels collapse whole per-example chains of the
primitives above into one backend call over caller-provided
(workspace-preallocated) buffers.  Their contract is *compositional*:
each is bit-identical to the documented sequence of primitive kernels,
which is what the fuzz suite (``tests/test_fused_kernels.py``) checks —
the NumPy implementations are literally composed from the reference
primitives, and the loop backends re-derive the same floats.  All of
them take a trailing float64 ``scratch`` parameter reserved for
backends that want caller-owned intermediates; **it may be (and in
this repository always is) size 0** — the shipped backends keep their
per-example intermediates internal, and a backend that wants to use
``scratch`` must size-check it and allocate its own buffers when it is
too small.

Loss derivatives are selected by an integer ``loss_id`` matching
:attr:`repro.learning.losses.Loss.kernel_id` (0 logistic, 1 smoothed
hinge with ``loss_param`` = gamma, 2 hinge, 3 squared); a loss without
a ``kernel_id`` simply keeps the unfused path.

``fused_update(table_flat, flat_buckets, sign_values, indptr, labels,
etas, lam, scale, sqrt_s, loss_id, loss_param, margins_out,
gathered_out, scales_out, scratch, touched_out) -> float``
    One mini-batch of sequential OGD updates: per example ``i`` (CSR
    slice ``indptr[i]:indptr[i+1]``) compute the exactly-rounded margin
    (the ``margin`` kernel), the loss derivative, the lazy L2 decay of
    ``scale`` (with the 1e-150 underflow renormalization folded into
    ``table_flat``), and the eta-scaled ``scatter_add`` — state
    bit-identical to the unfused per-example chain.  Pre-update margins
    land in ``margins_out``.  When ``gathered_out`` is non-empty
    (shape ``(nnz, depth)``), the example's *post-update* table cells
    are recorded into its rows and the post-decay scale into
    ``scales_out[i]`` — exactly what the decoupled WM heap-maintain
    pass needs to replay admission decisions bit-identically.

    ``touched_out`` is the int64 dirty-set recording stream (the
    fourth recorded stream, alongside margins / gathers / scales; same
    bit-equivalence obligations).  Size 0
    (:data:`repro.kernels.workspace.EMPTY_TOUCHED`) disables it.  Size
    >= 1: ``touched_out[0]`` receives the number of underflow
    renormalizations the call performed (a fold rewrites *every*
    bucket, so callers tracking dirtiness must mark the whole table
    when it is nonzero — the scale-comparison shortcut is not exact
    over pathological batch lengths).  Size >= ``1 + depth * nnz``
    (``nnz = indptr[n] - indptr[0]``): additionally records every
    scattered flat bucket index, in the exact element order the
    scatters applied them (duplicates included), into
    ``touched_out[1:1 + depth * nnz]``.  Sizes strictly between 1 and
    the full recording length are a caller error (the kernels do not
    bounds-check the fast path).

    Returns the final scale.  Callers must pre-validate ``eta * lam <
    1`` for the whole window (the unfused chain raises mid-batch; the
    fused kernel assumes validity).

``fused_predict(table_flat, flat_buckets, sign_values, indptr, scale,
sqrt_s, out, scratch) -> None``
    Read-only batch margins: ``out[i]`` is exactly the ``margin``
    kernel's result for example ``i``'s slice — bit-identical to
    per-example ``predict_margin``, so serving responses do not depend
    on how requests were batched.

``fused_query(table_flat, flat_buckets, signs_t, factor, gathered_out,
est_out, scratch) -> None``
    Recovery queries: one transposed gather (``gather_rows_t``) written
    to ``gathered_out`` plus the ``median_estimate`` of
    ``signs_t * gathered`` times ``factor`` written to ``est_out``.
    Callers that need both the raw cells and the estimates (the AWM
    shared-gather update, the serving ``query_many``) get them from a
    single call.

``fused_awm_update(table_flat, flat_tail, signs_tail, tail_values,
heap_raw, heap_slots, heap_xvals, n_heap, y, eta, decay, lam, scale,
heap_scale, sqrt_s, loss_id, loss_param, l1, gathered_out,
candidates_out) -> (tau, scale, heap_scale, handled)``
    One whole AWM example in a single call: the active-set margin
    contribution (sequential ``raw[slot] * heap_scale * x`` adds, the
    exact element order of the per-example chain), the tail's
    ``margin_gathered`` over a fresh transposed gather into
    ``gathered_out``, the loss derivative, the lazy L2 decay of *both*
    scales (each with the 1e-150 renorm fold; a table fold re-gathers
    ``gathered_out`` so the recovery below sees post-fold cells), the
    active-set gradient step (``add_many`` semantics: deltas divided by
    the store scale unless it is 1.0), the tail recovery
    (``median_estimate`` at factor ``scale`` for depth 1 else
    ``sqrt_s * scale``, soft-thresholded by ``l1`` when positive) minus
    the gradient step into ``candidates_out``, and the promotion screen
    against the store's minimum priority (first-minimum ``|raw|`` over
    the live prefix times ``heap_scale`` — requires the store's
    ``abs``-priority default and a *full* store).  If **no** candidate
    beats the threshold the whole-tail stay-scatter is applied and
    ``handled`` is 1.0; otherwise the kernel stops before any scatter
    and returns ``handled`` 0.0 so the caller can run the sequential
    promotion loop on ``candidates_out`` — either way ``tau`` and both
    post-decay scales come back in the returned 4-tuple (all float64;
    the caller re-syncs model and store state).  Bit-identical, state
    and return, to the unfused ``_update_example`` chain over the same
    inputs — the fuzz suite drives both orders.  ``tail_values`` must
    be non-empty (callers keep the empty-tail fast path).

Non-finite inputs (inf / NaN) are outside the kernel contract: the
classifiers never produce them from finite streams, and the exact-sum
implementations are only specified for finite values.
"""

from __future__ import annotations

#: Every kernel a backend must provide, in documentation order.
KERNEL_NAMES = (
    "tabulation_hash",
    "polynomial_hash",
    "bucket_sign",
    "gather_rows_t",
    "margin",
    "margin_gathered",
    "scatter_add",
    "median_estimate",
    "estimate_bound",
    "screen_abs_gt",
    "fused_update",
    "fused_predict",
    "fused_query",
    "fused_awm_update",
)

#: The lazy-scale underflow threshold shared with the classifiers
#: (``repro.core.sketch_table._RENORM_THRESHOLD``); the fused update
#: kernels renormalize at exactly this boundary so fused and unfused
#: replays fold the scale into the table on the same step.
RENORM_THRESHOLD = 1e-150


class KernelBackend:
    """A named, complete bundle of kernel implementations.

    Parameters
    ----------
    name:
        Registry name (``"numpy"``, ``"numba"``, ``"python"``, ...).
    compiled:
        Whether the kernels run outside the interpreter (informational;
        surfaced in benchmark metadata and checkpoints).
    functions:
        Mapping from kernel name to callable; must cover
        :data:`KERNEL_NAMES` exactly (extras are rejected so a typo in
        a backend module fails loudly at registration, not at dispatch).
    """

    def __init__(self, name: str, compiled: bool, functions: dict):
        missing = set(KERNEL_NAMES) - set(functions)
        if missing:
            raise ValueError(
                f"backend {name!r} is missing kernels: {sorted(missing)}"
            )
        extra = set(functions) - set(KERNEL_NAMES)
        if extra:
            raise ValueError(
                f"backend {name!r} defines unknown kernels: {sorted(extra)}"
            )
        self.name = name
        self.compiled = compiled
        for kernel_name in KERNEL_NAMES:
            setattr(self, kernel_name, functions[kernel_name])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "compiled" if self.compiled else "interpreted"
        return f"<KernelBackend {self.name!r} ({kind})>"
