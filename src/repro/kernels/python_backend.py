"""The interpreted loop backend (``"python"``).

The exact functions the Numba backend compiles, run as plain Python —
roughly 10-100x slower than the NumPy reference, so never selected by
``"auto"``.  It exists for two reasons:

* it is the worked example of adding a third backend (see the README's
  kernels section): implement :data:`~repro.kernels.api.KERNEL_NAMES`,
  expose a ``BACKEND`` object, register a loader in
  ``repro/kernels/__init__.py``;
* it lets the cross-backend equivalence suite exercise the *same source
  code* the compiler will see on hosts where Numba is not installed —
  a numerics bug in ``_loops.py`` is caught here, not first in a
  Numba-equipped CI job.
"""

from __future__ import annotations

from repro.kernels import _loops
from repro.kernels.api import KERNEL_NAMES, KernelBackend

BACKEND = KernelBackend(
    "python",
    compiled=False,
    functions={name: getattr(_loops, name) for name in KERNEL_NAMES},
)
