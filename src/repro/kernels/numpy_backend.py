"""The NumPy reference backend.

These are the hot-loop bodies extracted *verbatim* from the pre-kernel
classifiers (``hashing/tabulation.py``, ``hashing/universal.py``,
``hashing/family.py``, ``core/sketch_table.py``, ``core/awm_sketch.py``
and ``heap/topk.py``) — the executable specification every other
backend is fuzzed against.  Nothing here may change behavior: the
bit-level guarantees of the batched engine (exactly rounded ``fsum``
margins, layout-deterministic ``ufunc.at`` scatters, transposed-sort
medians) are documented at the original call sites and preserved
as-is.
"""

from __future__ import annotations

import math

import numpy as np

from repro.kernels.api import KERNEL_NAMES, KernelBackend

from repro.hashing import universal as _universal


def tabulation_hash(
    flat_tables: np.ndarray, offsets: np.ndarray, keys: np.ndarray
) -> np.ndarray:
    n_bytes = offsets.shape[1]
    if np.little_endian:
        # Reinterpret each 8-byte key as its byte decomposition
        # (little-endian: byte b == (key >> 8b) & 0xFF), then gather
        # all per-byte table entries in a single fancy-index and
        # XOR-reduce — O(1) NumPy calls independent of n_bytes.
        key_bytes = keys.view(np.uint8).reshape(-1, 8)[:, :n_bytes]
    else:  # pragma: no cover - big-endian fallback
        shifts = (8 * np.arange(n_bytes, dtype=np.uint64)).reshape(1, -1)
        key_bytes = ((keys.reshape(-1, 1) >> shifts) & np.uint64(0xFF)).astype(
            np.uint8
        )
    idx = key_bytes.astype(np.intp) + offsets
    return np.bitwise_xor.reduce(flat_tables[idx], axis=1)


def polynomial_hash(coeffs: np.ndarray, keys: np.ndarray) -> np.ndarray:
    # Exact Python-int Horner over object dtype — the reference path of
    # :meth:`repro.hashing.universal.PolynomialHash.hash`.
    coeff_list = [int(c) for c in coeffs.tolist()]
    x = _universal._mod_mersenne61(keys.astype(object))
    acc = np.full(keys.shape, coeff_list[-1], dtype=object)
    for c in reversed(coeff_list[:-1]):
        acc = _universal._mod_mersenne61(acc * x + c)
    return acc


def bucket_sign(
    h: np.ndarray, width: int, pow2: bool, sign_bit: int
) -> tuple[np.ndarray, np.ndarray]:
    if pow2:
        buckets = (h & np.uint64(width - 1)).astype(np.int64)
    else:
        buckets = (h % np.uint64(width)).astype(np.int64)
    bit = ((h >> np.uint64(sign_bit)) & np.uint64(1)).astype(np.int64)
    signs = (2 * bit - 1).astype(np.float64)
    return buckets, signs


def gather_rows_t(
    table_flat: np.ndarray, flat_buckets: np.ndarray
) -> np.ndarray:
    # take() materializes (nnz, depth) C-contiguous, so each feature's
    # row values are adjacent — the layout the median kernel sorts.
    return table_flat.take(flat_buckets.T)


def margin(
    table_flat: np.ndarray,
    flat_buckets: np.ndarray,
    sign_values: np.ndarray,
    scale: float,
    sqrt_s: float,
) -> float:
    # math.fsum is *exactly* rounded, so the reduction is independent
    # of summation order and buffer alignment (NumPy's SIMD .sum() is
    # not) — per-example and batched replays stay bit-identical.
    products = table_flat.take(flat_buckets) * sign_values
    return scale * math.fsum(products.ravel().tolist()) / sqrt_s


def margin_gathered(
    gathered: np.ndarray,
    sign_values: np.ndarray,
    scale: float,
    sqrt_s: float,
) -> float:
    products = gathered * sign_values
    return scale * math.fsum(products.ravel().tolist()) / sqrt_s


def scatter_add(
    table_flat: np.ndarray, flat_buckets: np.ndarray, deltas: np.ndarray
) -> None:
    # One buffered ufunc.at; duplicate buckets accumulate in C element
    # order, the same order as a per-row loop (layout-deterministic).
    np.add.at(table_flat, flat_buckets, deltas)


def median_estimate(
    gathered_t: np.ndarray, signs_t: np.ndarray, factor: float
) -> np.ndarray:
    depth = gathered_t.shape[1]
    if depth == 1:
        return factor * (signs_t[:, 0] * gathered_t[:, 0])
    # In-place row sort plus a middle-column pick selects the exact
    # same values as np.median without its per-call dispatch overhead.
    rows = signs_t * gathered_t
    rows.sort(axis=1)
    mid = depth // 2
    if depth % 2:
        med = rows[:, mid]
    else:
        med = 0.5 * (rows[:, mid - 1] + rows[:, mid])
    return factor * med


def estimate_bound(
    table_flat: np.ndarray, flat_buckets: np.ndarray
) -> float:
    return float(np.abs(table_flat.take(flat_buckets)).max())


def screen_abs_gt(values: np.ndarray, threshold: float) -> np.ndarray:
    return np.flatnonzero(np.abs(values) > threshold)


# ----------------------------------------------------------------------
# Fused mega-kernels: the per-example chains composed from the reference
# primitives above, with every intermediate living in the caller's
# scratch buffer (zero allocations in steady state).  Loss derivatives
# come from the *actual* loss classes, so fused and unfused replays run
# literally the same ``dloss`` code.
# ----------------------------------------------------------------------

def _loss_object(loss_id: int, loss_param: float):
    from repro.learning import losses as _losses

    if loss_id == 0:
        return _LOSS_SINGLETONS.setdefault(0, _losses.LogisticLoss())
    if loss_id == 1:
        key = (1, loss_param)
        obj = _LOSS_SINGLETONS.get(key)
        if obj is None:
            obj = _losses.SmoothedHingeLoss(loss_param)
            _LOSS_SINGLETONS[key] = obj
        return obj
    if loss_id == 2:
        return _LOSS_SINGLETONS.setdefault(2, _losses.HingeLoss())
    if loss_id == 3:
        return _LOSS_SINGLETONS.setdefault(3, _losses.SquaredLoss())
    raise ValueError(f"unknown loss_id {loss_id}")


_LOSS_SINGLETONS: dict = {}

#: Same value as kernels.api.RENORM_THRESHOLD / the classifiers'
#: _RENORM_THRESHOLD (kept literal here to mirror the extraction-site
#: constant; equality is asserted by the fuzz suite).
_RENORM = 1e-150


def fused_update(
    table_flat: np.ndarray,
    flat_buckets: np.ndarray,
    sign_values: np.ndarray,
    indptr: np.ndarray,
    labels: np.ndarray,
    etas: np.ndarray,
    lam: float,
    scale: float,
    sqrt_s: float,
    loss_id: int,
    loss_param: float,
    margins_out: np.ndarray,
    gathered_out: np.ndarray,
    scales_out: np.ndarray,
    scratch: np.ndarray,
    touched_out: np.ndarray,
) -> float:
    # The exact per-example chain of the unfused fit_batch loop with
    # the margin / scatter kernel bodies inlined (``scratch`` unused:
    # NumPy's small-block allocator beats ``np.take(out=)``'s checked
    # copy path for per-example temporaries, measured ~20%; the
    # batch-lifetime arrays are the caller's workspace views).
    dloss = _loss_object(loss_id, loss_param).dloss
    record = gathered_out.shape[0] > 0
    n_touched = touched_out.shape[0]
    record_touched = n_touched > 1
    if n_touched > 0:
        touched_out[0] = 0
    pos = 1
    ip = indptr.tolist()
    ys = labels.tolist()
    es = etas.tolist()
    n = margins_out.shape[0]
    fsum = math.fsum
    add_at = np.add.at
    take = table_flat.take
    ascontiguous = np.ascontiguousarray
    lo = ip[0]
    for i in range(n):
        hi = ip[i + 1]
        # A contiguous copy of the example's bucket block lets both the
        # gather and np.add.at take their 1-d fast paths (the flattened
        # C order is the block's C order, so duplicate accumulation and
        # the exactly-rounded margin see the identical element
        # sequence — bit-for-bit the reference kernels' results).
        fb = ascontiguous(flat_buckets[:, lo:hi])
        sv = sign_values[:, lo:hi]
        # margin kernel body, verbatim.
        products = take(fb) * sv
        tau = scale * fsum(products.ravel().tolist()) / sqrt_s
        margins_out[i] = tau
        y = ys[i]
        g = dloss(y * tau)
        eta = es[i]
        if lam > 0.0:
            scale *= 1.0 - eta * lam
            if scale < _RENORM:
                table_flat *= scale
                scale = 1.0
                if n_touched > 0:
                    touched_out[0] += 1
        # scatter_add kernel body: same values, same element order,
        # through the flat fast path.
        deltas = (-eta * y * g / (sqrt_s * scale)) * sv
        add_at(table_flat, fb.reshape(-1), deltas.reshape(-1))
        if record_touched:
            # The dirty-set stream: the scattered indices in the exact
            # element order the ufunc.at applied them.
            flat_fb = fb.reshape(-1)
            touched_out[pos:pos + flat_fb.shape[0]] = flat_fb
            pos += flat_fb.shape[0]
        if record:
            # gather_rows_t, verbatim, into the recording block.
            gathered_out[lo:hi] = take(fb.T)
            scales_out[i] = scale
        lo = hi
    return scale


def fused_predict(
    table_flat: np.ndarray,
    flat_buckets: np.ndarray,
    sign_values: np.ndarray,
    indptr: np.ndarray,
    scale: float,
    sqrt_s: float,
    out: np.ndarray,
    scratch: np.ndarray,
) -> None:
    ip = indptr.tolist()
    n = out.shape[0]
    fsum = math.fsum
    take = table_flat.take
    lo = ip[0]
    for i in range(n):
        hi = ip[i + 1]
        products = take(flat_buckets[:, lo:hi]) * sign_values[:, lo:hi]
        out[i] = scale * fsum(products.ravel().tolist()) / sqrt_s
        lo = hi


def fused_query(
    table_flat: np.ndarray,
    flat_buckets: np.ndarray,
    signs_t: np.ndarray,
    factor: float,
    gathered_out: np.ndarray,
    est_out: np.ndarray,
    scratch: np.ndarray,
) -> None:
    depth = flat_buckets.shape[0]
    # gather_rows_t verbatim, landing in the caller's block.
    gathered_out[:] = table_flat.take(flat_buckets.T)
    if depth == 1:
        # median_estimate's depth-1 branch: factor * (signs * gathered).
        np.multiply(signs_t[:, 0], gathered_out[:, 0], out=est_out)
        est_out *= factor
        return
    # median_estimate body: rows product, in-place row sort, middle pick.
    rows = signs_t * gathered_out
    rows.sort(axis=1)
    mid = depth // 2
    if depth % 2:
        np.multiply(rows[:, mid], factor, out=est_out)
    else:
        np.add(rows[:, mid - 1], rows[:, mid], out=est_out)
        est_out *= 0.5
        est_out *= factor


def fused_awm_update(
    table_flat: np.ndarray,
    flat_tail: np.ndarray,
    signs_tail: np.ndarray,
    tail_values: np.ndarray,
    heap_raw: np.ndarray,
    heap_slots: np.ndarray,
    heap_xvals: np.ndarray,
    n_heap: int,
    y: int,
    eta: float,
    decay: float,
    lam: float,
    scale: float,
    heap_scale: float,
    sqrt_s: float,
    loss_id: int,
    loss_param: float,
    l1: float,
    gathered_out: np.ndarray,
    candidates_out: np.ndarray,
) -> tuple:
    # The AWM per-example chain composed from the reference primitives —
    # literally the sequence of calls ``_update_example`` makes, so the
    # loop backend above can be fuzzed against it (see kernels.api for
    # the step-by-step contract).
    tau = 0.0
    if heap_slots.size:
        # values_at semantics: (raw[slot] * heap_scale) * x, summed in
        # element order (the reference's sequential += accumulation).
        for p in ((heap_raw[heap_slots] * heap_scale) * heap_xvals).tolist():
            tau += p
    gathered_out[:] = table_flat.take(flat_tail.T)
    tau += margin_gathered(
        gathered_out, (signs_tail * tail_values).T, scale, sqrt_s
    )
    g = _loss_object(loss_id, loss_param).dloss(y * tau)
    if lam > 0.0:
        heap_scale *= decay
        if heap_scale < _RENORM:
            heap_raw[:n_heap] *= heap_scale
            heap_scale = 1.0
        scale *= decay
        if scale < _RENORM:
            table_flat *= scale
            scale = 1.0
            gathered_out[:] = table_flat.take(flat_tail.T)
    step = eta * y * g
    if heap_slots.size:
        deltas = -step * heap_xvals
        np.add.at(
            heap_raw,
            heap_slots,
            deltas if heap_scale == 1.0 else deltas / heap_scale,
        )
    depth = flat_tail.shape[0]
    factor = scale if depth == 1 else sqrt_s * scale
    # The fused-query association order: raw medians at factor 1.0, then
    # one multiply by the true factor.
    queries = factor * median_estimate(gathered_out, signs_tail.T, 1.0)
    if l1 > 0.0:
        queries = np.sign(queries) * np.maximum(np.abs(queries) - l1, 0.0)
    np.subtract(queries, step * tail_values, out=candidates_out)
    threshold = float(np.abs(heap_raw[:n_heap]).min()) * heap_scale
    if screen_abs_gt(candidates_out, threshold).size:
        return (tau, scale, heap_scale, 0.0)
    coeff = (-step / (sqrt_s * scale)) * tail_values
    np.add.at(table_flat, flat_tail, coeff * signs_tail)
    return (tau, scale, heap_scale, 1.0)


BACKEND = KernelBackend(
    "numpy",
    compiled=False,
    functions={name: globals()[name] for name in KERNEL_NAMES},
)
