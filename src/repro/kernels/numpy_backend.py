"""The NumPy reference backend.

These are the hot-loop bodies extracted *verbatim* from the pre-kernel
classifiers (``hashing/tabulation.py``, ``hashing/universal.py``,
``hashing/family.py``, ``core/sketch_table.py``, ``core/awm_sketch.py``
and ``heap/topk.py``) — the executable specification every other
backend is fuzzed against.  Nothing here may change behavior: the
bit-level guarantees of the batched engine (exactly rounded ``fsum``
margins, layout-deterministic ``ufunc.at`` scatters, transposed-sort
medians) are documented at the original call sites and preserved
as-is.
"""

from __future__ import annotations

import math

import numpy as np

from repro.kernels.api import KERNEL_NAMES, KernelBackend

from repro.hashing import universal as _universal


def tabulation_hash(
    flat_tables: np.ndarray, offsets: np.ndarray, keys: np.ndarray
) -> np.ndarray:
    n_bytes = offsets.shape[1]
    if np.little_endian:
        # Reinterpret each 8-byte key as its byte decomposition
        # (little-endian: byte b == (key >> 8b) & 0xFF), then gather
        # all per-byte table entries in a single fancy-index and
        # XOR-reduce — O(1) NumPy calls independent of n_bytes.
        key_bytes = keys.view(np.uint8).reshape(-1, 8)[:, :n_bytes]
    else:  # pragma: no cover - big-endian fallback
        shifts = (8 * np.arange(n_bytes, dtype=np.uint64)).reshape(1, -1)
        key_bytes = ((keys.reshape(-1, 1) >> shifts) & np.uint64(0xFF)).astype(
            np.uint8
        )
    idx = key_bytes.astype(np.intp) + offsets
    return np.bitwise_xor.reduce(flat_tables[idx], axis=1)


def polynomial_hash(coeffs: np.ndarray, keys: np.ndarray) -> np.ndarray:
    # Exact Python-int Horner over object dtype — the reference path of
    # :meth:`repro.hashing.universal.PolynomialHash.hash`.
    coeff_list = [int(c) for c in coeffs.tolist()]
    x = _universal._mod_mersenne61(keys.astype(object))
    acc = np.full(keys.shape, coeff_list[-1], dtype=object)
    for c in reversed(coeff_list[:-1]):
        acc = _universal._mod_mersenne61(acc * x + c)
    return acc


def bucket_sign(
    h: np.ndarray, width: int, pow2: bool, sign_bit: int
) -> tuple[np.ndarray, np.ndarray]:
    if pow2:
        buckets = (h & np.uint64(width - 1)).astype(np.int64)
    else:
        buckets = (h % np.uint64(width)).astype(np.int64)
    bit = ((h >> np.uint64(sign_bit)) & np.uint64(1)).astype(np.int64)
    signs = (2 * bit - 1).astype(np.float64)
    return buckets, signs


def gather_rows_t(
    table_flat: np.ndarray, flat_buckets: np.ndarray
) -> np.ndarray:
    # take() materializes (nnz, depth) C-contiguous, so each feature's
    # row values are adjacent — the layout the median kernel sorts.
    return table_flat.take(flat_buckets.T)


def margin(
    table_flat: np.ndarray,
    flat_buckets: np.ndarray,
    sign_values: np.ndarray,
    scale: float,
    sqrt_s: float,
) -> float:
    # math.fsum is *exactly* rounded, so the reduction is independent
    # of summation order and buffer alignment (NumPy's SIMD .sum() is
    # not) — per-example and batched replays stay bit-identical.
    products = table_flat.take(flat_buckets) * sign_values
    return scale * math.fsum(products.ravel().tolist()) / sqrt_s


def margin_gathered(
    gathered: np.ndarray,
    sign_values: np.ndarray,
    scale: float,
    sqrt_s: float,
) -> float:
    products = gathered * sign_values
    return scale * math.fsum(products.ravel().tolist()) / sqrt_s


def scatter_add(
    table_flat: np.ndarray, flat_buckets: np.ndarray, deltas: np.ndarray
) -> None:
    # One buffered ufunc.at; duplicate buckets accumulate in C element
    # order, the same order as a per-row loop (layout-deterministic).
    np.add.at(table_flat, flat_buckets, deltas)


def median_estimate(
    gathered_t: np.ndarray, signs_t: np.ndarray, factor: float
) -> np.ndarray:
    depth = gathered_t.shape[1]
    if depth == 1:
        return factor * (signs_t[:, 0] * gathered_t[:, 0])
    # In-place row sort plus a middle-column pick selects the exact
    # same values as np.median without its per-call dispatch overhead.
    rows = signs_t * gathered_t
    rows.sort(axis=1)
    mid = depth // 2
    if depth % 2:
        med = rows[:, mid]
    else:
        med = 0.5 * (rows[:, mid - 1] + rows[:, mid])
    return factor * med


def estimate_bound(
    table_flat: np.ndarray, flat_buckets: np.ndarray
) -> float:
    return float(np.abs(table_flat.take(flat_buckets)).max())


def screen_abs_gt(values: np.ndarray, threshold: float) -> np.ndarray:
    return np.flatnonzero(np.abs(values) > threshold)


BACKEND = KernelBackend(
    "numpy",
    compiled=False,
    functions={name: globals()[name] for name in KERNEL_NAMES},
)
