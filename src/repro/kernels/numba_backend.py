"""The Numba-compiled backend (``"numba"``).

Compiles the loop kernels of :mod:`repro.kernels._loops` with
``@njit(cache=True, nogil=True)``:

* ``cache=True`` persists compiled machine code next to the source, so
  the one-time compile cost is paid once per machine, not per process;
* ``nogil=True`` releases the GIL for the whole kernel — which is what
  finally lets :func:`repro.parallel.pipeline.fit_stream_pipelined`
  overlap prefetch hashing with training for real wall-clock gains
  (the NumPy hash path holds the interpreter through its Python-level
  dispatch).

Importing this module **raises ImportError when Numba is not
installed** — by design.  The registry in ``repro/kernels/__init__``
catches it and records the backend as unavailable; ``"auto"``
resolution and non-strict lookups then fall back to the NumPy
reference with a one-time warning.  Numba is never a hard dependency
(install it via the ``repro[compiled]`` extra).

Compilation is lazy (per-signature, on first call), so importing the
backend is cheap even on the first run of a machine.
"""

from __future__ import annotations

from numba import njit  # raises ImportError without numba — see above

from repro.kernels import _loops
from repro.kernels.api import KERNEL_NAMES, KernelBackend

_JIT = njit(cache=True, nogil=True)

BACKEND = KernelBackend(
    "numba",
    compiled=True,
    functions={name: _JIT(getattr(_loops, name)) for name in KERNEL_NAMES},
)
