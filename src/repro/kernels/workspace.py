"""Per-model preallocated buffers for the fused kernels.

The batched update path used to materialize a fresh chain of
temporaries every mini-batch — hash words, bucket/sign expansions,
sign*value products, flattened bucket offsets, margin product blocks,
gradient scatters, gathered recovery cells.  All of those buffers have
the same lifetime (one ``fit_batch`` / ``predict_batch`` /
``query_many`` call) and a slowly-varying size (the batch's nnz), so a
:class:`KernelWorkspace` keeps one *grow-only* arena per named buffer
and hands out views: steady-state batches perform **zero** new
allocations on the fused path (measured by
``benchmarks/bench_allocations.py`` and gated by
``tests/test_allocations.py``).

Rules of use
------------

* A buffer named ``name`` is a contiguous view of a grow-only backing
  array; requesting a larger size reallocates the backing (geometric
  growth), a smaller size returns a leading view.  Contents are
  **undefined** on acquisition — callers must fully overwrite what they
  read.
* Views are only valid until the next request for the *same name*; hot
  paths acquire everything up front, which also means two overlapping
  uses of one model's workspace (e.g. re-entrant ``fit_batch``) are a
  caller bug, not a supported pattern.  The classifiers are
  single-threaded per model (the parallel subsystem shards *models*,
  not calls), so this never bites in practice.
* Workspaces are pure caches: they are dropped on pickling
  (``__getstate__`` of the owning model) and lazily rebuilt on first
  use after load, exactly like the hash cache — a checkpoint carries
  no workspace bytes.
"""

from __future__ import annotations

import numpy as np

#: Empty singletons handed to ``fused_update`` when gather recording is
#: off (the kernel branches on ``gathered_out.shape[0] > 0``), and to
#: every fused kernel whose backend needs no scratch (none of the
#: shipped backends do; the parameter exists for backends that want
#: caller-owned intermediates).
EMPTY_GATHER = np.empty((0, 1), dtype=np.float64)
EMPTY_SCALES = np.empty(0, dtype=np.float64)
EMPTY_SCRATCH = np.empty(0, dtype=np.float64)
#: Handed to ``fused_update`` when touched-index recording is off (the
#: kernel branches on ``touched_out.shape[0]``; see kernels.api).
EMPTY_TOUCHED = np.empty(0, dtype=np.int64)


class KernelWorkspace:
    """Named grow-only buffer arena (see the module docstring)."""

    __slots__ = ("_arenas", "grown")

    def __init__(self):
        self._arenas: dict[str, np.ndarray] = {}
        #: Diagnostics: how many times any arena had to (re)grow; flat
        #: after warmup on a steady stream.
        self.grown = 0

    def array(
        self,
        name: str,
        shape: tuple[int, ...] | int,
        dtype=np.float64,
    ) -> np.ndarray:
        """A contiguous ``shape``-sized view of the ``name`` arena.

        The arena grows geometrically (never shrinks); the returned
        view's contents are undefined.
        """
        if isinstance(shape, int):
            shape = (shape,)
        size = 1
        for dim in shape:
            size *= dim
        arena = self._arenas.get(name)
        if arena is None or arena.size < size or arena.dtype != dtype:
            capacity = max(size, 2 * (arena.size if arena is not None else 0))
            arena = np.empty(capacity, dtype=dtype)
            self._arenas[name] = arena
            self.grown += 1
        return arena[:size].reshape(shape)

    def nbytes(self) -> int:
        """Total bytes currently held by all arenas (diagnostics)."""
        return sum(a.nbytes for a in self._arenas.values())

    def __reduce__(self):  # pragma: no cover - guarded by owners
        raise TypeError(
            "KernelWorkspace is a per-process cache and is not "
            "picklable; owners must drop it in __getstate__ and "
            "rebuild it lazily"
        )
