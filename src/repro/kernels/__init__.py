"""Pluggable kernel backends for the hot inner loops.

Every hot loop of the sketch classifiers — vectorized hashing
(tabulation / polynomial bucket+sign), sketch-table scatter / gather,
the exactly-rounded margin, transposed-row median recovery, the WM
maintain / admission-screen, the AWM tail-promotion screen, and the
top-K store's ``push_many`` pre-screen — dispatches through a
:class:`~repro.kernels.api.KernelBackend` selected here.

Backends
--------
``numpy``
    The reference: the pre-kernel NumPy code extracted verbatim.
    Always available; the executable specification the fuzzed
    equivalence suite (``tests/test_kernel_backends.py``) checks every
    other backend against.
``numba``
    The loop kernels of :mod:`repro.kernels._loops` compiled with
    ``@njit(cache=True, nogil=True)``.  Optional: when Numba is not
    importable the backend is recorded unavailable and everything
    falls back to ``numpy`` with zero behavior change.
``python``
    The same loop kernels interpreted — slow, for testing the compiled
    code path without a compiler and as the template for adding a new
    backend.

Selection order
---------------
1. an explicit per-object override (the ``backend=`` constructor
   argument of the sketches / hashes / stores, serialized with them);
2. the process-wide backend pinned by :func:`set_backend` (the CLI's
   ``--backend`` flag lands here);
3. the ``REPRO_KERNEL_BACKEND`` environment variable (inherited by
   spawned worker processes, which is how the parallel subsystem
   propagates the choice);
4. ``"auto"``: ``numba`` when importable, else ``numpy``.

Strictness: :func:`set_backend` and ``get_backend(name, strict=True)``
raise :class:`BackendUnavailableError` for an unavailable backend;
per-object resolution uses ``strict=False``, which warns once per
process and falls back to ``numpy`` — a checkpoint trained under the
compiled backend loads fine on a host without Numba.
"""

from __future__ import annotations

import os
import warnings

from repro.kernels.api import (
    KERNEL_NAMES,
    RENORM_THRESHOLD,
    KernelBackend,
)
from repro.kernels.workspace import (
    EMPTY_GATHER,
    EMPTY_SCALES,
    EMPTY_SCRATCH,
    EMPTY_TOUCHED,
    KernelWorkspace,
)

__all__ = [
    "KERNEL_NAMES",
    "RENORM_THRESHOLD",
    "KernelBackend",
    "KernelWorkspace",
    "EMPTY_GATHER",
    "EMPTY_SCALES",
    "EMPTY_SCRATCH",
    "EMPTY_TOUCHED",
    "BackendHandle",
    "BackendUnavailableError",
    "KernelBackendWarning",
    "available_backends",
    "numba_available",
    "get_backend",
    "set_backend",
    "active_backend_name",
    "backend_epoch",
]

#: Environment variable naming the default backend for the process.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Known backend names, in preference/documentation order.
BACKEND_NAMES = ("numpy", "numba", "python")


class BackendUnavailableError(ImportError):
    """A requested kernel backend cannot be loaded on this host."""


class KernelBackendWarning(RuntimeWarning):
    """A non-strict backend request fell back to the NumPy reference."""


_loaded: dict[str, KernelBackend] = {}
_unavailable: dict[str, str] = {}
_active: KernelBackend | None = None
_warned: set[str] = set()
#: Bumped by every :func:`set_backend` call; cached per-object backend
#: bindings (:class:`BackendHandle`) revalidate against it, so pinning a
#: new process backend still takes effect on live models while the
#: steady-state resolution cost drops to one integer comparison.
_epoch: int = 0


def _load(name: str) -> KernelBackend:
    backend = _loaded.get(name)
    if backend is not None:
        return backend
    if name in _unavailable:
        raise BackendUnavailableError(_unavailable[name])
    if name == "numpy":
        from repro.kernels import numpy_backend as module
    elif name == "python":
        from repro.kernels import python_backend as module
    elif name == "numba":
        try:
            from repro.kernels import numba_backend as module
        except ImportError as exc:
            _unavailable[name] = (
                f"kernel backend 'numba' unavailable: {exc} "
                f"(install the repro[compiled] extra)"
            )
            raise BackendUnavailableError(_unavailable[name]) from exc
    else:
        raise BackendUnavailableError(
            f"unknown kernel backend {name!r}; known backends: "
            f"{', '.join(BACKEND_NAMES)} (or 'auto')"
        )
    _loaded[name] = module.BACKEND
    return module.BACKEND


def available_backends() -> list[str]:
    """Names of the backends loadable on this host, preference order."""
    out = []
    for name in BACKEND_NAMES:
        try:
            _load(name)
        except BackendUnavailableError:
            continue
        out.append(name)
    return out


def numba_available() -> bool:
    """Whether the compiled (Numba) backend can be loaded."""
    try:
        _load("numba")
    except BackendUnavailableError:
        return False
    return True


def get_backend(
    name: str | None = None, strict: bool = True
) -> KernelBackend:
    """Resolve a backend by name (see the module docstring's order).

    Parameters
    ----------
    name:
        ``None`` follows the process default (:func:`set_backend`, then
        the ``REPRO_KERNEL_BACKEND`` environment variable, then
        ``"auto"``).  ``"auto"`` picks ``numba`` when available, else
        ``numpy``.
    strict:
        With ``strict=True`` (default) an unavailable or unknown name
        raises :class:`BackendUnavailableError`.  With ``strict=False``
        it warns once per process (:class:`KernelBackendWarning`) and
        falls back to the NumPy reference — the per-object resolution
        mode, so deserialized models never fail on a leaner host.
    """
    if name is None:
        if _active is not None:
            return _active
        name = os.environ.get(ENV_VAR, "") or "auto"
    if name == "auto":
        try:
            return _load("numba")
        except BackendUnavailableError:
            return _load("numpy")
    try:
        return _load(name)
    except BackendUnavailableError as exc:
        if strict:
            raise
        if name not in _warned:
            _warned.add(name)
            warnings.warn(
                f"{exc}; falling back to the 'numpy' reference backend",
                KernelBackendWarning,
                stacklevel=2,
            )
        return _load("numpy")


def set_backend(name: str | None) -> KernelBackend:
    """Pin the process-wide backend; returns the resolved backend.

    ``"auto"`` pins whatever auto-resolution picks *now* (availability
    cannot change mid-process); ``None`` clears the pin, restoring the
    environment-variable / auto flow.  Unavailable or unknown names
    raise :class:`BackendUnavailableError` and leave the pin unchanged.
    """
    global _active, _epoch
    if name is None:
        _active = None
        _epoch += 1
        return get_backend()
    backend = get_backend(name, strict=True)
    _active = backend
    _epoch += 1
    return backend


def active_backend_name() -> str:
    """Name of the backend the process default currently resolves to."""
    return get_backend().name


def backend_epoch() -> int:
    """Monotone counter of process-wide backend changes (see
    :class:`BackendHandle`)."""
    return _epoch


class BackendHandle:
    """A per-object cached backend resolution (the dispatch-free path).

    Hot per-example code used to pay a full :func:`get_backend`
    resolution — pin lookup, environment read, dict probes — on *every*
    kernel dispatch (~1-2us/example across the hash rows, margin and
    scatter of one update).  A handle resolves once and revalidates
    with a single integer comparison against :func:`backend_epoch`, so
    :func:`set_backend` still retargets live models while steady-state
    dispatch is one attribute load.

    Mid-process *environment-variable* changes are the one thing a
    handle does not observe (plain resolution only reads the variable
    while no pin is active anyway); processes configure the environment
    before building models, and tests use :func:`set_backend`.

    Handles hold a loaded backend (whose kernels may be jitted
    closures), so they must never be pickled: owners drop them in
    ``__getstate__`` and rebuild on load — which also re-resolves on
    the destination host, exactly what a checkpoint wants.
    """

    __slots__ = ("name", "_backend", "_epoch")

    def __init__(self, name: str | None = None):
        self.name = name
        self._backend: KernelBackend | None = None
        self._epoch = -1

    def get(self) -> KernelBackend:
        """The resolved backend (one int compare when nothing changed)."""
        if self._epoch != _epoch:
            self._backend = get_backend(self.name, strict=False)
            self._epoch = _epoch
        return self._backend

    def __reduce__(self):  # pragma: no cover - guarded by owners
        raise TypeError(
            "BackendHandle is not picklable; owners must drop it in "
            "__getstate__ and rebuild it on load"
        )
