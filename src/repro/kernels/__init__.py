"""Pluggable kernel backends for the hot inner loops.

Every hot loop of the sketch classifiers — vectorized hashing
(tabulation / polynomial bucket+sign), sketch-table scatter / gather,
the exactly-rounded margin, transposed-row median recovery, the WM
maintain / admission-screen, the AWM tail-promotion screen, and the
top-K store's ``push_many`` pre-screen — dispatches through a
:class:`~repro.kernels.api.KernelBackend` selected here.

Backends
--------
``numpy``
    The reference: the pre-kernel NumPy code extracted verbatim.
    Always available; the executable specification the fuzzed
    equivalence suite (``tests/test_kernel_backends.py``) checks every
    other backend against.
``numba``
    The loop kernels of :mod:`repro.kernels._loops` compiled with
    ``@njit(cache=True, nogil=True)``.  Optional: when Numba is not
    importable the backend is recorded unavailable and everything
    falls back to ``numpy`` with zero behavior change.
``python``
    The same loop kernels interpreted — slow, for testing the compiled
    code path without a compiler and as the template for adding a new
    backend.

Selection order
---------------
1. an explicit per-object override (the ``backend=`` constructor
   argument of the sketches / hashes / stores, serialized with them);
2. the process-wide backend pinned by :func:`set_backend` (the CLI's
   ``--backend`` flag lands here);
3. the ``REPRO_KERNEL_BACKEND`` environment variable (inherited by
   spawned worker processes, which is how the parallel subsystem
   propagates the choice);
4. ``"auto"``: ``numba`` when importable, else ``numpy``.

Strictness: :func:`set_backend` and ``get_backend(name, strict=True)``
raise :class:`BackendUnavailableError` for an unavailable backend;
per-object resolution uses ``strict=False``, which warns once per
process and falls back to ``numpy`` — a checkpoint trained under the
compiled backend loads fine on a host without Numba.
"""

from __future__ import annotations

import os
import warnings

from repro.kernels.api import KERNEL_NAMES, KernelBackend

__all__ = [
    "KERNEL_NAMES",
    "KernelBackend",
    "BackendUnavailableError",
    "KernelBackendWarning",
    "available_backends",
    "numba_available",
    "get_backend",
    "set_backend",
    "active_backend_name",
]

#: Environment variable naming the default backend for the process.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Known backend names, in preference/documentation order.
BACKEND_NAMES = ("numpy", "numba", "python")


class BackendUnavailableError(ImportError):
    """A requested kernel backend cannot be loaded on this host."""


class KernelBackendWarning(RuntimeWarning):
    """A non-strict backend request fell back to the NumPy reference."""


_loaded: dict[str, KernelBackend] = {}
_unavailable: dict[str, str] = {}
_active: KernelBackend | None = None
_warned: set[str] = set()


def _load(name: str) -> KernelBackend:
    backend = _loaded.get(name)
    if backend is not None:
        return backend
    if name in _unavailable:
        raise BackendUnavailableError(_unavailable[name])
    if name == "numpy":
        from repro.kernels import numpy_backend as module
    elif name == "python":
        from repro.kernels import python_backend as module
    elif name == "numba":
        try:
            from repro.kernels import numba_backend as module
        except ImportError as exc:
            _unavailable[name] = (
                f"kernel backend 'numba' unavailable: {exc} "
                f"(install the repro[compiled] extra)"
            )
            raise BackendUnavailableError(_unavailable[name]) from exc
    else:
        raise BackendUnavailableError(
            f"unknown kernel backend {name!r}; known backends: "
            f"{', '.join(BACKEND_NAMES)} (or 'auto')"
        )
    _loaded[name] = module.BACKEND
    return module.BACKEND


def available_backends() -> list[str]:
    """Names of the backends loadable on this host, preference order."""
    out = []
    for name in BACKEND_NAMES:
        try:
            _load(name)
        except BackendUnavailableError:
            continue
        out.append(name)
    return out


def numba_available() -> bool:
    """Whether the compiled (Numba) backend can be loaded."""
    try:
        _load("numba")
    except BackendUnavailableError:
        return False
    return True


def get_backend(
    name: str | None = None, strict: bool = True
) -> KernelBackend:
    """Resolve a backend by name (see the module docstring's order).

    Parameters
    ----------
    name:
        ``None`` follows the process default (:func:`set_backend`, then
        the ``REPRO_KERNEL_BACKEND`` environment variable, then
        ``"auto"``).  ``"auto"`` picks ``numba`` when available, else
        ``numpy``.
    strict:
        With ``strict=True`` (default) an unavailable or unknown name
        raises :class:`BackendUnavailableError`.  With ``strict=False``
        it warns once per process (:class:`KernelBackendWarning`) and
        falls back to the NumPy reference — the per-object resolution
        mode, so deserialized models never fail on a leaner host.
    """
    if name is None:
        if _active is not None:
            return _active
        name = os.environ.get(ENV_VAR, "") or "auto"
    if name == "auto":
        try:
            return _load("numba")
        except BackendUnavailableError:
            return _load("numpy")
    try:
        return _load(name)
    except BackendUnavailableError as exc:
        if strict:
            raise
        if name not in _warned:
            _warned.add(name)
            warnings.warn(
                f"{exc}; falling back to the 'numpy' reference backend",
                KernelBackendWarning,
                stacklevel=2,
            )
        return _load("numpy")


def set_backend(name: str | None) -> KernelBackend:
    """Pin the process-wide backend; returns the resolved backend.

    ``"auto"`` pins whatever auto-resolution picks *now* (availability
    cannot change mid-process); ``None`` clears the pin, restoring the
    environment-variable / auto flow.  Unavailable or unknown names
    raise :class:`BackendUnavailableError` and leave the pin unchanged.
    """
    global _active
    if name is None:
        _active = None
        return get_backend()
    backend = get_backend(name, strict=True)
    _active = backend
    return backend


def active_backend_name() -> str:
    """Name of the backend the process default currently resolves to."""
    return get_backend().name
