"""Micro-batching request coalescer — the serving perf core.

Concurrent callers submit single requests; the coalescer accumulates
them in per-operation queues and flushes each queue as **one** batched
kernel call against the latest published snapshot.  A queue is flushed
when either

* its oldest request has waited ``latency_budget`` seconds, or
* it holds ``max_batch`` requests, or
* the coalescer is closing (drain).

All flushes run on a single worker thread, which is what licenses the
snapshots' shared :class:`~repro.hashing.batch.BatchHasher` /
:class:`~repro.kernels.workspace.KernelWorkspace` reader caches: the
batched read paths are the only code that touches them, and they only
ever run here.

Because the batched kernels are bit-identical to their scalar twins
(PR 3-5's equivalence discipline), coalescing is *invisible* to
callers: a coalesced answer equals the serial-scalar answer on the
same snapshot bit for bit — the tests and the serving benchmark both
assert this.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from repro.data.batch import SparseBatch
from repro.telemetry import MetricsRegistry, hooks, trace

__all__ = ["DeadlineExceeded", "MicroBatchCoalescer", "Overload"]


class Overload(RuntimeError):
    """Typed admission rejection: the op's pending queue is full.

    Raised by :meth:`MicroBatchCoalescer.submit_nowait` *at submission
    time* when ``max_pending`` requests are already queued for the op —
    load past saturation is shed immediately with this error instead of
    growing the queue without bound (which converts overload into
    unbounded latency for every request behind the excess).  Callers
    treat it as retryable backpressure.
    """


class DeadlineExceeded(TimeoutError):
    """The request's deadline passed while it waited in the queue.

    Enforced at flush time: a request whose deadline has lapsed is
    failed with this error and excluded from the batched kernel call —
    the answer would arrive too late to be useful, so computing it
    would only steal capacity from requests that can still meet theirs.
    """

#: Flush trigger classification (see the module docstring).
_REASONS = ("budget", "max_batch", "drain")


def _hist_summary_ms(hist) -> dict:
    """Compact ms-scale summary of a latency histogram (caller holds
    the registry lock, so the fields are one consistent cut)."""
    if hist.count == 0:
        return {"count": 0}
    return {
        "count": hist.count,
        "p50": 1e3 * hist.percentile(50.0),
        "p90": 1e3 * hist.percentile(90.0),
        "p99": 1e3 * hist.percentile(99.0),
        "max": 1e3 * hist.max_value,
    }

#: Supported operations and their payload / result conventions:
#: ``predict``: payload is a :class:`SparseBatch`, result is the
#: ``predict_batch`` margin array for that payload's rows;
#: ``query``:   payload is an int64 key array, result is the
#: ``query_many`` / ``estimate_weights`` estimate array;
#: ``top_k``:   payload is an int k, result is ``top_weights(k)``.
_OPS = ("predict", "query", "top_k")


class _Request:
    """One in-flight request (internal)."""

    __slots__ = ("op", "payload", "event", "result", "error", "version",
                 "done_at", "deadline")

    def __init__(self, op, payload, deadline=None):
        self.op = op
        self.payload = payload
        self.event = threading.Event()
        self.result = None
        self.error = None
        self.version = -1
        self.done_at = 0.0
        #: Absolute monotonic instant after which the answer is
        #: worthless (None: no deadline).  Checked at flush time.
        self.deadline = deadline

    def wait(self, timeout=None):
        """Block until flushed; return ``(result, version)`` or raise."""
        if not self.event.wait(timeout):
            raise TimeoutError(f"{self.op} request not flushed within {timeout}s")
        if self.error is not None:
            raise self.error
        return self.result, self.version


class MicroBatchCoalescer:
    """Accumulate concurrent requests; flush each op as one batched call.

    Parameters
    ----------
    snapshots:
        A :class:`~repro.serving.snapshot.SnapshotManager`; every flush
        is answered entirely from ``snapshots.current``.
    latency_budget:
        Max seconds a request may wait for batch-mates before its queue
        is flushed anyway.  The knob trades tail latency for batch size.
    max_batch:
        Flush a queue as soon as it holds this many requests, budget
        notwithstanding.
    max_pending:
        Bounded admission queue: at most this many requests may wait
        per op; the excess is shed at submission with a typed
        :class:`Overload` (None: unbounded, the legacy behaviour).
    default_deadline:
        Relative per-request deadline in seconds applied when a submit
        does not carry its own; lapsed requests fail with
        :class:`DeadlineExceeded` at flush time (None: no deadline).
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan`; the
        ``serve.flush`` hook fires inside the flush critical section,
        so injected failures exercise the crash-only worker contract.
    registry:
        The :class:`~repro.telemetry.MetricsRegistry` all observability
        lives in (a private one is created when omitted).  The legacy
        dict attributes (``requests`` / ``flushes`` / ``flush_reasons``
        / ``batch_size_hist``) are preserved as read-only *views* over
        registry counters — deprecated; read :meth:`stats` or the
        registry snapshot instead.
    """

    def __init__(
        self,
        snapshots,
        *,
        latency_budget: float = 1e-3,
        max_batch: int = 64,
        max_pending: int | None = None,
        default_deadline: float | None = None,
        fault_plan=None,
        registry: MetricsRegistry | None = None,
    ):
        if latency_budget < 0:
            raise ValueError("latency_budget must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None)")
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError("default_deadline must be > 0 (or None)")
        self._snapshots = snapshots
        self.latency_budget = float(latency_budget)
        self.max_batch = int(max_batch)
        self.max_pending = None if max_pending is None else int(max_pending)
        self.default_deadline = (
            None if default_deadline is None else float(default_deadline)
        )
        self._fault_plan = fault_plan
        self._cond = threading.Condition()
        self._queues = {op: deque() for op in _OPS}
        self._closing = False
        # Observability: every counter/gauge/histogram lives in one
        # registry, so stats() is a single consistent cut (no more
        # field-by-field reads racing the flush thread).
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._m_requests = {
            op: reg.counter("serve.requests", op=op) for op in _OPS
        }
        self._m_flushes = {
            op: reg.counter("serve.flushes", op=op) for op in _OPS
        }
        self._m_flush_reasons = {
            r: reg.counter("serve.flush_reasons", reason=r) for r in _REASONS
        }
        #: Exact per-(op, size) flush counters — the legacy
        #: ``batch_size_hist`` integer histogram, registry-backed.
        self._m_batch_sizes: dict[str, dict[int, object]] = {
            op: {} for op in _OPS
        }
        self._m_pending = {
            op: reg.gauge("serve.pending", op=op) for op in _OPS
        }
        self._m_queue_wait = {
            op: reg.histogram("serve.queue_wait_seconds", op=op)
            for op in _OPS
        }
        self._m_flush_seconds = {
            op: reg.histogram("serve.flush_seconds", op=op) for op in _OPS
        }
        self._m_shed = {
            op: reg.counter("serve.shed", op=op) for op in _OPS
        }
        self._m_deadline = {
            op: reg.counter("serve.deadline_exceeded", op=op) for op in _OPS
        }
        self._m_flush_errors = {
            op: reg.counter("serve.flush_errors", op=op) for op in _OPS
        }
        self._m_worker_restarts = reg.counter("serve.worker_restarts")
        self._start_worker()

    def _start_worker(self) -> None:
        self._worker = threading.Thread(
            target=self._run, name="repro-coalescer", daemon=True
        )
        self._worker.start()

    # -- legacy dict views (deprecated: read stats() / the registry) ---
    @property
    def requests(self) -> dict:
        """Deprecated view of the ``serve.requests`` counters."""
        with self.registry.locked():
            return {op: c._value for op, c in self._m_requests.items()}

    @property
    def flushes(self) -> dict:
        """Deprecated view of the ``serve.flushes`` counters."""
        with self.registry.locked():
            return {op: c._value for op, c in self._m_flushes.items()}

    @property
    def flush_reasons(self) -> dict:
        """Deprecated view of the ``serve.flush_reasons`` counters."""
        with self.registry.locked():
            return {r: c._value for r, c in self._m_flush_reasons.items()}

    @property
    def batch_size_hist(self) -> dict:
        """Deprecated view of the ``serve.batch_size`` counters
        (op -> {batch size -> flush count}, sizes ascending)."""
        with self.registry.locked():
            return {
                op: {size: c._value for size, c in sorted(sizes.items())}
                for op, sizes in self._m_batch_sizes.items()
            }

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_nowait(self, op: str, payload,
                      deadline: float | None = None) -> _Request:
        """Enqueue without blocking; caller waits on the returned request.

        ``deadline`` is relative seconds from now (falling back to
        ``default_deadline``); a request still queued when it lapses
        fails with :class:`DeadlineExceeded` instead of occupying the
        flush.  Raises :class:`Overload` when the op's queue already
        holds ``max_pending`` requests — the shed-don't-hang admission
        contract.
        """
        if op not in self._queues:
            raise ValueError(f"unknown op {op!r}; expected one of {_OPS}")
        now = time.monotonic()
        rel = deadline if deadline is not None else self.default_deadline
        req = _Request(op, payload, None if rel is None else now + rel)
        with self._cond:
            if self._closing:
                raise RuntimeError("coalescer is closed")
            q = self._queues[op]
            if self.max_pending is not None and len(q) >= self.max_pending:
                self._m_shed[op].inc()
                raise Overload(
                    f"{op} queue full ({self.max_pending} pending); "
                    f"request shed — retry with backoff"
                )
            if not self._worker.is_alive():
                # Crash-only restart: a worker killed by something the
                # flush guard could not contain comes back on the next
                # submission, with the queues intact.
                self._m_worker_restarts.inc()
                self._start_worker()
            q.append((now, req))
            with self.registry.locked():
                self._m_requests[op].inc()
                self._m_pending[op].inc()
            self._cond.notify()
        return req

    def submit(self, op: str, payload, timeout: float | None = None):
        """Enqueue and block for the flushed answer: ``(result, version)``."""
        return self.submit_nowait(op, payload).wait(timeout)

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _run(self):
        while True:
            with self._cond:
                while True:
                    now = time.monotonic()
                    ready = None
                    deadline = None
                    for op, q in self._queues.items():
                        if not q:
                            continue
                        if self._closing:
                            ready = (op, "drain")
                            break
                        if len(q) >= self.max_batch:
                            ready = (op, "max_batch")
                            break
                        due = q[0][0] + self.latency_budget
                        if due <= now:
                            ready = (op, "budget")
                            break
                        if deadline is None or due < deadline:
                            deadline = due
                    if ready is not None:
                        op, reason = ready
                        q = self._queues[op]
                        # Keep each entry's enqueue stamp: the flush
                        # records the queue-wait distribution from it.
                        batch = [q.popleft() for _ in range(min(len(q), self.max_batch))]
                        self._m_pending[op].dec(len(batch))
                        break
                    if self._closing:
                        return
                    self._cond.wait(None if deadline is None else deadline - now)
            try:
                self._flush(op, batch, reason)
            except BaseException as exc:
                # Crash-only worker: whatever escaped the flush —
                # snapshot access, telemetry, a raising hook — fails
                # the batch's remaining waiters and the loop carries
                # on; the thread itself never dies with requests
                # queued behind it.
                self._m_flush_errors[op].inc()
                self._fail_entries(batch, exc)

    def _fail_entries(self, entries, exc) -> None:
        """Deliver ``exc`` to every not-yet-completed request."""
        for _, r in entries:
            if not r.event.is_set():
                r.error = exc
                r.event.set()

    def _flush(self, op, entries, reason):
        start = time.monotonic()
        # Deadline enforcement first: a lapsed request is failed and
        # excluded — its answer could no longer be used, so computing
        # it would only slow the requests that can still make theirs.
        live = []
        for enq, r in entries:
            if r.deadline is not None and start > r.deadline:
                self._m_deadline[op].inc()
                r.error = DeadlineExceeded(
                    f"{op} deadline lapsed {start - r.deadline:.4f}s "
                    f"before its batch flushed"
                )
                r.event.set()
            else:
                live.append((enq, r))
        # One vectorized record for the whole batch's queue waits; the
        # oldest entry is first, so entries[0] carries the max wait.
        self._m_queue_wait[op].record_many(
            [start - enq for enq, _ in entries]
        )
        if not live:
            return
        n = len(live)
        reg = self.registry
        with reg.locked():
            self._m_flushes[op].inc()
            self._m_flush_reasons[reason].inc()
            sizes = self._m_batch_sizes[op]
            size_counter = sizes.get(n)
            if size_counter is None:
                size_counter = reg.counter("serve.batch_size", op=op, size=n)
                sizes[n] = size_counter
            size_counter.inc()
        reqs = [r for _, r in live]
        try:
            # Everything that can fail — including reading the current
            # snapshot — sits inside the guard, so a failure is always
            # delivered to the batch, never left to kill the worker
            # with waiters stranded behind it.
            snap = self._snapshots.current
            if self._fault_plan is not None:
                self._fault_plan.raise_if("serve.flush", op=op)
            with trace.span(
                "serve.flush", op=op, n=n, reason=reason,
                version=snap.version,
            ):
                results = self._HANDLERS[op](
                    snap.model, [r.payload for r in reqs]
                )
            if len(results) != len(reqs):
                raise RuntimeError(
                    f"{op} handler returned {len(results)} results for "
                    f"{len(reqs)} requests"
                )
        except BaseException as exc:  # propagate to every waiter in the batch
            self._m_flush_errors[op].inc()
            for r in reqs:
                r.error = exc
                r.event.set()
            self._m_flush_seconds[op].record(time.monotonic() - start)
            return
        done = time.monotonic()
        for r, res in zip(reqs, results):
            r.result = res
            r.version = snap.version
            r.done_at = done
            r.event.set()
        self._m_flush_seconds[op].record(done - start)
        if hooks.on_flush:
            hooks.flush(op, n, reason, start - live[0][0], done - start)

    # ------------------------------------------------------------------
    # Batched handlers — ONE kernel call per flush.
    # ------------------------------------------------------------------
    @staticmethod
    def _flush_predict(model, payloads):
        if len(payloads) == 1:
            return [model.predict_batch(payloads[0])]
        sizes = [len(b) for b in payloads]
        n = sum(sizes)
        indptr = np.zeros(n + 1, dtype=np.int64)
        counts = np.concatenate([np.diff(b.indptr) for b in payloads])
        np.cumsum(counts, out=indptr[1:])
        # Every part comes from an already-validated batch, so the
        # merge skips re-validation (labels are ignored by predict).
        merged = SparseBatch._trusted(
            indptr,
            np.concatenate([b.indices for b in payloads]),
            np.concatenate([b.values for b in payloads]),
            np.ones(n, dtype=np.int64),
        )
        out = model.predict_batch(merged)
        return np.split(out, np.cumsum(sizes)[:-1])

    @staticmethod
    def _flush_query(model, payloads):
        if len(payloads) == 1:
            return [model.query_many(payloads[0])]
        sizes = [p.size for p in payloads]
        out = model.query_many(np.concatenate(payloads))
        return np.split(out, np.cumsum(sizes)[:-1])

    @staticmethod
    def _flush_top_k(model, payloads):
        # top_weights(k) computes one full ranking and slices, so the
        # answer for any k is a prefix of the answer for max(payloads).
        top = model.top_weights(max(payloads))
        return [top[:k] for k in payloads]

    #: op -> batched handler; a dict lookup on the flush path instead of
    #: a per-flush getattr/name-mangling round trip.
    _HANDLERS = {
        "predict": _flush_predict.__func__,
        "query": _flush_query.__func__,
        "top_k": _flush_top_k.__func__,
    }

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """One *consistent* observability cut (legacy dict shape plus
        latency summaries), taken under the registry mutex so a
        histogram can never pair with stale counters."""
        with self.registry.locked():
            return {
                "latency_budget": self.latency_budget,
                "max_batch": self.max_batch,
                "requests": {
                    op: c._value for op, c in self._m_requests.items()
                },
                "flushes": {
                    op: c._value for op, c in self._m_flushes.items()
                },
                "flush_reasons": {
                    r: c._value for r, c in self._m_flush_reasons.items()
                },
                "batch_size_hist": {
                    op: {s: c._value for s, c in sorted(sizes.items())}
                    for op, sizes in self._m_batch_sizes.items()
                },
                "pending": {
                    op: g._value for op, g in self._m_pending.items()
                },
                "queue_wait_ms": {
                    op: _hist_summary_ms(h)
                    for op, h in self._m_queue_wait.items()
                },
                "flush_ms": {
                    op: _hist_summary_ms(h)
                    for op, h in self._m_flush_seconds.items()
                },
                "shed": {
                    op: c._value for op, c in self._m_shed.items()
                },
                "deadline_exceeded": {
                    op: c._value for op, c in self._m_deadline.items()
                },
                "flush_errors": {
                    op: c._value for op, c in self._m_flush_errors.items()
                },
                "worker_restarts": self._m_worker_restarts._value,
            }

    def close(self, timeout: float | None = None):
        """Drain all pending requests, then stop the worker thread.

        With a ``timeout`` the drain is *bounded*: requests still
        queued when it expires are failed with a ``TimeoutError``
        rather than left hanging on a wedged worker.  Idempotent —
        a second close is a no-op.
        """
        with self._cond:
            self._closing = True
            self._cond.notify()
        self._worker.join(timeout)
        with self._cond:
            leftovers = [e for q in self._queues.values() for e in q]
            for op, q in self._queues.items():
                if q:
                    self._m_pending[op].dec(len(q))
                    q.clear()
        if leftovers:
            exc = TimeoutError(
                f"coalescer closed before flush: {len(leftovers)} queued "
                f"requests abandoned after {timeout}s drain deadline"
            )
            self._fail_entries(leftovers, exc)
