"""Micro-batching request coalescer — the serving perf core.

Concurrent callers submit single requests; the coalescer accumulates
them in per-operation queues and flushes each queue as **one** batched
kernel call against the latest published snapshot.  A queue is flushed
when either

* its oldest request has waited ``latency_budget`` seconds, or
* it holds ``max_batch`` requests, or
* the coalescer is closing (drain).

All flushes run on a single worker thread, which is what licenses the
snapshots' shared :class:`~repro.hashing.batch.BatchHasher` /
:class:`~repro.kernels.workspace.KernelWorkspace` reader caches: the
batched read paths are the only code that touches them, and they only
ever run here.

Because the batched kernels are bit-identical to their scalar twins
(PR 3-5's equivalence discipline), coalescing is *invisible* to
callers: a coalesced answer equals the serial-scalar answer on the
same snapshot bit for bit — the tests and the serving benchmark both
assert this.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from repro.data.batch import SparseBatch
from repro.telemetry import MetricsRegistry, hooks, trace

__all__ = ["MicroBatchCoalescer"]

#: Flush trigger classification (see the module docstring).
_REASONS = ("budget", "max_batch", "drain")


def _hist_summary_ms(hist) -> dict:
    """Compact ms-scale summary of a latency histogram (caller holds
    the registry lock, so the fields are one consistent cut)."""
    if hist.count == 0:
        return {"count": 0}
    return {
        "count": hist.count,
        "p50": 1e3 * hist.percentile(50.0),
        "p90": 1e3 * hist.percentile(90.0),
        "p99": 1e3 * hist.percentile(99.0),
        "max": 1e3 * hist.max_value,
    }

#: Supported operations and their payload / result conventions:
#: ``predict``: payload is a :class:`SparseBatch`, result is the
#: ``predict_batch`` margin array for that payload's rows;
#: ``query``:   payload is an int64 key array, result is the
#: ``query_many`` / ``estimate_weights`` estimate array;
#: ``top_k``:   payload is an int k, result is ``top_weights(k)``.
_OPS = ("predict", "query", "top_k")


class _Request:
    """One in-flight request (internal)."""

    __slots__ = ("op", "payload", "event", "result", "error", "version", "done_at")

    def __init__(self, op, payload):
        self.op = op
        self.payload = payload
        self.event = threading.Event()
        self.result = None
        self.error = None
        self.version = -1
        self.done_at = 0.0

    def wait(self, timeout=None):
        """Block until flushed; return ``(result, version)`` or raise."""
        if not self.event.wait(timeout):
            raise TimeoutError(f"{self.op} request not flushed within {timeout}s")
        if self.error is not None:
            raise self.error
        return self.result, self.version


class MicroBatchCoalescer:
    """Accumulate concurrent requests; flush each op as one batched call.

    Parameters
    ----------
    snapshots:
        A :class:`~repro.serving.snapshot.SnapshotManager`; every flush
        is answered entirely from ``snapshots.current``.
    latency_budget:
        Max seconds a request may wait for batch-mates before its queue
        is flushed anyway.  The knob trades tail latency for batch size.
    max_batch:
        Flush a queue as soon as it holds this many requests, budget
        notwithstanding.
    registry:
        The :class:`~repro.telemetry.MetricsRegistry` all observability
        lives in (a private one is created when omitted).  The legacy
        dict attributes (``requests`` / ``flushes`` / ``flush_reasons``
        / ``batch_size_hist``) are preserved as read-only *views* over
        registry counters — deprecated; read :meth:`stats` or the
        registry snapshot instead.
    """

    def __init__(
        self,
        snapshots,
        *,
        latency_budget: float = 1e-3,
        max_batch: int = 64,
        registry: MetricsRegistry | None = None,
    ):
        if latency_budget < 0:
            raise ValueError("latency_budget must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._snapshots = snapshots
        self.latency_budget = float(latency_budget)
        self.max_batch = int(max_batch)
        self._cond = threading.Condition()
        self._queues = {op: deque() for op in _OPS}
        self._closing = False
        # Observability: every counter/gauge/histogram lives in one
        # registry, so stats() is a single consistent cut (no more
        # field-by-field reads racing the flush thread).
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._m_requests = {
            op: reg.counter("serve.requests", op=op) for op in _OPS
        }
        self._m_flushes = {
            op: reg.counter("serve.flushes", op=op) for op in _OPS
        }
        self._m_flush_reasons = {
            r: reg.counter("serve.flush_reasons", reason=r) for r in _REASONS
        }
        #: Exact per-(op, size) flush counters — the legacy
        #: ``batch_size_hist`` integer histogram, registry-backed.
        self._m_batch_sizes: dict[str, dict[int, object]] = {
            op: {} for op in _OPS
        }
        self._m_pending = {
            op: reg.gauge("serve.pending", op=op) for op in _OPS
        }
        self._m_queue_wait = {
            op: reg.histogram("serve.queue_wait_seconds", op=op)
            for op in _OPS
        }
        self._m_flush_seconds = {
            op: reg.histogram("serve.flush_seconds", op=op) for op in _OPS
        }
        self._worker = threading.Thread(
            target=self._run, name="repro-coalescer", daemon=True
        )
        self._worker.start()

    # -- legacy dict views (deprecated: read stats() / the registry) ---
    @property
    def requests(self) -> dict:
        """Deprecated view of the ``serve.requests`` counters."""
        with self.registry.locked():
            return {op: c._value for op, c in self._m_requests.items()}

    @property
    def flushes(self) -> dict:
        """Deprecated view of the ``serve.flushes`` counters."""
        with self.registry.locked():
            return {op: c._value for op, c in self._m_flushes.items()}

    @property
    def flush_reasons(self) -> dict:
        """Deprecated view of the ``serve.flush_reasons`` counters."""
        with self.registry.locked():
            return {r: c._value for r, c in self._m_flush_reasons.items()}

    @property
    def batch_size_hist(self) -> dict:
        """Deprecated view of the ``serve.batch_size`` counters
        (op -> {batch size -> flush count}, sizes ascending)."""
        with self.registry.locked():
            return {
                op: {size: c._value for size, c in sorted(sizes.items())}
                for op, sizes in self._m_batch_sizes.items()
            }

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_nowait(self, op: str, payload) -> _Request:
        """Enqueue without blocking; caller waits on the returned request."""
        if op not in self._queues:
            raise ValueError(f"unknown op {op!r}; expected one of {_OPS}")
        req = _Request(op, payload)
        with self._cond:
            if self._closing:
                raise RuntimeError("coalescer is closed")
            self._queues[op].append((time.monotonic(), req))
            with self.registry.locked():
                self._m_requests[op].inc()
                self._m_pending[op].inc()
            self._cond.notify()
        return req

    def submit(self, op: str, payload, timeout: float | None = None):
        """Enqueue and block for the flushed answer: ``(result, version)``."""
        return self.submit_nowait(op, payload).wait(timeout)

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _run(self):
        while True:
            with self._cond:
                while True:
                    now = time.monotonic()
                    ready = None
                    deadline = None
                    for op, q in self._queues.items():
                        if not q:
                            continue
                        if self._closing:
                            ready = (op, "drain")
                            break
                        if len(q) >= self.max_batch:
                            ready = (op, "max_batch")
                            break
                        due = q[0][0] + self.latency_budget
                        if due <= now:
                            ready = (op, "budget")
                            break
                        if deadline is None or due < deadline:
                            deadline = due
                    if ready is not None:
                        op, reason = ready
                        q = self._queues[op]
                        # Keep each entry's enqueue stamp: the flush
                        # records the queue-wait distribution from it.
                        batch = [q.popleft() for _ in range(min(len(q), self.max_batch))]
                        self._m_pending[op].dec(len(batch))
                        break
                    if self._closing:
                        return
                    self._cond.wait(None if deadline is None else deadline - now)
            self._flush(op, batch, reason)

    def _flush(self, op, entries, reason):
        n = len(entries)
        start = time.monotonic()
        reg = self.registry
        with reg.locked():
            self._m_flushes[op].inc()
            self._m_flush_reasons[reason].inc()
            sizes = self._m_batch_sizes[op]
            size_counter = sizes.get(n)
            if size_counter is None:
                size_counter = reg.counter("serve.batch_size", op=op, size=n)
                sizes[n] = size_counter
            size_counter.inc()
        # One vectorized record for the whole batch's queue waits; the
        # oldest entry is first, so entries[0] carries the max wait.
        self._m_queue_wait[op].record_many(
            [start - enq for enq, _ in entries]
        )
        reqs = [r for _, r in entries]
        snap = self._snapshots.current
        try:
            with trace.span(
                "serve.flush", op=op, n=n, reason=reason,
                version=snap.version,
            ):
                results = self._HANDLERS[op](
                    snap.model, [r.payload for r in reqs]
                )
        except BaseException as exc:  # propagate to every waiter in the batch
            for r in reqs:
                r.error = exc
                r.event.set()
            self._m_flush_seconds[op].record(time.monotonic() - start)
            return
        done = time.monotonic()
        for r, res in zip(reqs, results):
            r.result = res
            r.version = snap.version
            r.done_at = done
            r.event.set()
        self._m_flush_seconds[op].record(done - start)
        if hooks.on_flush:
            hooks.flush(op, n, reason, start - entries[0][0], done - start)

    # ------------------------------------------------------------------
    # Batched handlers — ONE kernel call per flush.
    # ------------------------------------------------------------------
    @staticmethod
    def _flush_predict(model, payloads):
        if len(payloads) == 1:
            return [model.predict_batch(payloads[0])]
        sizes = [len(b) for b in payloads]
        n = sum(sizes)
        indptr = np.zeros(n + 1, dtype=np.int64)
        counts = np.concatenate([np.diff(b.indptr) for b in payloads])
        np.cumsum(counts, out=indptr[1:])
        # Every part comes from an already-validated batch, so the
        # merge skips re-validation (labels are ignored by predict).
        merged = SparseBatch._trusted(
            indptr,
            np.concatenate([b.indices for b in payloads]),
            np.concatenate([b.values for b in payloads]),
            np.ones(n, dtype=np.int64),
        )
        out = model.predict_batch(merged)
        return np.split(out, np.cumsum(sizes)[:-1])

    @staticmethod
    def _flush_query(model, payloads):
        if len(payloads) == 1:
            return [model.query_many(payloads[0])]
        sizes = [p.size for p in payloads]
        out = model.query_many(np.concatenate(payloads))
        return np.split(out, np.cumsum(sizes)[:-1])

    @staticmethod
    def _flush_top_k(model, payloads):
        # top_weights(k) computes one full ranking and slices, so the
        # answer for any k is a prefix of the answer for max(payloads).
        top = model.top_weights(max(payloads))
        return [top[:k] for k in payloads]

    #: op -> batched handler; a dict lookup on the flush path instead of
    #: a per-flush getattr/name-mangling round trip.
    _HANDLERS = {
        "predict": _flush_predict.__func__,
        "query": _flush_query.__func__,
        "top_k": _flush_top_k.__func__,
    }

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """One *consistent* observability cut (legacy dict shape plus
        latency summaries), taken under the registry mutex so a
        histogram can never pair with stale counters."""
        with self.registry.locked():
            return {
                "latency_budget": self.latency_budget,
                "max_batch": self.max_batch,
                "requests": {
                    op: c._value for op, c in self._m_requests.items()
                },
                "flushes": {
                    op: c._value for op, c in self._m_flushes.items()
                },
                "flush_reasons": {
                    r: c._value for r, c in self._m_flush_reasons.items()
                },
                "batch_size_hist": {
                    op: {s: c._value for s, c in sorted(sizes.items())}
                    for op, sizes in self._m_batch_sizes.items()
                },
                "pending": {
                    op: g._value for op, g in self._m_pending.items()
                },
                "queue_wait_ms": {
                    op: _hist_summary_ms(h)
                    for op, h in self._m_queue_wait.items()
                },
                "flush_ms": {
                    op: _hist_summary_ms(h)
                    for op, h in self._m_flush_seconds.items()
                },
            }

    def close(self):
        """Drain all pending requests, then stop the worker thread."""
        with self._cond:
            self._closing = True
            self._cond.notify()
        self._worker.join()
