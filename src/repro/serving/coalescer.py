"""Micro-batching request coalescer — the serving perf core.

Concurrent callers submit single requests; the coalescer accumulates
them in per-operation queues and flushes each queue as **one** batched
kernel call against the latest published snapshot.  A queue is flushed
when either

* its oldest request has waited ``latency_budget`` seconds, or
* it holds ``max_batch`` requests, or
* the coalescer is closing (drain).

All flushes run on a single worker thread, which is what licenses the
snapshots' shared :class:`~repro.hashing.batch.BatchHasher` /
:class:`~repro.kernels.workspace.KernelWorkspace` reader caches: the
batched read paths are the only code that touches them, and they only
ever run here.

Because the batched kernels are bit-identical to their scalar twins
(PR 3-5's equivalence discipline), coalescing is *invisible* to
callers: a coalesced answer equals the serial-scalar answer on the
same snapshot bit for bit — the tests and the serving benchmark both
assert this.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from repro.data.batch import SparseBatch

__all__ = ["MicroBatchCoalescer"]

#: Supported operations and their payload / result conventions:
#: ``predict``: payload is a :class:`SparseBatch`, result is the
#: ``predict_batch`` margin array for that payload's rows;
#: ``query``:   payload is an int64 key array, result is the
#: ``query_many`` / ``estimate_weights`` estimate array;
#: ``top_k``:   payload is an int k, result is ``top_weights(k)``.
_OPS = ("predict", "query", "top_k")


class _Request:
    """One in-flight request (internal)."""

    __slots__ = ("op", "payload", "event", "result", "error", "version", "done_at")

    def __init__(self, op, payload):
        self.op = op
        self.payload = payload
        self.event = threading.Event()
        self.result = None
        self.error = None
        self.version = -1
        self.done_at = 0.0

    def wait(self, timeout=None):
        """Block until flushed; return ``(result, version)`` or raise."""
        if not self.event.wait(timeout):
            raise TimeoutError(f"{self.op} request not flushed within {timeout}s")
        if self.error is not None:
            raise self.error
        return self.result, self.version


class MicroBatchCoalescer:
    """Accumulate concurrent requests; flush each op as one batched call.

    Parameters
    ----------
    snapshots:
        A :class:`~repro.serving.snapshot.SnapshotManager`; every flush
        is answered entirely from ``snapshots.current``.
    latency_budget:
        Max seconds a request may wait for batch-mates before its queue
        is flushed anyway.  The knob trades tail latency for batch size.
    max_batch:
        Flush a queue as soon as it holds this many requests, budget
        notwithstanding.
    """

    def __init__(self, snapshots, *, latency_budget: float = 1e-3, max_batch: int = 64):
        if latency_budget < 0:
            raise ValueError("latency_budget must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._snapshots = snapshots
        self.latency_budget = float(latency_budget)
        self.max_batch = int(max_batch)
        self._cond = threading.Condition()
        self._queues = {op: deque() for op in _OPS}
        self._closing = False
        # Observability (mutated only under self._cond or on the worker).
        self.requests = {op: 0 for op in _OPS}
        self.flushes = {op: 0 for op in _OPS}
        self.flush_reasons = {"budget": 0, "max_batch": 0, "drain": 0}
        self.batch_size_hist = {op: {} for op in _OPS}
        self._worker = threading.Thread(
            target=self._run, name="repro-coalescer", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_nowait(self, op: str, payload) -> _Request:
        """Enqueue without blocking; caller waits on the returned request."""
        if op not in self._queues:
            raise ValueError(f"unknown op {op!r}; expected one of {_OPS}")
        req = _Request(op, payload)
        with self._cond:
            if self._closing:
                raise RuntimeError("coalescer is closed")
            self._queues[op].append((time.monotonic(), req))
            self.requests[op] += 1
            self._cond.notify()
        return req

    def submit(self, op: str, payload, timeout: float | None = None):
        """Enqueue and block for the flushed answer: ``(result, version)``."""
        return self.submit_nowait(op, payload).wait(timeout)

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _run(self):
        while True:
            with self._cond:
                while True:
                    now = time.monotonic()
                    ready = None
                    deadline = None
                    for op, q in self._queues.items():
                        if not q:
                            continue
                        if self._closing:
                            ready = (op, "drain")
                            break
                        if len(q) >= self.max_batch:
                            ready = (op, "max_batch")
                            break
                        due = q[0][0] + self.latency_budget
                        if due <= now:
                            ready = (op, "budget")
                            break
                        if deadline is None or due < deadline:
                            deadline = due
                    if ready is not None:
                        op, reason = ready
                        q = self._queues[op]
                        batch = [q.popleft()[1] for _ in range(min(len(q), self.max_batch))]
                        break
                    if self._closing:
                        return
                    self._cond.wait(None if deadline is None else deadline - now)
            self._flush(op, batch, reason)

    def _flush(self, op, reqs, reason):
        self.flushes[op] += 1
        self.flush_reasons[reason] += 1
        hist = self.batch_size_hist[op]
        hist[len(reqs)] = hist.get(len(reqs), 0) + 1
        snap = self._snapshots.current
        try:
            results = self._HANDLERS[op](snap.model, [r.payload for r in reqs])
        except BaseException as exc:  # propagate to every waiter in the batch
            for r in reqs:
                r.error = exc
                r.event.set()
            return
        done = time.monotonic()
        for r, res in zip(reqs, results):
            r.result = res
            r.version = snap.version
            r.done_at = done
            r.event.set()

    # ------------------------------------------------------------------
    # Batched handlers — ONE kernel call per flush.
    # ------------------------------------------------------------------
    @staticmethod
    def _flush_predict(model, payloads):
        if len(payloads) == 1:
            return [model.predict_batch(payloads[0])]
        sizes = [len(b) for b in payloads]
        n = sum(sizes)
        indptr = np.zeros(n + 1, dtype=np.int64)
        counts = np.concatenate([np.diff(b.indptr) for b in payloads])
        np.cumsum(counts, out=indptr[1:])
        # Every part comes from an already-validated batch, so the
        # merge skips re-validation (labels are ignored by predict).
        merged = SparseBatch._trusted(
            indptr,
            np.concatenate([b.indices for b in payloads]),
            np.concatenate([b.values for b in payloads]),
            np.ones(n, dtype=np.int64),
        )
        out = model.predict_batch(merged)
        return np.split(out, np.cumsum(sizes)[:-1])

    @staticmethod
    def _flush_query(model, payloads):
        if len(payloads) == 1:
            return [model.query_many(payloads[0])]
        sizes = [p.size for p in payloads]
        out = model.query_many(np.concatenate(payloads))
        return np.split(out, np.cumsum(sizes)[:-1])

    @staticmethod
    def _flush_top_k(model, payloads):
        # top_weights(k) computes one full ranking and slices, so the
        # answer for any k is a prefix of the answer for max(payloads).
        top = model.top_weights(max(payloads))
        return [top[:k] for k in payloads]

    #: op -> batched handler; a dict lookup on the flush path instead of
    #: a per-flush getattr/name-mangling round trip.
    _HANDLERS = {
        "predict": _flush_predict.__func__,
        "query": _flush_query.__func__,
        "top_k": _flush_top_k.__func__,
    }

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._cond:
            pending = {op: len(q) for op, q in self._queues.items()}
            return {
                "latency_budget": self.latency_budget,
                "max_batch": self.max_batch,
                "requests": dict(self.requests),
                "flushes": dict(self.flushes),
                "flush_reasons": dict(self.flush_reasons),
                "batch_size_hist": {
                    op: dict(sorted(h.items())) for op, h in self.batch_size_hist.items()
                },
                "pending": pending,
            }

    def close(self):
        """Drain all pending requests, then stop the worker thread."""
        with self._cond:
            self._closing = True
            self._cond.notify()
        self._worker.join()
