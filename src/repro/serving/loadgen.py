"""Workload generation and load drivers for the serving benchmark.

Two driver shapes, matching the two questions the benchmark answers:

* **closed loop** (:func:`run_closed_loop`) — N client threads each
  issue their next request the moment the previous one completes.
  Measures *saturation throughput*; run once coalesced and once
  against the serial-scalar baseline to get the coalescing-speedup
  ratio the CI gate floors.
* **open loop** (:func:`run_open_loop`) — requests arrive on a Poisson
  schedule at a configured offered rate, regardless of completions
  (no coordinated omission).  Measures the latency distribution under
  load, recorded into a bounded telemetry
  :class:`~repro.telemetry.Histogram` (p50/p90/p99/max) instead of a
  raw per-request list, so long runs hold constant memory.

Request streams (:func:`build_requests`) follow the paper's serving
assumptions: Zipf-distributed query keys (hot features dominate),
heavy-tailed predict sizes (Pareto example counts), and a
query-heavy op mix.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque

import numpy as np

from repro.data.batch import SparseBatch
from repro.serving.coalescer import DeadlineExceeded, Overload
from repro.telemetry import Histogram

__all__ = [
    "build_requests",
    "latency_histogram",
    "percentile",
    "run_closed_loop",
    "run_open_loop",
]


def latency_histogram(name: str = "loadgen.latency_seconds") -> Histogram:
    """The standard loadgen latency histogram: 1 µs – 1000 s log-scale
    buckets, 9 per decade (~±12% bucket width — comfortably inside the
    run-to-run noise of any latency percentile it feeds)."""
    return Histogram(name, lo=1e-6, hi=1e3, buckets_per_decade=9)


def build_requests(
    n_requests: int,
    *,
    key_space: int,
    examples,
    seed: int = 0,
    zipf_a: float = 1.3,
    mix=(("query", 0.6), ("predict", 0.3), ("top_k", 0.1)),
    max_keys: int = 64,
    max_examples: int = 16,
    top_k_max: int = 32,
    query_size_scale: float = 8.0,
    predict_size_scale: float = 2.0,
) -> list[tuple[str, object]]:
    """Generate ``(op, payload)`` pairs for the drivers below.

    ``examples`` supplies held-out :class:`~repro.data.sparse.SparseExample`
    rows that predict payloads draw from (with replacement).  Query
    keys are Zipf over ``[0, key_space)``; request sizes are
    heavy-tailed — ``1 + min(scale * Pareto(1.5), cap)`` keys or
    examples per request, the dashboard/monitor regime where one
    request asks about many features (or scores a burst of traffic)
    at once.
    """
    rng = np.random.default_rng(seed)
    ops = [op for op, _ in mix]
    probs = np.array([w for _, w in mix], dtype=np.float64)
    probs /= probs.sum()
    choices = rng.choice(len(ops), size=n_requests, p=probs)
    requests: list[tuple[str, object]] = []
    for c in choices:
        op = ops[c]
        if op == "query":
            n = 1 + min(int(query_size_scale * rng.pareto(1.5)), max_keys - 1)
            keys = (rng.zipf(zipf_a, size=n) - 1) % key_space
            requests.append((op, keys.astype(np.int64)))
        elif op == "predict":
            n = 1 + min(
                int(predict_size_scale * rng.pareto(1.5)), max_examples - 1
            )
            rows = [examples[int(i)] for i in rng.integers(0, len(examples), n)]
            requests.append((op, SparseBatch.from_examples(rows)))
        else:
            requests.append((op, 1 + int(rng.integers(0, top_k_max))))
    return requests


def percentile(values, q: float) -> float:
    """Linear-interpolation percentile of a sequence (q in [0, 100])."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))


def run_closed_loop(
    server,
    requests,
    *,
    n_clients: int = 16,
    serial: bool = False,
):
    """Drive ``requests`` through ``n_clients`` threads, each issuing its
    next request as soon as the previous completes.

    Returns ``(elapsed_seconds, results)`` where ``results[i]`` is the
    ``(result, version)`` pair for ``requests[i]``.
    """
    work: queue.SimpleQueue = queue.SimpleQueue()
    for item in enumerate(requests):
        work.put(item)
    results: list = [None] * len(requests)
    issue = server.serial_request if serial else server.request

    def client():
        while True:
            try:
                i, (op, payload) = work.get_nowait()
            except queue.Empty:
                return
            results[i] = issue(op, payload)

    threads = [
        threading.Thread(target=client, name=f"repro-loadgen-{k}", daemon=True)
        for k in range(n_clients)
    ]
    start = time.monotonic()
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    elapsed = time.monotonic() - start
    return elapsed, results


def run_open_loop(
    server,
    requests,
    *,
    offered_rps: float,
    seed: int = 0,
    histogram: Histogram | None = None,
    reap_every: int = 512,
    shed_counts: dict | None = None,
):
    """Submit ``requests`` on a Poisson arrival schedule at ``offered_rps``.

    A single dispatcher thread sleeps to each scheduled arrival and
    submits without waiting (``submit_nowait``); if it falls behind the
    schedule it submits immediately — the schedule never slows to match
    the server (open loop, so no coordinated omission).  Latency per
    request is measured from its *scheduled* arrival to its flush
    completion.

    Latencies land in a telemetry :class:`Histogram` (pass one via
    ``histogram`` to aggregate across runs), and completed requests are
    reaped from the in-flight deque every ``reap_every`` submissions —
    so an arbitrarily long open-loop run holds O(buckets + in-flight)
    memory instead of one record per request, and a server that keeps
    up bounds "in-flight" at its queue depth.

    Returns ``(histogram, elapsed_seconds)``; read
    ``histogram.percentile(50/90/99)`` / ``histogram.max_value`` /
    ``histogram.count`` for the latency report.

    Pass a dict as ``shed_counts`` to drive a server with admission
    control past saturation: typed rejections — ``Overload`` at
    submission, ``DeadlineExceeded`` at flush — are *counted* there
    (keys ``overload``, ``deadline``, ``completed``) instead of
    raised, and the histogram records only admitted completions (the
    goodput view).  Without it, any request error raises — the legacy
    contract, which an unbounded server's benches rely on.
    """
    if offered_rps <= 0:
        raise ValueError("offered_rps must be > 0")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / offered_rps, size=len(requests))
    schedule = np.cumsum(gaps)
    hist = histogram if histogram is not None else latency_histogram(
        "open_loop.latency_seconds"
    )
    if shed_counts is not None:
        for key in ("overload", "deadline", "completed"):
            shed_counts.setdefault(key, 0)
    pending: deque = deque()
    t0 = time.monotonic()

    def reap(block: bool) -> None:
        # Flushes complete roughly in submission order, so draining
        # completed requests from the left keeps the deque short.
        batch: list[float] = []
        while pending:
            at, req = pending[0]
            if not req.event.is_set():
                if not block:
                    break
                req.event.wait()
            pending.popleft()
            if req.error is not None:
                if shed_counts is not None and isinstance(
                        req.error, (DeadlineExceeded, Overload)):
                    shed_counts["deadline"] += 1
                    continue
                raise req.error
            if shed_counts is not None:
                shed_counts["completed"] += 1
            batch.append(req.done_at - (t0 + at))
        if batch:
            hist.record_many(batch)

    for (op, payload), at in zip(requests, schedule):
        delay = (t0 + at) - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        try:
            req = server.submit_nowait(op, payload)
        except Overload:
            if shed_counts is None:
                raise
            shed_counts["overload"] += 1
            continue
        pending.append((at, req))
        if len(pending) >= reap_every:
            reap(block=False)
    reap(block=True)
    elapsed = time.monotonic() - t0
    return hist, elapsed
