"""Workload generation and load drivers for the serving benchmark.

Two driver shapes, matching the two questions the benchmark answers:

* **closed loop** (:func:`run_closed_loop`) — N client threads each
  issue their next request the moment the previous one completes.
  Measures *saturation throughput*; run once coalesced and once
  against the serial-scalar baseline to get the coalescing-speedup
  ratio the CI gate floors.
* **open loop** (:func:`run_open_loop`) — requests arrive on a Poisson
  schedule at a configured offered rate, regardless of completions
  (no coordinated omission).  Measures the latency distribution
  (p50/p99) under load.

Request streams (:func:`build_requests`) follow the paper's serving
assumptions: Zipf-distributed query keys (hot features dominate),
heavy-tailed predict sizes (Pareto example counts), and a
query-heavy op mix.
"""

from __future__ import annotations

import queue
import threading
import time

import numpy as np

from repro.data.batch import SparseBatch

__all__ = [
    "build_requests",
    "percentile",
    "run_closed_loop",
    "run_open_loop",
]


def build_requests(
    n_requests: int,
    *,
    key_space: int,
    examples,
    seed: int = 0,
    zipf_a: float = 1.3,
    mix=(("query", 0.6), ("predict", 0.3), ("top_k", 0.1)),
    max_keys: int = 64,
    max_examples: int = 16,
    top_k_max: int = 32,
    query_size_scale: float = 8.0,
    predict_size_scale: float = 2.0,
) -> list[tuple[str, object]]:
    """Generate ``(op, payload)`` pairs for the drivers below.

    ``examples`` supplies held-out :class:`~repro.data.sparse.SparseExample`
    rows that predict payloads draw from (with replacement).  Query
    keys are Zipf over ``[0, key_space)``; request sizes are
    heavy-tailed — ``1 + min(scale * Pareto(1.5), cap)`` keys or
    examples per request, the dashboard/monitor regime where one
    request asks about many features (or scores a burst of traffic)
    at once.
    """
    rng = np.random.default_rng(seed)
    ops = [op for op, _ in mix]
    probs = np.array([w for _, w in mix], dtype=np.float64)
    probs /= probs.sum()
    choices = rng.choice(len(ops), size=n_requests, p=probs)
    requests: list[tuple[str, object]] = []
    for c in choices:
        op = ops[c]
        if op == "query":
            n = 1 + min(int(query_size_scale * rng.pareto(1.5)), max_keys - 1)
            keys = (rng.zipf(zipf_a, size=n) - 1) % key_space
            requests.append((op, keys.astype(np.int64)))
        elif op == "predict":
            n = 1 + min(
                int(predict_size_scale * rng.pareto(1.5)), max_examples - 1
            )
            rows = [examples[int(i)] for i in rng.integers(0, len(examples), n)]
            requests.append((op, SparseBatch.from_examples(rows)))
        else:
            requests.append((op, 1 + int(rng.integers(0, top_k_max))))
    return requests


def percentile(values, q: float) -> float:
    """Linear-interpolation percentile of a sequence (q in [0, 100])."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))


def run_closed_loop(
    server,
    requests,
    *,
    n_clients: int = 16,
    serial: bool = False,
):
    """Drive ``requests`` through ``n_clients`` threads, each issuing its
    next request as soon as the previous completes.

    Returns ``(elapsed_seconds, results)`` where ``results[i]`` is the
    ``(result, version)`` pair for ``requests[i]``.
    """
    work: queue.SimpleQueue = queue.SimpleQueue()
    for item in enumerate(requests):
        work.put(item)
    results: list = [None] * len(requests)
    issue = server.serial_request if serial else server.request

    def client():
        while True:
            try:
                i, (op, payload) = work.get_nowait()
            except queue.Empty:
                return
            results[i] = issue(op, payload)

    threads = [
        threading.Thread(target=client, name=f"repro-loadgen-{k}", daemon=True)
        for k in range(n_clients)
    ]
    start = time.monotonic()
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    elapsed = time.monotonic() - start
    return elapsed, results


def run_open_loop(server, requests, *, offered_rps: float, seed: int = 0):
    """Submit ``requests`` on a Poisson arrival schedule at ``offered_rps``.

    A single dispatcher thread sleeps to each scheduled arrival and
    submits without waiting (``submit_nowait``); if it falls behind the
    schedule it submits immediately — the schedule never slows to match
    the server (open loop, so no coordinated omission).  Latency per
    request is measured from its *scheduled* arrival to its flush
    completion.

    Returns ``(latencies_seconds, elapsed_seconds)``.
    """
    if offered_rps <= 0:
        raise ValueError("offered_rps must be > 0")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / offered_rps, size=len(requests))
    schedule = np.cumsum(gaps)
    pending = []
    t0 = time.monotonic()
    for (op, payload), at in zip(requests, schedule):
        delay = (t0 + at) - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        pending.append((at, server.submit_nowait(op, payload)))
    for _, req in pending:
        req.event.wait()
    elapsed = time.monotonic() - t0
    latencies = np.array(
        [req.done_at - (t0 + at) for at, req in pending], dtype=np.float64
    )
    for _, req in pending:
        if req.error is not None:
            raise req.error
    return latencies, elapsed
