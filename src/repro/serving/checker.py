"""Black-box snapshot-consistency checking.

The serving correctness contract has three clauses:

1. **Monotone reads** — each client observes non-decreasing snapshot
   versions.
2. **Reads hit published states** — every read's version appears in the
   server's publish log (no read is served from a half-applied update).
3. **Published states are the sequential states** — a read's result is
   bit-equal to the *scalar* answer computed on an independent
   sequential re-execution of the training stream, stopped at exactly
   the example count the publish log recorded for that version.

:func:`check_snapshot_consistency` takes only observable artifacts —
the publish log, the per-client read logs, and the (replayable)
training stream — and validates all three clauses without looking
inside the server.  Because the sequential reference uses the scalar
paths while serving used coalesced batched kernels, a pass also
re-certifies the batched == scalar bit-equality discipline end to end.
"""

from __future__ import annotations

import numpy as np

from repro.serving.server import scalar_answer

__all__ = ["ConsistencyError", "check_snapshot_consistency"]


class ConsistencyError(AssertionError):
    """A serving history violated the snapshot-consistency contract."""


def _results_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a = np.asarray(a)
        b = np.asarray(b)
        return a.shape == b.shape and np.array_equal(a, b)
    return a == b


def check_snapshot_consistency(
    make_model, batches, publish_log, client_records
) -> dict:
    """Validate concurrent read logs against a sequential re-execution.

    Parameters
    ----------
    make_model:
        Zero-arg factory producing a model identical to the served one
        at t=0 (same seeds, widths, hyperparameters).
    batches:
        The training stream, replayable in the served order (list or
        re-iterable of SparseBatch).
    publish_log:
        ``SnapshotManager.publish_log`` — ``(version, t)`` per publish.
    client_records:
        Iterable of per-client :class:`~repro.serving.client.ReadRecord`
        lists (each list in that client's issue order).

    Returns
    -------
    dict with ``snapshots_rebuilt`` and ``reads_checked`` counts.

    Raises
    ------
    ConsistencyError on any contract violation.
    """
    if not publish_log:
        raise ConsistencyError("empty publish log")
    if publish_log[0] != (0, publish_log[0][1]):
        raise ConsistencyError(
            f"publish log must start at version 0, got {publish_log[0]}"
        )
    versions = [v for v, _ in publish_log]
    if versions != list(range(len(versions))):
        raise ConsistencyError(f"publish versions not contiguous: {versions}")
    ts = [t for _, t in publish_log]
    if any(b < a for a, b in zip(ts, ts[1:])):
        raise ConsistencyError(f"publish example counts not monotone: {ts}")

    # Sequential re-execution: rebuild the model state behind each
    # published (version, t) by training a fresh model to exactly t
    # examples and folding a snapshot there.
    model = make_model()
    snapshots: dict[int, object] = {}
    batch_iter = iter(batches)
    for version, t in publish_log:
        while model.t < t:
            try:
                model.fit_batch(next(batch_iter))
            except StopIteration:
                raise ConsistencyError(
                    f"stream exhausted at t={model.t} rebuilding version "
                    f"{version} (t={t})"
                ) from None
        if model.t != t:
            raise ConsistencyError(
                f"publish t={t} (version {version}) is not a batch "
                f"boundary of the replayed stream (reached t={model.t})"
            )
        snapshots[version] = model.snapshot()

    reads_checked = 0
    for client_idx, records in enumerate(client_records):
        last_version = -1
        for read_idx, rec in enumerate(records):
            where = f"client {client_idx} read {read_idx} ({rec.op})"
            if rec.version < last_version:
                raise ConsistencyError(
                    f"{where}: version {rec.version} after {last_version} "
                    "(non-monotone reads)"
                )
            last_version = rec.version
            if rec.version not in snapshots:
                raise ConsistencyError(
                    f"{where}: version {rec.version} never published "
                    f"(log has {sorted(snapshots)})"
                )
            expected = scalar_answer(snapshots[rec.version], rec.op, rec.payload)
            if not _results_equal(expected, rec.result):
                raise ConsistencyError(
                    f"{where}: result differs from sequential reference at "
                    f"version {rec.version}\n  served:    {rec.result!r}\n"
                    f"  reference: {expected!r}"
                )
            reads_checked += 1

    return {"snapshots_rebuilt": len(snapshots), "reads_checked": reads_checked}
