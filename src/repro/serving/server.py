"""A live sketch model behind the micro-batching coalescer.

:class:`SketchServer` glues the pieces together: it owns the model, a
:class:`~repro.serving.snapshot.SnapshotManager` that the trainer
publishes into, and a
:class:`~repro.serving.coalescer.MicroBatchCoalescer` that answers
reads from the latest snapshot.  Training runs either inline
(:meth:`SketchServer.train`) or on a background daemon thread
(:meth:`SketchServer.start_training`); reads can be issued from any
number of client threads concurrently.

:func:`scalar_answer` is the serving-level scalar reference: it
answers any op one element at a time through the model's scalar code
paths (``predict_margin`` / ``estimate_weights`` / ``top_weights``),
touching no shared caches.  :meth:`SketchServer.serial_request` routes
through it under a lock — the baseline the benchmark's
coalescing-speedup ratio is measured against, and the oracle the
consistency checker compares coalesced answers to.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.data.sparse import SparseExample
from repro.serving.coalescer import MicroBatchCoalescer
from repro.serving.snapshot import SnapshotManager
from repro.telemetry import MetricsRegistry, hooks, trace

__all__ = ["SketchServer", "scalar_answer"]


def scalar_answer(model, op: str, payload):
    """Answer one request through the model's scalar paths only.

    Payload conventions match the coalescer's: ``predict`` takes a
    :class:`~repro.data.batch.SparseBatch` and returns its per-row
    margins, ``query`` takes an int64 key array and returns per-key
    estimates, ``top_k`` takes ``k`` and returns ``top_weights(k)``.
    Pure reads — safe from any thread as long as calls to *this
    function* are serialized with each other per model.
    """
    if op == "predict":
        batch = payload
        out = np.empty(len(batch), dtype=np.float64)
        for i in range(len(batch)):
            lo = batch.indptr[i]
            hi = batch.indptr[i + 1]
            out[i] = model.predict_margin(
                SparseExample(batch.indices[lo:hi], batch.values[lo:hi], 1)
            )
        return out
    if op == "query":
        keys = np.atleast_1d(np.asarray(payload, dtype=np.int64))
        out = np.empty(keys.size, dtype=np.float64)
        for i, key in enumerate(keys):
            out[i] = float(
                model.estimate_weights(np.array([key], dtype=np.int64))[0]
            )
        return out
    if op == "top_k":
        return model.top_weights(payload)
    raise ValueError(f"unknown op {op!r}")


class SketchServer:
    """Own a live model; train in the background; serve coalesced reads.

    Parameters
    ----------
    model:
        A WM / AWM / feature-hashing model exposing ``fit_batch``,
        the batched read paths, and ``snapshot()``.
    latency_budget, max_batch:
        Coalescer knobs (see
        :class:`~repro.serving.coalescer.MicroBatchCoalescer`).
    publish_every:
        Default number of training batches between snapshot publishes.
    max_pending, default_deadline:
        Admission-control knobs forwarded to the coalescer: bounded
        per-op queues shedding excess load with a typed ``Overload``,
        and per-request deadlines enforced at flush time.
    publish_breaker:
        Optional :class:`~repro.resilience.breaker.CircuitBreaker`
        around snapshot publication; while it is open the trainer keeps
        training and readers keep the last good snapshot.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan` threaded
        into the snapshot manager (``serve.publish``) and coalescer
        (``serve.flush``) hook points.
    registry:
        The unified :class:`~repro.telemetry.MetricsRegistry` for the
        whole server (training counters, publish timings, coalescer,
        reader hasher).  A private one is created when omitted;
        :meth:`stats` always reads one consistent cut of it.
    """

    def __init__(
        self,
        model,
        *,
        latency_budget: float = 1e-3,
        max_batch: int = 64,
        publish_every: int = 1,
        max_pending: int | None = None,
        default_deadline: float | None = None,
        publish_breaker=None,
        fault_plan=None,
        registry: MetricsRegistry | None = None,
    ):
        if publish_every < 1:
            raise ValueError("publish_every must be >= 1")
        self.model = model
        self.publish_every = int(publish_every)
        self.telemetry = registry if registry is not None else MetricsRegistry()
        self.snapshots = SnapshotManager(
            model, registry=self.telemetry, breaker=publish_breaker,
            fault_plan=fault_plan,
        )
        self.coalescer = MicroBatchCoalescer(
            self.snapshots, latency_budget=latency_budget,
            max_batch=max_batch, max_pending=max_pending,
            default_deadline=default_deadline, fault_plan=fault_plan,
            registry=self.telemetry,
        )
        self._serial_lock = threading.Lock()
        self.training_done = threading.Event()
        self._stop_training = threading.Event()
        self._train_thread = None
        self._closed = False
        self._m_batches = self.telemetry.counter("train.batches")
        self._m_examples = self.telemetry.counter("train.examples")
        self._m_seconds = self.telemetry.counter("train.seconds")
        self._m_publish_skipped = self.telemetry.counter(
            "train.publish_errors"
        )
        self._m_batch_seconds = self.telemetry.histogram(
            "train.batch_seconds"
        )

    # -- legacy counter views (deprecated: read stats() / the registry) -
    @property
    def batches_trained(self) -> int:
        """Deprecated view of the ``train.batches`` registry counter."""
        return self._m_batches.value

    @property
    def examples_trained(self) -> int:
        """Deprecated view of the ``train.examples`` registry counter."""
        return self._m_examples.value

    @property
    def train_seconds(self) -> float:
        """Deprecated view of the ``train.seconds`` registry counter."""
        return self._m_seconds.value

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(self, batches, publish_every: int | None = None):
        """Consume ``batches`` (iterable of SparseBatch), publishing as we go.

        Blocks until the stream is exhausted (or :meth:`stop_training`
        is set); publishes a final snapshot and sets ``training_done``.

        The trainer is crash-only with respect to publication: a
        failing publish (injected fault, tripped circuit breaker) is
        counted in ``train.publish_errors`` and training continues —
        readers keep the last good snapshot — and ``training_done`` is
        set no matter how the loop exits.
        """
        pe = self.publish_every if publish_every is None else int(publish_every)
        start = time.monotonic()
        try:
            for batch in batches:
                if self._stop_training.is_set():
                    break
                t0 = time.perf_counter()
                with trace.span("train.batch", n=len(batch)):
                    self.model.fit_batch(batch)
                seconds = time.perf_counter() - t0
                with self.telemetry.locked():
                    self._m_batches.inc()
                    self._m_examples.inc(len(batch))
                self._m_batch_seconds.record(seconds)
                if hooks.on_batch_end:
                    hooks.batch_end(self.model, len(batch), seconds)
                if self._m_batches.value % pe == 0:
                    self._publish_guarded()
        finally:
            self._publish_guarded()
            self._m_seconds.inc(time.monotonic() - start)
            self.training_done.set()

    def _publish_guarded(self) -> None:
        """Publish, surviving failure: the trainer must outlive a bad
        publish (the last good snapshot stays current)."""
        try:
            self.snapshots.publish()
        except Exception:
            self._m_publish_skipped.inc()

    def start_training(self, batches, publish_every: int | None = None):
        """Run :meth:`train` on a background daemon thread."""
        if self._train_thread is not None and self._train_thread.is_alive():
            raise RuntimeError("training already running")
        self.training_done.clear()
        self._stop_training.clear()
        self._train_thread = threading.Thread(
            target=self.train,
            args=(batches, publish_every),
            name="repro-trainer",
            daemon=True,
        )
        self._train_thread.start()
        return self._train_thread

    def stop_training(self, timeout: float | None = None):
        """Ask the trainer to stop at the next batch boundary and wait."""
        self._stop_training.set()
        if self._train_thread is not None:
            self._train_thread.join(timeout)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def request(self, op: str, payload, timeout: float | None = None):
        """Coalesced read: ``(result, snapshot_version)``."""
        return self.coalescer.submit(op, payload, timeout)

    def submit_nowait(self, op: str, payload):
        """Coalesced read without blocking (open-loop load generation)."""
        return self.coalescer.submit_nowait(op, payload)

    def serial_request(self, op: str, payload):
        """Serial-scalar read: ``(result, snapshot_version)``.

        The non-coalesced baseline — one request at a time, scalar
        kernels, same snapshot discipline.
        """
        with self._serial_lock:
            snap = self.snapshots.current
            return scalar_answer(snap.model, op, payload), snap.version

    def predict(self, batch, timeout: float | None = None):
        return self.request("predict", batch, timeout)[0]

    def query(self, keys, timeout: float | None = None):
        return self.request("query", keys, timeout)[0]

    def top_k(self, k: int, timeout: float | None = None):
        return self.request("top_k", k, timeout)[0]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Serving observability: training, snapshots, hasher, coalescer.

        Every layer records into the one shared registry
        (:attr:`telemetry`), and this method holds that registry's
        mutex across the whole assembly — the snapshot is a single
        consistent cut, never a new histogram paired with stale
        counters.  The dict shape is the legacy (pre-telemetry) one.
        """
        hasher = self.snapshots.reader_hasher
        snap = self.snapshots.current
        with self.telemetry.locked():
            hits = getattr(hasher, "hits", 0)
            misses = getattr(hasher, "misses", 0)
            total = hits + misses
            return {
                "model": type(self.model).__name__,
                "train": {
                    "batches": self._m_batches.value,
                    "examples": self._m_examples.value,
                    "seconds": self._m_seconds.value,
                    "done": self.training_done.is_set(),
                },
                "snapshots": {
                    "published": len(self.snapshots.publish_log),
                    "current_version": snap.version,
                    "current_t": snap.t,
                },
                "reader_hasher": {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": hits / total if total else 0.0,
                    "evictions": getattr(hasher, "evictions", 0),
                    "cached_keys": len(hasher),
                },
                "coalescer": self.coalescer.stats(),
            }

    def close(self, timeout: float = 30.0):
        """Graceful, bounded, idempotent shutdown.

        Stops the trainer at the next batch boundary and drains
        in-flight reads, splitting ``timeout`` across the two phases;
        requests still queued at the deadline are failed with a
        ``TimeoutError`` rather than abandoned.  Safe to call twice
        (and from ``atexit`` / a SIGINT handler — see ``repro serve``
        / ``repro loadgen``).
        """
        if self._closed:
            return
        self._closed = True
        deadline = time.monotonic() + timeout
        self.stop_training(timeout=timeout)
        self.coalescer.close(
            timeout=max(0.1, deadline - time.monotonic())
        )
