"""A live sketch model behind the micro-batching coalescer.

:class:`SketchServer` glues the pieces together: it owns the model, a
:class:`~repro.serving.snapshot.SnapshotManager` that the trainer
publishes into, and a
:class:`~repro.serving.coalescer.MicroBatchCoalescer` that answers
reads from the latest snapshot.  Training runs either inline
(:meth:`SketchServer.train`) or on a background daemon thread
(:meth:`SketchServer.start_training`); reads can be issued from any
number of client threads concurrently.

:func:`scalar_answer` is the serving-level scalar reference: it
answers any op one element at a time through the model's scalar code
paths (``predict_margin`` / ``estimate_weights`` / ``top_weights``),
touching no shared caches.  :meth:`SketchServer.serial_request` routes
through it under a lock — the baseline the benchmark's
coalescing-speedup ratio is measured against, and the oracle the
consistency checker compares coalesced answers to.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.data.sparse import SparseExample
from repro.serving.coalescer import MicroBatchCoalescer
from repro.serving.snapshot import SnapshotManager

__all__ = ["SketchServer", "scalar_answer"]


def scalar_answer(model, op: str, payload):
    """Answer one request through the model's scalar paths only.

    Payload conventions match the coalescer's: ``predict`` takes a
    :class:`~repro.data.batch.SparseBatch` and returns its per-row
    margins, ``query`` takes an int64 key array and returns per-key
    estimates, ``top_k`` takes ``k`` and returns ``top_weights(k)``.
    Pure reads — safe from any thread as long as calls to *this
    function* are serialized with each other per model.
    """
    if op == "predict":
        batch = payload
        out = np.empty(len(batch), dtype=np.float64)
        for i in range(len(batch)):
            lo = batch.indptr[i]
            hi = batch.indptr[i + 1]
            out[i] = model.predict_margin(
                SparseExample(batch.indices[lo:hi], batch.values[lo:hi], 1)
            )
        return out
    if op == "query":
        keys = np.atleast_1d(np.asarray(payload, dtype=np.int64))
        out = np.empty(keys.size, dtype=np.float64)
        for i, key in enumerate(keys):
            out[i] = float(
                model.estimate_weights(np.array([key], dtype=np.int64))[0]
            )
        return out
    if op == "top_k":
        return model.top_weights(payload)
    raise ValueError(f"unknown op {op!r}")


class SketchServer:
    """Own a live model; train in the background; serve coalesced reads.

    Parameters
    ----------
    model:
        A WM / AWM / feature-hashing model exposing ``fit_batch``,
        the batched read paths, and ``snapshot()``.
    latency_budget, max_batch:
        Coalescer knobs (see
        :class:`~repro.serving.coalescer.MicroBatchCoalescer`).
    publish_every:
        Default number of training batches between snapshot publishes.
    """

    def __init__(
        self,
        model,
        *,
        latency_budget: float = 1e-3,
        max_batch: int = 64,
        publish_every: int = 1,
    ):
        if publish_every < 1:
            raise ValueError("publish_every must be >= 1")
        self.model = model
        self.publish_every = int(publish_every)
        self.snapshots = SnapshotManager(model)
        self.coalescer = MicroBatchCoalescer(
            self.snapshots, latency_budget=latency_budget, max_batch=max_batch
        )
        self._serial_lock = threading.Lock()
        self.training_done = threading.Event()
        self._stop_training = threading.Event()
        self._train_thread = None
        self.batches_trained = 0
        self.examples_trained = 0
        self.train_seconds = 0.0

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(self, batches, publish_every: int | None = None):
        """Consume ``batches`` (iterable of SparseBatch), publishing as we go.

        Blocks until the stream is exhausted (or :meth:`stop_training`
        is set); publishes a final snapshot and sets ``training_done``.
        """
        pe = self.publish_every if publish_every is None else int(publish_every)
        start = time.monotonic()
        try:
            for batch in batches:
                if self._stop_training.is_set():
                    break
                self.model.fit_batch(batch)
                self.batches_trained += 1
                self.examples_trained += len(batch)
                if self.batches_trained % pe == 0:
                    self.snapshots.publish()
        finally:
            self.snapshots.publish()
            self.train_seconds += time.monotonic() - start
            self.training_done.set()

    def start_training(self, batches, publish_every: int | None = None):
        """Run :meth:`train` on a background daemon thread."""
        if self._train_thread is not None and self._train_thread.is_alive():
            raise RuntimeError("training already running")
        self.training_done.clear()
        self._stop_training.clear()
        self._train_thread = threading.Thread(
            target=self.train,
            args=(batches, publish_every),
            name="repro-trainer",
            daemon=True,
        )
        self._train_thread.start()
        return self._train_thread

    def stop_training(self, timeout: float | None = None):
        """Ask the trainer to stop at the next batch boundary and wait."""
        self._stop_training.set()
        if self._train_thread is not None:
            self._train_thread.join(timeout)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def request(self, op: str, payload, timeout: float | None = None):
        """Coalesced read: ``(result, snapshot_version)``."""
        return self.coalescer.submit(op, payload, timeout)

    def submit_nowait(self, op: str, payload):
        """Coalesced read without blocking (open-loop load generation)."""
        return self.coalescer.submit_nowait(op, payload)

    def serial_request(self, op: str, payload):
        """Serial-scalar read: ``(result, snapshot_version)``.

        The non-coalesced baseline — one request at a time, scalar
        kernels, same snapshot discipline.
        """
        with self._serial_lock:
            snap = self.snapshots.current
            return scalar_answer(snap.model, op, payload), snap.version

    def predict(self, batch, timeout: float | None = None):
        return self.request("predict", batch, timeout)[0]

    def query(self, keys, timeout: float | None = None):
        return self.request("query", keys, timeout)[0]

    def top_k(self, k: int, timeout: float | None = None):
        return self.request("top_k", k, timeout)[0]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Serving observability: training, snapshots, hasher, coalescer."""
        hasher = self.snapshots.reader_hasher
        hits = getattr(hasher, "hits", 0)
        misses = getattr(hasher, "misses", 0)
        total = hits + misses
        return {
            "model": type(self.model).__name__,
            "train": {
                "batches": self.batches_trained,
                "examples": self.examples_trained,
                "seconds": self.train_seconds,
                "done": self.training_done.is_set(),
            },
            "snapshots": {
                "published": len(self.snapshots.publish_log),
                "current_version": self.snapshots.current.version,
                "current_t": self.snapshots.current.t,
            },
            "reader_hasher": {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / total if total else 0.0,
                "evictions": getattr(hasher, "evictions", 0),
                "cached_keys": len(hasher),
            },
            "coalescer": self.coalescer.stats(),
        }

    def close(self):
        """Stop training (if running) and drain the coalescer."""
        self.stop_training(timeout=30.0)
        self.coalescer.close()
