"""Publish/read coordination for consistent serving snapshots.

The trainer thread mutates the live model; readers must never observe a
half-applied update (a table written but its scale not yet decayed, an
active-set entry stepped but its evictee not yet folded back).  Rather
than locking every kernel, the trainer **publishes** at example
boundaries: :meth:`SnapshotManager.publish` asks the model for a
consistent copy and swaps it in as :attr:`SnapshotManager.current`.
The swap is a single reference assignment, which the CPython memory
model makes atomic for readers: a reader sees either the old snapshot
or the new one, both internally consistent, and versions only ever
increase.

Publish cost is **O(dirty)**, not O(table): sketch models expose
:meth:`~repro.core.sketch_table.ScaledSketchTable.snapshot_incremental`,
which copies only the 256-bucket chunks training touched since the
previous publish and shares every clean chunk with the previous
snapshot's pool by reference (snapshots carry the raw table plus the
lazy scale, so sharing survives decay — see the class docstring).  The
manager chains publishes through it, falling back to a full copy on
the first publish, whenever the dirty fraction crosses the rebase
threshold, or for models without dirty tracking
(:class:`~repro.learning.feature_hashing.FeatureHashing`).  Per-publish
``publish.dirty_fraction`` and cumulative ``publish.chunks_copied``
land in the registry alongside ``publish.count`` / ``publish.seconds``.

**Threading contract** (documented, not locked): ``publish`` must run
on the trainer thread.  The manager's lock only serializes *stray
concurrent publishers* — it cannot make the model-side copy safe
against a concurrent ``fit_batch``, because the copy reads the live
table, dirty bitmap and heap slot arrays without synchronization (and
:meth:`~repro.heap.topk.TopKStore.snapshot_view` would read slot
arrays mid-``push_many`` if called off-thread; the store carries a
debug-gated owning-thread assert for exactly that).  The trainer
publishes at batch boundaries, so in the shipped server the contract
holds by construction.

The manager also owns the *reader-side* caches that successive
snapshots thread through: one :class:`~repro.hashing.batch.BatchHasher`
(hash functions are pure and shared with the live model, so LRU warmth
survives every publish) and one
:class:`~repro.kernels.workspace.KernelWorkspace` (so steady-state
reads stay zero-allocation).  Those caches are mutable, which is why
batched reads on the current snapshot must stay on a single thread —
the coalescer's flush thread in practice; scalar reads don't touch
them.
"""

from __future__ import annotations

import threading
from time import perf_counter

from repro import kernels
from repro.hashing.batch import BatchHasher
from repro.telemetry import MetricsRegistry, hooks, trace


class Snapshot:
    """One published model state: ``(version, t, model)``.

    ``version`` is the publish sequence number (0 = construction),
    ``t`` the number of training examples the model had consumed at
    publish time, ``model`` the read-only snapshot object answering
    ``predict_batch`` / ``query_many`` / ``top_weights`` and their
    scalar twins.
    """

    __slots__ = ("version", "t", "model")

    def __init__(self, version: int, t: int, model):
        self.version = version
        self.t = t
        self.model = model

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Snapshot v{self.version} t={self.t}>"


class SnapshotManager:
    """Monotone snapshot chain over one live model.

    Construction publishes version 0 (the model's state as handed in);
    :meth:`publish` folds and swaps the next version.  ``publish`` is
    called from the trainer thread (a lock serializes stray concurrent
    publishers); :attr:`current` may be read from any thread.
    :attr:`publish_log` records ``(version, t)`` per publish — the
    observable history the black-box consistency checker replays.
    """

    def __init__(self, model, *, registry: MetricsRegistry | None = None,
                 breaker=None, fault_plan=None):
        self._model = model
        self._lock = threading.Lock()
        #: Optional :class:`~repro.resilience.breaker.CircuitBreaker`.
        #: While it is open, :meth:`publish` fails fast with
        #: :class:`~repro.resilience.breaker.CircuitOpenError` instead
        #: of re-running a publish path that keeps failing — readers
        #: continue on the last good snapshot, which stays swapped in.
        self.breaker = breaker
        self._fault_plan = fault_plan
        #: Unified telemetry registry (shared with the owning server
        #: when one is passed in, so ``stats()`` reads one cut).
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_publishes = self.registry.counter("publish.count")
        self._m_publish_seconds = self.registry.histogram("publish.seconds")
        self._m_publish_errors = self.registry.counter("publish.errors")
        #: Incremental-publish observability: the last publish's dirty
        #: fraction (1.0 on rebases/full copies) and the cumulative
        #: number of 256-bucket chunks copied across all publishes.
        self._m_dirty_fraction = self.registry.gauge("publish.dirty_fraction")
        self._m_chunks_copied = self.registry.counter("publish.chunks_copied")
        self._incremental = hasattr(model, "snapshot_incremental")
        #: The previous chain snapshot's model — ``prev`` for the next
        #: ``snapshot_incremental`` call (clean chunks are shared with
        #: its pool).
        self._prev_model = None
        #: Reader-side caches threaded through every snapshot (see the
        #: module docstring for the single-reader contract).
        self.reader_hasher = BatchHasher(
            model.family,
            registry=self.registry,
            metrics_prefix="serve.reader_hasher",
        )
        self.reader_workspace = kernels.KernelWorkspace()
        #: ``(version, t)`` per publish, in publish order.
        self.publish_log: list[tuple[int, int]] = []
        self._current: Snapshot | None = None
        self.publish()

    @property
    def current(self) -> Snapshot:
        """The latest published snapshot (atomic reference read)."""
        return self._current

    def publish(self) -> Snapshot:
        """Copy the live model's state into a new snapshot and swap it in.

        Sketch models go through ``snapshot_incremental``: only chunks
        dirtied since the previous publish are copied (O(dirty)), clean
        chunks are shared with the previous snapshot's pool, and the
        model decides per publish whether a full rebase is cheaper
        (first publish, broken chain, dirty fraction at or above the
        crossover threshold, or a pool grown past its bound).  Models
        without dirty tracking take the full ``snapshot()`` path.

        Must be called from the trainer thread — the lock below only
        serializes publishers, it does **not** protect the model-side
        copy from a concurrent ``fit_batch`` (see the module
        docstring's threading contract).

        A failing publish is atomic: the chain state (``current``,
        ``publish_log``, the incremental ``prev`` link) is only mutated
        after the copy succeeded, so readers keep the last good
        snapshot and the next attempt re-publishes from scratch.  With
        a :attr:`breaker` attached, repeated failures trip it and
        subsequent calls fail fast with ``CircuitOpenError`` until the
        reset timeout admits a probe.
        """
        if self.breaker is not None and not self.breaker.allow():
            from repro.resilience.breaker import CircuitOpenError

            self._m_publish_errors.inc()
            raise CircuitOpenError(
                "publish breaker is open; serving continues on the last "
                "good snapshot"
            )
        try:
            return self._publish_locked()
        except BaseException:
            self._m_publish_errors.inc()
            if self.breaker is not None:
                self.breaker.record_failure()
            raise

    def _publish_locked(self) -> Snapshot:
        with self._lock:
            start = perf_counter()
            version = 0 if self._current is None else self._current.version + 1
            if self._fault_plan is not None:
                # Injected *before* the copy: a failed publish must
                # never expose partial state.
                self._fault_plan.raise_if("serve.publish", version=version)
            with trace.span("publish", version=version):
                if self._incremental:
                    model, stats = self._model.snapshot_incremental(
                        self._prev_model,
                        batch_hasher=self.reader_hasher,
                        workspace=self.reader_workspace,
                    )
                    self._prev_model = model
                    self._m_dirty_fraction.set(stats["dirty_fraction"])
                    self._m_chunks_copied.inc(stats["chunks_copied"])
                else:
                    model = self._model.snapshot(
                        batch_hasher=self.reader_hasher,
                        workspace=self.reader_workspace,
                    )
                    self._m_dirty_fraction.set(1.0)
                snap = Snapshot(version, int(self._model.t), model)
                self.publish_log.append((snap.version, snap.t))
                self._current = snap
            seconds = perf_counter() - start
            self._m_publishes.inc()
            self._m_publish_seconds.record(seconds)
            if self.breaker is not None:
                self.breaker.record_success()
            if hooks.on_publish:
                hooks.publish(snap.version, snap.t, seconds)
            return snap
