"""Publish/read coordination for consistent serving snapshots.

The trainer thread mutates the live model; readers must never observe a
half-applied update (a table written but its scale not yet decayed, an
active-set entry stepped but its evictee not yet folded back).  Rather
than locking every kernel, the trainer **publishes** at example
boundaries: :meth:`SnapshotManager.publish` asks the model for a
scale-folded consistent copy (one vectorized multiply per array — see
:meth:`~repro.core.sketch_table.ScaledSketchTable.snapshot` and
:meth:`~repro.heap.topk.TopKStore.snapshot_view`) and swaps it in as
:attr:`SnapshotManager.current`.  The swap is a single reference
assignment, which the CPython memory model makes atomic for readers: a
reader sees either the old snapshot or the new one, both internally
consistent, and versions only ever increase.

The manager also owns the *reader-side* caches that successive
snapshots thread through: one :class:`~repro.hashing.batch.BatchHasher`
(hash functions are pure and shared with the live model, so LRU warmth
survives every publish) and one
:class:`~repro.kernels.workspace.KernelWorkspace` (so steady-state
reads stay zero-allocation).  Those caches are mutable, which is why
batched reads on the current snapshot must stay on a single thread —
the coalescer's flush thread in practice; scalar reads don't touch
them.
"""

from __future__ import annotations

import threading
from time import perf_counter

from repro import kernels
from repro.hashing.batch import BatchHasher
from repro.telemetry import MetricsRegistry, hooks, trace


class Snapshot:
    """One published model state: ``(version, t, model)``.

    ``version`` is the publish sequence number (0 = construction),
    ``t`` the number of training examples the model had consumed at
    publish time, ``model`` the read-only snapshot object answering
    ``predict_batch`` / ``query_many`` / ``top_weights`` and their
    scalar twins.
    """

    __slots__ = ("version", "t", "model")

    def __init__(self, version: int, t: int, model):
        self.version = version
        self.t = t
        self.model = model

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Snapshot v{self.version} t={self.t}>"


class SnapshotManager:
    """Monotone snapshot chain over one live model.

    Construction publishes version 0 (the model's state as handed in);
    :meth:`publish` folds and swaps the next version.  ``publish`` is
    called from the trainer thread (a lock serializes stray concurrent
    publishers); :attr:`current` may be read from any thread.
    :attr:`publish_log` records ``(version, t)`` per publish — the
    observable history the black-box consistency checker replays.
    """

    def __init__(self, model, *, registry: MetricsRegistry | None = None):
        self._model = model
        self._lock = threading.Lock()
        #: Unified telemetry registry (shared with the owning server
        #: when one is passed in, so ``stats()`` reads one cut).
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_publishes = self.registry.counter("publish.count")
        self._m_publish_seconds = self.registry.histogram("publish.seconds")
        #: Reader-side caches threaded through every snapshot (see the
        #: module docstring for the single-reader contract).
        self.reader_hasher = BatchHasher(
            model.family,
            registry=self.registry,
            metrics_prefix="serve.reader_hasher",
        )
        self.reader_workspace = kernels.KernelWorkspace()
        #: ``(version, t)`` per publish, in publish order.
        self.publish_log: list[tuple[int, int]] = []
        self._current: Snapshot | None = None
        self.publish()

    @property
    def current(self) -> Snapshot:
        """The latest published snapshot (atomic reference read)."""
        return self._current

    def publish(self) -> Snapshot:
        """Fold the live model into a new snapshot and swap it in."""
        with self._lock:
            start = perf_counter()
            version = 0 if self._current is None else self._current.version + 1
            with trace.span("publish", version=version):
                model = self._model.snapshot(
                    batch_hasher=self.reader_hasher,
                    workspace=self.reader_workspace,
                )
                snap = Snapshot(version, int(self._model.t), model)
                self.publish_log.append((snap.version, snap.t))
                self._current = snap
            seconds = perf_counter() - start
            self._m_publishes.inc()
            self._m_publish_seconds.record(seconds)
            if hooks.on_publish:
                hooks.publish(snap.version, snap.t, seconds)
            return snap
