"""Client-side helpers: typed calls plus the read log the checker replays.

:class:`ServingClient` wraps a :class:`~repro.serving.server.SketchServer`
with convenience methods and, when ``record=True``, logs every read as
a :class:`ReadRecord` — ``(op, payload, result, snapshot version)``.
Those per-client logs are the observable history that
:func:`~repro.serving.checker.check_snapshot_consistency` validates
against a sequential re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.data.batch import SparseBatch
from repro.data.sparse import SparseExample

__all__ = ["ReadRecord", "ServingClient"]


@dataclass
class ReadRecord:
    """One completed read, as the client observed it."""

    op: str
    payload: Any
    result: Any
    version: int


@dataclass
class ServingClient:
    """Issue reads against a server; optionally record them for checking.

    ``serial=True`` routes every read through the server's
    serial-scalar baseline instead of the coalescer — same API, same
    snapshot discipline, no batching.
    """

    server: Any
    record: bool = False
    serial: bool = False
    timeout: float = 30.0
    records: list[ReadRecord] = field(default_factory=list)

    def _call(self, op: str, payload):
        if self.serial:
            result, version = self.server.serial_request(op, payload)
        else:
            result, version = self.server.request(op, payload, self.timeout)
        if self.record:
            self.records.append(ReadRecord(op, payload, result, version))
        return result, version

    # ------------------------------------------------------------------
    def predict_batch(self, batch: SparseBatch) -> np.ndarray:
        """Margins for every row of ``batch``."""
        return self._call("predict", batch)[0]

    def predict(self, indices, values) -> float:
        """Margin for a single sparse example."""
        batch = SparseBatch.from_examples(
            [
                SparseExample(
                    np.asarray(indices, dtype=np.int64),
                    np.asarray(values, dtype=np.float64),
                    1,
                )
            ]
        )
        return float(self._call("predict", batch)[0][0])

    def query(self, keys) -> np.ndarray:
        """Estimated weights for ``keys``."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        return self._call("query", keys)[0]

    def top_k(self, k: int) -> list[tuple[int, float]]:
        """Top-k (feature, weight) pairs."""
        return self._call("top_k", int(k))[0]
