"""Serving: a live model behind a micro-batching request coalescer.

The missing piece between the batched kernels and "heavy traffic from
millions of users" (ROADMAP): PR 5 made ``predict_batch`` /
``query_many`` bit-identical to the scalar paths and 5-130x faster,
but only for callers that *arrive* holding a batch.  This package
turns concurrent single-request traffic into those batches:

* :class:`~repro.serving.server.SketchServer` owns a live WM / AWM /
  feature-hashing model, trains it from a stream on a background
  thread, and serves ``predict`` / ``query`` / ``top_k``;
* :class:`~repro.serving.coalescer.MicroBatchCoalescer` accumulates
  concurrent in-flight requests in per-operation queues and flushes
  each queue as **one** fused batched kernel call when a latency
  budget or a max-batch bound is hit;
* :class:`~repro.serving.snapshot.SnapshotManager` gives readers
  consistent state under live training: the trainer publishes
  scale-folded copy-on-publish snapshots
  (:meth:`~repro.core.sketch_table.ScaledSketchTable.snapshot`), and
  every read is answered entirely from one published snapshot —
  never from half-applied updates;
* :mod:`~repro.serving.checker` validates concurrent histories against
  a sequential reference re-execution (the black-box
  snapshot-consistency discipline);
* :mod:`~repro.serving.loadgen` generates open- and closed-loop
  Zipf-keyed workloads for ``benchmarks/bench_serving.py`` and the
  ``repro loadgen`` CLI.

Everything is stdlib threads + NumPy — no extra dependencies.
"""

from repro.serving.checker import ConsistencyError, check_snapshot_consistency
from repro.serving.client import ReadRecord, ServingClient
from repro.serving.coalescer import DeadlineExceeded, MicroBatchCoalescer, Overload
from repro.serving.server import SketchServer, scalar_answer
from repro.serving.snapshot import Snapshot, SnapshotManager

__all__ = [
    "ConsistencyError",
    "DeadlineExceeded",
    "MicroBatchCoalescer",
    "Overload",
    "ReadRecord",
    "ServingClient",
    "SketchServer",
    "Snapshot",
    "SnapshotManager",
    "check_snapshot_consistency",
    "scalar_answer",
]
