"""Command-line interface: ``python -m repro <command>``.

A small operational layer so the library can be driven without writing
code — useful for smoke-testing an install, exploring the
memory-accuracy trade-off, or generating the paper-style comparison on
a chosen budget.

Commands
--------
``compare``
    Run all budgeted methods on a dataset preset and print recovery +
    accuracy (the Fig. 3/6 view), e.g.::

        python -m repro compare --dataset rcv1 --budget-kb 8 --examples 4000

``configs``
    Show the per-budget configuration search space and the default
    layouts (the Table 2 view)::

        python -m repro configs --budget-kb 8

``theory``
    Evaluate the Theorem 1/2 sizing for given parameters::

        python -m repro theory --d 100000 --epsilon 0.1 --lambda 1e-5
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.config import (
    default_awm_config,
    default_wm_config,
    enumerate_sketch_configs,
)
from repro.core.theory import theorem1_sizing, theorem2_sample_size
from repro.data.datasets import ALL_PRESETS
from repro.evaluation.harness import RecoveryExperiment


def _cmd_compare(args: argparse.Namespace) -> int:
    preset = ALL_PRESETS.get(f"{args.dataset}_like")
    if preset is None:
        print(f"unknown dataset {args.dataset!r}; "
              f"choose from rcv1, url, kdda", file=sys.stderr)
        return 2
    spec = preset(seed=args.seed)
    batch_size = args.batch_size if args.batch_size > 0 else None
    print(f"dataset={spec.name} d={spec.stream.d:,} "
          f"examples={args.examples:,} lambda={args.lambda_:g} "
          f"batch_size={batch_size or 'off (per-example)'}")
    examples = spec.stream.materialize(args.examples)
    experiment = RecoveryExperiment(
        examples,
        d=spec.stream.d,
        lambda_=args.lambda_,
        ks=(args.k,),
        batch_size=batch_size,
    )
    reference = experiment.reference_result()
    print(f"\nunconstrained LR: error {reference.error_rate:.4f} "
          f"({reference.memory_bytes / 1024:.0f} KB)\n")
    results = experiment.run_budget(args.budget_kb * 1024, seed=args.seed)
    print(f"{'method':>7} {'RelErr@' + str(args.k):>11} {'error':>8} "
          f"{'KB':>6}")
    for name, res in sorted(results.items(),
                            key=lambda kv: kv[1].rel_err[args.k]):
        print(f"{name:>7} {res.rel_err[args.k]:>11.3f} "
              f"{res.error_rate:>8.4f} {res.memory_bytes / 1024:>6.1f}")
    return 0


def _cmd_configs(args: argparse.Namespace) -> int:
    budget = args.budget_kb * 1024
    awm = default_awm_config(budget)
    wm = default_wm_config(budget)
    print(f"budget: {args.budget_kb} KB ({budget // 4} cells)")
    print(f"default AWM layout: |S|={awm.heap_capacity} "
          f"width={awm.width} depth={awm.depth} ({awm.bytes} B)")
    print(f"default WM layout:  |S|={wm.heap_capacity} "
          f"width={wm.width} depth={wm.depth} ({wm.bytes} B)")
    sweep = enumerate_sketch_configs(budget)
    print(f"\nsearch space ({len(sweep)} configurations):")
    for cfg in sweep:
        print(f"  |S|={cfg.heap_capacity:>5} width={cfg.width:>6} "
              f"depth={cfg.depth:>3}  ({cfg.bytes} B)")
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    sizing = theorem1_sizing(
        args.d, epsilon=args.epsilon, delta=args.delta,
        lambda_=args.lambda_,
    )
    t = theorem2_sample_size(
        args.d, epsilon=args.epsilon, delta=args.delta,
        lambda_=args.lambda_,
    )
    print(f"Theorem 1 sizing for d={args.d:,}, eps={args.epsilon}, "
          f"delta={args.delta}, lambda={args.lambda_:g}:")
    print(f"  k (cells) = {sizing.size:,}")
    print(f"  s (depth) = {sizing.depth:,}")
    print(f"  width     = {sizing.width:,}")
    print(f"  memory    = {4 * sizing.size / 2**20:.2f} MB at 4 B/cell")
    print(f"Theorem 2 minimum stream length: T >= {t:,}")
    dense = 4 * args.d
    print(f"(dense weights would use {dense / 2**20:.2f} MB)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Weight-Median Sketch reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser(
        "compare", help="run all budgeted methods on a dataset preset"
    )
    compare.add_argument("--dataset", default="rcv1",
                         choices=("rcv1", "url", "kdda"))
    compare.add_argument("--budget-kb", type=int, default=8)
    compare.add_argument("--examples", type=int, default=4_000)
    compare.add_argument("--k", type=int, default=128)
    compare.add_argument("--lambda", dest="lambda_", type=float,
                         default=1e-6)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--batch-size", type=int, default=256,
        help="mini-batch size for the batched streaming engine "
             "(0 = per-example updates; results are identical either "
             "way, batching is faster)",
    )
    compare.set_defaults(func=_cmd_compare)

    configs = sub.add_parser(
        "configs", help="show per-budget sketch configurations"
    )
    configs.add_argument("--budget-kb", type=int, default=8)
    configs.set_defaults(func=_cmd_configs)

    theory = sub.add_parser(
        "theory", help="evaluate Theorem 1/2 sizing"
    )
    theory.add_argument("--d", type=int, required=True)
    theory.add_argument("--epsilon", type=float, default=0.1)
    theory.add_argument("--delta", type=float, default=0.05)
    theory.add_argument("--lambda", dest="lambda_", type=float,
                        default=1e-5)
    theory.set_defaults(func=_cmd_theory)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
