"""Command-line interface: ``python -m repro <command>``.

A small operational layer so the library can be driven without writing
code — useful for smoke-testing an install, exploring the
memory-accuracy trade-off, or generating the paper-style comparison on
a chosen budget.

Commands
--------
``compare``
    Run all budgeted methods on a dataset preset and print recovery +
    accuracy (the Fig. 3/6 view), e.g.::

        python -m repro compare --dataset rcv1 --budget-kb 8 --examples 4000

``configs``
    Show the per-budget configuration search space and the default
    layouts (the Table 2 view)::

        python -m repro configs --budget-kb 8

``theory``
    Evaluate the Theorem 1/2 sizing for given parameters::

        python -m repro theory --d 100000 --epsilon 0.1 --lambda 1e-5

``parallel``
    Train with the sharded-worker subsystem (``--workers`` processes,
    merged sketches) and report throughput plus top-K agreement with a
    single-stream model; ``--task`` also runs each Section 8 app
    sharded::

        python -m repro parallel --workers 4 --examples 20000
        python -m repro parallel --workers 4 --task deltoids

``serve``
    Stand up an in-process :class:`~repro.serving.server.SketchServer`
    (background trainer + micro-batching coalescer), drive concurrent
    reader threads against it while it trains, verify the whole history
    with the black-box snapshot-consistency checker, and print the
    ``stats()`` endpoint::

        python -m repro serve --examples 8000 --readers 4

``loadgen``
    Load-generate against an in-process server: closed-loop saturation
    throughput (coalesced vs serial-scalar baseline) or open-loop
    latency percentiles at an offered rate::

        python -m repro loadgen --mode closed --clients 16
        python -m repro loadgen --mode open --rps 2000

``telemetry``
    Render a :mod:`repro.telemetry` registry snapshot — a terminal
    dashboard, Prometheus text exposition, or raw JSON — either from a
    dump written by ``serve --telemetry-json`` or from a fresh live
    serving run::

        python -m repro telemetry --format terminal
        python -m repro telemetry --json snap.json --format prometheus
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro import kernels
from repro.core.config import (
    default_awm_config,
    default_wm_config,
    enumerate_sketch_configs,
)
from repro.core.theory import theorem1_sizing, theorem2_sample_size
from repro.data.datasets import ALL_PRESETS
from repro.evaluation.harness import RecoveryExperiment


def _apply_backend(name: str) -> str:
    """Activate the requested kernel backend; returns the resolved name.

    An unavailable backend (``--backend numba`` without numba
    installed) prints a notice and falls back to the NumPy reference —
    results are identical either way, so the run proceeds.  The
    resolved name is exported through ``REPRO_KERNEL_BACKEND`` so
    spawned worker processes (the ``parallel`` subcommand) follow it.
    """
    try:
        backend = kernels.set_backend(name)
    except kernels.BackendUnavailableError as exc:
        print(f"notice: {exc}; using the numpy reference backend",
              file=sys.stderr)
        backend = kernels.set_backend("numpy")
    os.environ[kernels.ENV_VAR] = backend.name
    return backend.name


def _cmd_compare(args: argparse.Namespace) -> int:
    preset = ALL_PRESETS.get(f"{args.dataset}_like")
    if preset is None:
        print(f"unknown dataset {args.dataset!r}; "
              f"choose from rcv1, url, kdda", file=sys.stderr)
        return 2
    spec = preset(seed=args.seed)
    backend = _apply_backend(args.backend)
    batch_size = args.batch_size if args.batch_size > 0 else None
    print(f"dataset={spec.name} d={spec.stream.d:,} "
          f"examples={args.examples:,} lambda={args.lambda_:g} "
          f"batch_size={batch_size or 'off (per-example)'} "
          f"backend={backend}")
    examples = spec.stream.materialize(args.examples)
    experiment = RecoveryExperiment(
        examples,
        d=spec.stream.d,
        lambda_=args.lambda_,
        ks=(args.k,),
        batch_size=batch_size,
    )
    reference = experiment.reference_result()
    print(f"\nunconstrained LR: error {reference.error_rate:.4f} "
          f"({reference.memory_bytes / 1024:.0f} KB)\n")
    results = experiment.run_budget(args.budget_kb * 1024, seed=args.seed)
    print(f"{'method':>7} {'RelErr@' + str(args.k):>11} {'error':>8} "
          f"{'KB':>6}")
    for name, res in sorted(results.items(),
                            key=lambda kv: kv[1].rel_err[args.k]):
        print(f"{name:>7} {res.rel_err[args.k]:>11.3f} "
              f"{res.error_rate:>8.4f} {res.memory_bytes / 1024:>6.1f}")
    return 0


def _cmd_configs(args: argparse.Namespace) -> int:
    budget = args.budget_kb * 1024
    awm = default_awm_config(budget)
    wm = default_wm_config(budget)
    print(f"budget: {args.budget_kb} KB ({budget // 4} cells)")
    print(f"default AWM layout: |S|={awm.heap_capacity} "
          f"width={awm.width} depth={awm.depth} ({awm.bytes} B)")
    print(f"default WM layout:  |S|={wm.heap_capacity} "
          f"width={wm.width} depth={wm.depth} ({wm.bytes} B)")
    sweep = enumerate_sketch_configs(budget)
    print(f"\nsearch space ({len(sweep)} configurations):")
    for cfg in sweep:
        print(f"  |S|={cfg.heap_capacity:>5} width={cfg.width:>6} "
              f"depth={cfg.depth:>3}  ({cfg.bytes} B)")
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    sizing = theorem1_sizing(
        args.d, epsilon=args.epsilon, delta=args.delta,
        lambda_=args.lambda_,
    )
    t = theorem2_sample_size(
        args.d, epsilon=args.epsilon, delta=args.delta,
        lambda_=args.lambda_,
    )
    print(f"Theorem 1 sizing for d={args.d:,}, eps={args.epsilon}, "
          f"delta={args.delta}, lambda={args.lambda_:g}:")
    print(f"  k (cells) = {sizing.size:,}")
    print(f"  s (depth) = {sizing.depth:,}")
    print(f"  width     = {sizing.width:,}")
    print(f"  memory    = {4 * sizing.size / 2**20:.2f} MB at 4 B/cell")
    print(f"Theorem 2 minimum stream length: T >= {t:,}")
    dense = 4 * args.d
    print(f"(dense weights would use {dense / 2**20:.2f} MB)")
    return 0


def _parallel_factory(
    method: str, budget_bytes: int, seed: int, backend: str | None = None
):
    """(picklable factory, kwargs) for one sharded-training method.

    ``backend`` (a resolved kernel-backend name, or None) is baked into
    the model kwargs so worker processes reconstruct their per-shard
    models on the same backend as the parent — belt and braces on top
    of the inherited ``REPRO_KERNEL_BACKEND`` environment variable.
    """
    from repro.core.awm_sketch import AWMSketch
    from repro.core.config import (
        default_awm_config,
        default_wm_config,
        feature_hashing_width,
    )
    from repro.core.wm_sketch import WMSketch
    from repro.learning.feature_hashing import FeatureHashing

    if method == "wm":
        cfg = default_wm_config(budget_bytes)
        return WMSketch, dict(
            width=cfg.width, depth=cfg.depth,
            heap_capacity=cfg.heap_capacity, seed=seed, backend=backend,
        )
    if method == "awm":
        cfg = default_awm_config(budget_bytes)
        return AWMSketch, dict(
            width=cfg.width, depth=cfg.depth,
            heap_capacity=cfg.heap_capacity, seed=seed, backend=backend,
        )
    if method == "hash":
        return FeatureHashing, dict(
            width=feature_hashing_width(budget_bytes), seed=seed,
            backend=backend,
        )
    raise ValueError(f"unknown method {method!r}")


def _cmd_parallel(args: argparse.Namespace) -> int:
    import time

    from repro.parallel import ParallelHarness

    if args.task != "classify":
        return _cmd_parallel_app(args)

    preset = ALL_PRESETS.get(f"{args.dataset}_like")
    if preset is None:
        print(f"unknown dataset {args.dataset!r}; "
              f"choose from rcv1, url, kdda", file=sys.stderr)
        return 2
    spec = preset(seed=args.seed)
    backend = _apply_backend(args.backend)
    examples = spec.stream.materialize(args.examples)
    factory, kwargs = _parallel_factory(
        args.method, args.budget_kb * 1024, args.seed, backend=backend
    )
    print(f"dataset={spec.name} examples={len(examples):,} "
          f"method={args.method} workers={args.workers} "
          f"batch_size={args.batch_size} backend={backend}")

    # Single-stream reference for the top-K agreement report.
    single = factory(**kwargs)
    start = time.perf_counter()
    single.fit(examples, batch_size=args.batch_size)
    single_s = time.perf_counter() - start

    with ParallelHarness(
        factory,
        kwargs,
        n_workers=args.workers,
        batch_size=args.batch_size,
        seed=args.seed,
        start_method=args.start_method,
    ) as harness:
        start = time.perf_counter()
        merged = harness.fit(examples)
        wall_s = time.perf_counter() - start
        critical_s = max(
            (r.train_seconds for r in harness.last_results), default=0.0
        )
        sizes = [r.n_examples for r in harness.last_results]

    k = args.k
    if hasattr(single, "top_weights_from_candidates"):
        seen: set[int] = set()
        for ex in examples:
            seen.update(ex.indices.tolist())
        import numpy as np

        candidates = np.fromiter(seen, dtype=np.int64, count=len(seen))
        top_single = single.top_weights_from_candidates(candidates, k)
        top_merged = merged.top_weights_from_candidates(candidates, k)
    else:
        top_single = single.top_weights(k)
        top_merged = merged.top_weights(k)
    overlap = len(
        {i for i, _ in top_single} & {i for i, _ in top_merged}
    ) / max(k, 1)

    print(f"\nsingle-stream: {len(examples) / single_s:,.0f} ex/s")
    print(f"sharded wall:  {len(examples) / wall_s:,.0f} ex/s "
          f"(this machine; shard sizes {sizes})")
    if critical_s > 0:
        print(f"critical path: {len(examples) / critical_s:,.0f} ex/s "
              f"(slowest worker; the >= {args.workers}-core bound)")
    print(f"top-{k} overlap merged vs single-stream: {overlap:.2f}")
    print(f"merged model: t={merged.t:,} merged_from={merged.merged_from}")
    return 0


def _cmd_parallel_app(args: argparse.Namespace) -> int:
    """Run one Section 8 application with sharded training.

    Honors ``--method`` (wm / awm — feature hashing stores no feature
    identifiers, so it cannot enumerate top attributes/deltoids/pairs)
    and ``--budget-kb``; ``--dataset`` / ``--k`` apply to the
    ``classify`` task only.
    """
    from repro.parallel import ParallelHarness

    if args.method == "hash":
        print(
            "feature hashing stores no identifiers and cannot enumerate "
            "top attributes/deltoids/pairs; use --method wm or awm for "
            "app tasks",
            file=sys.stderr,
        )
        return 2
    backend = _apply_backend(args.backend)
    factory, kwargs = _parallel_factory(
        args.method, args.budget_kb * 1024, args.seed, backend=backend
    )
    with ParallelHarness(
        factory,
        kwargs,
        n_workers=args.workers,
        batch_size=args.batch_size,
        seed=args.seed,
        start_method=args.start_method,
    ) as harness:
        if args.task == "explain":
            from repro.apps.explanation import StreamingExplainer
            from repro.data.fec import FECLikeStream

            data = FECLikeStream(seed=args.seed)
            app = StreamingExplainer(factory(**kwargs))
            app.consume_parallel(
                data.examples(args.examples), harness
            )
            print(f"top attributes ({args.workers} workers):")
            for attr, w in app.top_attributes(10):
                print(f"  attribute {attr:>7}  weight {w:+.3f}")
        elif args.task == "deltoids":
            from repro.apps.deltoids import ClassifierDeltoid
            from repro.data.network import PacketTrace

            trace = PacketTrace(n_addresses=10_000, seed=args.seed)
            app = ClassifierDeltoid(factory(**kwargs))
            app.consume_parallel(
                trace.packets(args.examples), harness
            )
            print(f"top deltoids ({args.workers} workers):")
            for addr, logr in app.top_deltoids(10):
                print(f"  address {addr:>7}  log-ratio {logr:+.3f}")
        elif args.task == "pmi":
            from repro.apps.pmi import StreamingPMI
            from repro.data.text import CollocationCorpus

            corpus = CollocationCorpus(vocab=2_000, seed=args.seed)
            app = StreamingPMI(
                vocab=corpus.vocab,
                classifier=factory(**kwargs),
            )
            app.consume_parallel(
                corpus.pairs(args.examples), harness
            )
            print(f"top PMI pairs ({args.workers} workers):")
            for u, v, pmi in app.top_pairs(10):
                print(f"  ({u:>5}, {v:>5})  PMI {pmi:+.3f}")
        else:
            print(f"unknown task {args.task!r}", file=sys.stderr)
            return 2
    print(f"classifier: t={app.classifier.t:,} "
          f"merged_from={app.classifier.merged_from}")
    return 0


def _cmd_ps(args: argparse.Namespace) -> int:
    """Run the stale-synchronous parameter-server loop on a preset."""
    from repro.parallel import PSHarness

    if args.method != "wm":
        # Delta sync needs write-site dirty tracking with no cross-model
        # feedback; the AWM active set and the dense baseline fail that
        # contract (PSHarness would raise the same refusal).
        print(
            "delta sync supports --method wm only (AWM's active set "
            "feeds back into training and cannot be delta-merged)",
            file=sys.stderr,
        )
        return 2
    preset = ALL_PRESETS.get(f"{args.dataset}_like")
    if preset is None:
        print(f"unknown dataset {args.dataset!r}; "
              f"choose from rcv1, url, kdda", file=sys.stderr)
        return 2
    spec = preset(seed=args.seed)
    backend = _apply_backend(args.backend)
    examples = spec.stream.materialize(args.examples)
    factory, kwargs = _parallel_factory(
        "wm", args.budget_kb * 1024, args.seed, backend=backend
    )
    print(f"dataset={spec.name} examples={len(examples):,} "
          f"workers={args.workers} staleness={args.staleness} "
          f"sync_every={args.sync_every} backend={backend}")

    harness = PSHarness(
        factory,
        kwargs,
        n_workers=args.workers,
        staleness=args.staleness,
        sync_every=args.sync_every,
        batch_size=args.batch_size,
        seed=args.seed,
        publish_every=args.publish_every,
    )
    model = harness.fit(examples)

    stats = harness.stats()
    counters = stats["counters"]
    pushes = counters["ps.push.count"]
    pulls = counters["ps.pull.count"]
    print(f"\npushes: {pushes:,}  "
          f"mean delta {counters['ps.push.delta_bytes'] / pushes:,.0f} B  "
          f"vs full-state {counters['ps.push.full_table_bytes'] / pushes:,.0f} B  "
          f"-> {harness.delta_bytes_ratio():.1f}x fewer bytes shipped")
    if pulls:
        print(f"pulls:  {pulls:,}  "
              f"mean {counters['ps.pull.bytes'] / pulls:,.0f} B")
    stale = stats["histograms"]["ps.staleness"]
    print(f"staleness: mean {stale['sum'] / max(stale['count'], 1):.2f}  "
          f"max {stale['max'] or 0:.0f}  "
          f"(bound s={args.staleness}); "
          f"SSP blocked {counters.get('ps.ssp.blocked', 0):,} rounds")
    print(f"publishes: {counters.get('ps.publish.count', 0):,} snapshots  "
          f"folds: {counters.get('ps.fold.count', 0):,}  "
          f"promo keys folded: {counters.get('ps.promo.keys', 0):,}")
    print(f"modeled critical path: "
          f"{len(examples) / harness.modeled_wall_seconds():,.0f} ex/s "
          f"(driver {harness.driver_seconds:.3f}s serialized)")
    print(f"\ntop-{args.k} recovered weights (global model, t={model.t:,}):")
    for idx, w in model.top_weights(args.k):
        print(f"  feature {idx:>8}  weight {w:+.4f}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded fault-injection run + exact-recovery verdict."""
    import json
    from pathlib import Path

    from repro.resilience.chaos import run_chaos

    print(f"chaos: seed={args.seed} workers={args.workers} "
          f"staleness={args.staleness} examples={args.examples:,} "
          f"sync_every={args.sync_every}")
    report = run_chaos(
        seed=args.seed, n_workers=args.workers, staleness=args.staleness,
        n_examples=args.examples, d=args.d, sync_every=args.sync_every,
        batch_size=args.batch_size,
        heartbeat_timeout=args.heartbeat_timeout,
    )
    faults = report["faults"]
    print(f"faults fired: {faults['fired']} {faults['by_action']} "
          f"(unfired: {faults['unfired']})")
    for ev in report["events"]:
        if ev["event"] == "recover":
            print(f"  clock {ev['clock']:>3}: worker {ev['worker']} "
                  f"respawned at round {ev['round']} "
                  f"({ev['pull_bytes']:,}B full-state pull, "
                  f"{ev['wall_seconds'] * 1e3:.2f}ms)")
        else:
            print(f"  clock {ev['clock']:>3}: worker {ev['worker']} "
                  f"{ev['event']} at round {ev['round']}")
    c = report["counters"]
    print(f"wire: {c['wire_dropped']} dropped, "
          f"{c['corrupt_rejected']} corrupt-rejected, "
          f"{c['duplicates_deduped']} duplicates deduped, "
          f"{c['retries']} retries")
    print(f"liveness: {c['crashes']} crashes, {c['recoveries']} respawns, "
          f"{c['heartbeats_missed']} heartbeats missed")
    cons = report["consistency"]
    if not cons.get("checked"):
        print("snapshot consistency: SKIPPED")
        cons_ok = True
    elif cons.get("ok"):
        print(f"snapshot consistency: PASS "
              f"({cons['snapshots_rebuilt']} snapshots rebuilt, "
              f"{cons['reads_checked']} mid-fault reads)")
        cons_ok = True
    else:
        print(f"snapshot consistency: FAIL ({cons.get('error')})")
        cons_ok = False
    if report["bit_identical"]:
        print("final table vs fault-free single-stream: BIT-IDENTICAL")
    else:
        print(f"final table vs fault-free single-stream: DIVERGED "
              f"(max |diff| = {report['max_abs_diff']:.3e})")
    if args.json is not None:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"chaos report -> {args.json}")
    return 0 if (report["bit_identical"] and cons_ok) else 1


def _serving_model(args, backend: str | None):
    """One live model for the serve/loadgen subcommands."""
    factory, kwargs = _parallel_factory(
        args.method, args.budget_kb * 1024, args.seed, backend=backend
    )
    return factory(**kwargs)


def _install_graceful_close(server) -> None:
    """Drain the server when the process exits, however it exits.

    ``SketchServer.close`` is idempotent and bounded, so registering it
    with ``atexit`` is safe alongside the explicit close on the happy
    path and the SIGINT (``KeyboardInterrupt``) drain path.
    """
    import atexit

    atexit.register(server.close)


def _interrupted_drain(server, args) -> int:
    """SIGINT landed mid-run: drain in-flight reads within a bounded
    deadline, flush telemetry if a dump path was requested, and exit
    with the conventional interrupted status."""
    from pathlib import Path

    from repro.telemetry import to_json

    print("\ninterrupted — draining in-flight requests (10s bound) "
          "and flushing telemetry", file=sys.stderr)
    server.close(timeout=10.0)
    dump = getattr(args, "telemetry_json", None)
    if dump is not None:
        Path(dump).write_text(to_json(server.telemetry.snapshot()) + "\n")
        print(f"telemetry snapshot -> {dump}", file=sys.stderr)
    return 130


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import threading
    from pathlib import Path

    import numpy as np

    from repro.data.batch import iter_batches
    from repro.serving import ServingClient, SketchServer, check_snapshot_consistency
    from repro.telemetry import to_json, trace, validate_span_tree

    preset = ALL_PRESETS.get(f"{args.dataset}_like")
    if preset is None:
        print(f"unknown dataset {args.dataset!r}; "
              f"choose from rcv1, url, kdda", file=sys.stderr)
        return 2
    spec = preset(seed=args.seed)
    backend = _apply_backend(args.backend)
    examples = spec.stream.materialize(args.examples)
    batches = list(iter_batches(examples, args.batch_size))
    make = lambda: _serving_model(args, backend)  # noqa: E731

    print(f"dataset={spec.name} examples={len(examples):,} "
          f"method={args.method} budget={args.budget_kb}KB "
          f"latency_budget={args.latency_budget_ms:g}ms "
          f"max_batch={args.max_batch} backend={backend}")
    server = SketchServer(
        make(),
        latency_budget=args.latency_budget_ms * 1e-3,
        max_batch=args.max_batch,
        publish_every=args.publish_every,
    )
    _install_graceful_close(server)
    want_trace = args.trace or args.trace_json is not None
    if want_trace:
        trace.clear()
        trace.enable()
    server.start_training(batches)
    clients = [
        ServingClient(server, record=True) for _ in range(args.readers)
    ]

    def reader(client, seed):
        rng = np.random.default_rng(seed)
        top_k_ok = args.method != "hash"
        for _ in range(args.reads):
            op = int(rng.integers(0, 3 if top_k_ok else 2))
            if op == 0:
                keys = ((rng.zipf(1.3, size=8) - 1) % spec.stream.d)
                client.query(keys.astype(np.int64))
            elif op == 1:
                i = int(rng.integers(0, len(examples)))
                client.predict(examples[i].indices, examples[i].values)
            else:
                client.top_k(1 + int(rng.integers(0, 32)))

    threads = [
        threading.Thread(target=reader, args=(c, 100 + i), daemon=True)
        for i, c in enumerate(clients)
    ]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        server.training_done.wait(300.0)
        server.close()
    except KeyboardInterrupt:
        return _interrupted_drain(server, args)
    if want_trace:
        trace.disable()
        roots = trace.drain()

    report = check_snapshot_consistency(
        make, batches, server.snapshots.publish_log,
        [c.records for c in clients],
    )
    stats = server.stats()
    print(f"\ntrained {stats['train']['examples']:,} examples in "
          f"{stats['train']['seconds']:.2f}s while serving "
          f"{report['reads_checked']} concurrent reads")
    print(f"snapshots published: {stats['snapshots']['published']} "
          f"(current v{stats['snapshots']['current_version']})")
    hasher = stats["reader_hasher"]
    print(f"reader hash cache: hit_rate={hasher['hit_rate']:.2f} "
          f"evictions={hasher['evictions']} keys={hasher['cached_keys']:,}")
    co = stats["coalescer"]
    print(f"coalescer: {sum(co['requests'].values())} requests in "
          f"{sum(co['flushes'].values())} flushes "
          f"(reasons {co['flush_reasons']})")
    for op, hist in co["batch_size_hist"].items():
        if hist:
            print(f"  {op:>8} batch sizes: {hist}")
    print(f"consistency check: PASS ({report['reads_checked']} reads "
          f"vs {report['snapshots_rebuilt']} rebuilt snapshots)")
    if want_trace:
        spans = sum(validate_span_tree(r) for r in roots)
        names = sorted({r.name for r in roots})
        print(f"trace reconstruction: OK ({len(roots)} roots, "
              f"{spans} spans; roots {names})")
        if args.trace_json is not None:
            Path(args.trace_json).write_text(json.dumps(
                [r.to_dict() for r in roots], indent=2
            ) + "\n")
            print(f"trace trees -> {args.trace_json}")
    if args.telemetry_json is not None:
        Path(args.telemetry_json).write_text(
            to_json(server.telemetry.snapshot()) + "\n"
        )
        print(f"telemetry snapshot -> {args.telemetry_json}")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.data.batch import iter_batches
    from repro.serving import SketchServer
    from repro.serving.loadgen import (
        build_requests,
        run_closed_loop,
        run_open_loop,
    )

    preset = ALL_PRESETS.get(f"{args.dataset}_like")
    if preset is None:
        print(f"unknown dataset {args.dataset!r}; "
              f"choose from rcv1, url, kdda", file=sys.stderr)
        return 2
    spec = preset(seed=args.seed)
    backend = _apply_backend(args.backend)
    train = spec.stream.materialize(args.examples)
    held_out = spec.stream.materialize(512, seed_offset=9)
    model = _serving_model(args, backend)
    for batch in iter_batches(train, args.batch_size):
        model.fit_batch(batch)
    mix = (("query", 0.6), ("predict", 0.3), ("top_k", 0.1))
    if args.method == "hash":
        mix = (("query", 0.65), ("predict", 0.35))
    requests = build_requests(
        args.requests, key_space=spec.stream.d, examples=held_out,
        seed=args.seed, mix=mix,
    )
    shedding = args.max_pending is not None or args.deadline_ms is not None
    server = SketchServer(
        model,
        latency_budget=args.latency_budget_ms * 1e-3,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        default_deadline=(
            None if args.deadline_ms is None else args.deadline_ms * 1e-3
        ),
    )
    _install_graceful_close(server)
    print(f"dataset={spec.name} method={args.method} "
          f"requests={args.requests:,} mode={args.mode} backend={backend}")
    try:
        if args.mode == "closed":
            elapsed, _ = run_closed_loop(
                server, requests, n_clients=args.clients, serial=args.serial
            )
            label = "serial-scalar" if args.serial else "coalesced"
            print(f"{label}: {len(requests) / elapsed:,.0f} req/s "
                  f"({args.clients} closed-loop clients, "
                  f"{elapsed:.2f}s)")
        else:
            # Latencies accumulate in a bounded telemetry histogram
            # (O(buckets) memory however long the run).  With admission
            # control on, typed rejections are counted, not raised —
            # the histogram then reports goodput, not offered load.
            shed = {} if shedding else None
            lat_hist, elapsed = run_open_loop(
                server, requests, offered_rps=args.rps, seed=args.seed,
                shed_counts=shed,
            )
            print(f"offered {args.rps:,.0f} req/s, completed "
                  f"{lat_hist.count / elapsed:,.0f} req/s")
            print(f"latency p50={lat_hist.percentile(50) * 1e3:.2f}ms "
                  f"p90={lat_hist.percentile(90) * 1e3:.2f}ms "
                  f"p99={lat_hist.percentile(99) * 1e3:.2f}ms "
                  f"max={lat_hist.max_value * 1e3:.2f}ms")
            if shed is not None:
                print(f"admission control: {shed['completed']} completed, "
                      f"{shed['overload']} shed at admission (Overload), "
                      f"{shed['deadline']} failed in queue "
                      f"(DeadlineExceeded)")
        co = server.coalescer.stats()
        sizes = {}
        for hist in co["batch_size_hist"].values():
            for size, count in hist.items():
                sizes[size] = sizes.get(size, 0) + count
        if sizes and not args.serial:
            mean = sum(s * c for s, c in sizes.items()) / sum(sizes.values())
            print(f"coalesced batch size: mean {mean:.1f}, "
                  f"max {max(sizes)}")
    except KeyboardInterrupt:
        return _interrupted_drain(server, args)
    finally:
        server.close()
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    """Render a telemetry snapshot, from a dump or a fresh live run."""
    import json

    from repro.telemetry import render_terminal, to_json, to_prometheus

    if args.json is not None:
        with open(args.json) as fh:
            snapshot = json.load(fh)
    else:
        # No dump given: run a short live workload (train + concurrent
        # coalesced reads) and render the server's own registry.
        import numpy as np

        from repro.data.batch import iter_batches
        from repro.serving import ServingClient, SketchServer

        preset = ALL_PRESETS.get(f"{args.dataset}_like")
        if preset is None:
            print(f"unknown dataset {args.dataset!r}; "
                  f"choose from rcv1, url, kdda", file=sys.stderr)
            return 2
        spec = preset(seed=args.seed)
        backend = _apply_backend(args.backend)
        examples = spec.stream.materialize(args.examples)
        batches = list(iter_batches(examples, args.batch_size))
        server = SketchServer(
            _serving_model(args, backend),
            latency_budget=args.latency_budget_ms * 1e-3,
            max_batch=args.max_batch,
        )
        try:
            server.start_training(batches)
            client = ServingClient(server)
            rng = np.random.default_rng(args.seed)
            for _ in range(args.reads):
                keys = ((rng.zipf(1.3, size=8) - 1) % spec.stream.d)
                client.query(keys.astype(np.int64))
            server.training_done.wait(300.0)
        finally:
            server.close()
        snapshot = server.telemetry.snapshot()

    if args.format == "json":
        print(to_json(snapshot))
    elif args.format == "prometheus":
        print(to_prometheus(snapshot), end="")
    else:
        print(render_terminal(snapshot))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Weight-Median Sketch reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser(
        "compare", help="run all budgeted methods on a dataset preset"
    )
    compare.add_argument("--dataset", default="rcv1",
                         choices=("rcv1", "url", "kdda"))
    compare.add_argument("--budget-kb", type=int, default=8)
    compare.add_argument("--examples", type=int, default=4_000)
    compare.add_argument("--k", type=int, default=128)
    compare.add_argument("--lambda", dest="lambda_", type=float,
                         default=1e-6)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--batch-size", type=int, default=256,
        help="mini-batch size for the batched streaming engine "
             "(0 = per-example updates; results are identical either "
             "way, batching is faster)",
    )
    compare.add_argument(
        "--backend", default="auto",
        choices=("auto", "numpy", "numba", "python"),
        help="kernel backend for the hot loops (auto = numba when "
             "installed, else numpy; results are bit-identical either "
             "way — an unavailable choice falls back to numpy with a "
             "notice)",
    )
    compare.set_defaults(func=_cmd_compare)

    configs = sub.add_parser(
        "configs", help="show per-budget sketch configurations"
    )
    configs.add_argument("--budget-kb", type=int, default=8)
    configs.set_defaults(func=_cmd_configs)

    parallel = sub.add_parser(
        "parallel",
        help="sharded training: partition the stream across worker "
             "processes, merge the sketches",
    )
    parallel.add_argument(
        "--workers", type=int, default=4,
        help="number of shards / worker processes (1 trains in-process)",
    )
    parallel.add_argument(
        "--task", default="classify",
        choices=("classify", "explain", "deltoids", "pmi"),
        help="classify = dataset-preset comparison vs single-stream; "
             "explain/deltoids/pmi run the Section 8 apps sharded",
    )
    parallel.add_argument("--dataset", default="rcv1",
                          choices=("rcv1", "url", "kdda"),
                          help="dataset preset (classify task only)")
    parallel.add_argument("--method", default="wm",
                          choices=("wm", "awm", "hash"),
                          help="hash is classify-only (it stores no "
                               "feature identifiers)")
    parallel.add_argument("--budget-kb", type=int, default=8)
    parallel.add_argument("--examples", type=int, default=8_000)
    parallel.add_argument("--batch-size", type=int, default=256)
    parallel.add_argument("--k", type=int, default=64,
                          help="top-K for the overlap report "
                               "(classify task only)")
    parallel.add_argument("--seed", type=int, default=0)
    parallel.add_argument(
        "--start-method", default="spawn", choices=("spawn", "fork"),
        help="multiprocessing start method (spawn is the portable "
             "default the subsystem is tested with)",
    )
    parallel.add_argument(
        "--backend", default="auto",
        choices=("auto", "numpy", "numba", "python"),
        help="kernel backend for the hot loops, propagated to worker "
             "processes via REPRO_KERNEL_BACKEND (auto = numba when "
             "installed, else numpy; unavailable choices fall back to "
             "numpy with a notice)",
    )
    parallel.set_defaults(func=_cmd_parallel)

    ps = sub.add_parser(
        "ps",
        help="stale-synchronous parameter-server loop: workers push "
             "O(dirty) chunk deltas, pull merged state under a bounded-"
             "staleness barrier",
    )
    ps.add_argument("--dataset", default="rcv1",
                    choices=("rcv1", "url", "kdda"))
    ps.add_argument("--method", default="wm", choices=("wm",),
                    help="delta sync is WM-only (the AWM active set "
                         "feeds back into training)")
    ps.add_argument("--budget-kb", type=int, default=8)
    ps.add_argument("--examples", type=int, default=8_000)
    ps.add_argument("--workers", type=int, default=4)
    ps.add_argument("--staleness", type=int, default=1,
                    help="SSP bound s: fastest worker may lead the "
                         "slowest by at most s rounds (0 = bulk-"
                         "synchronous, bit-identical to single-stream "
                         "in the data-linear regime)")
    ps.add_argument("--sync-every", type=int, default=256,
                    help="examples per worker round (one push per round)")
    ps.add_argument("--batch-size", type=int, default=64)
    ps.add_argument("--publish-every", type=int, default=1,
                    help="pushes between serving-snapshot publishes "
                         "(0 disables serving integration)")
    ps.add_argument("--k", type=int, default=10,
                    help="top-K weights printed from the global model")
    ps.add_argument("--seed", type=int, default=0)
    ps.add_argument(
        "--backend", default="auto",
        choices=("auto", "numpy", "numba", "python"),
        help="kernel backend for the hot loops (results are "
             "bit-identical on every backend)",
    )
    ps.set_defaults(func=_cmd_ps)

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection run against the PS loop (crash / "
             "stall / drop / duplicate / corrupt), verified to recover "
             "bit-identically to the fault-free reference",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="drives the fault schedule AND the "
                            "corruption content — same seed, same chaos")
    chaos.add_argument("--workers", type=int, default=4)
    chaos.add_argument("--staleness", type=int, default=0)
    chaos.add_argument("--examples", type=int, default=600)
    chaos.add_argument("--d", type=int, default=1200,
                       help="feature dimension of the synthetic stream")
    chaos.add_argument("--sync-every", type=int, default=50)
    chaos.add_argument("--batch-size", type=int, default=50)
    chaos.add_argument("--heartbeat-timeout", type=int, default=2,
                       help="scheduler ticks before a silent worker is "
                            "declared dead and respawned")
    chaos.add_argument("--json", default=None, metavar="PATH",
                       help="write the full recovery report to PATH")
    chaos.set_defaults(func=_cmd_chaos)

    def _serving_common(p):
        p.add_argument("--dataset", default="rcv1",
                       choices=("rcv1", "url", "kdda"))
        p.add_argument("--method", default="wm",
                       choices=("wm", "awm", "hash"))
        p.add_argument("--budget-kb", type=int, default=8)
        p.add_argument("--examples", type=int, default=6_000)
        p.add_argument("--batch-size", type=int, default=256)
        p.add_argument("--latency-budget-ms", type=float, default=1.0,
                       help="coalescer flush budget in milliseconds")
        p.add_argument("--max-batch", type=int, default=64,
                       help="coalescer flush bound in requests")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--backend", default="auto",
            choices=("auto", "numpy", "numba", "python"),
            help="kernel backend for the hot loops (results are "
                 "bit-identical on every backend)",
        )

    serve = sub.add_parser(
        "serve",
        help="live server demo: background training + coalesced "
             "concurrent reads, verified by the consistency checker",
    )
    _serving_common(serve)
    serve.add_argument("--readers", type=int, default=4,
                       help="concurrent reader threads")
    serve.add_argument("--reads", type=int, default=30,
                       help="reads issued per reader thread")
    serve.add_argument("--publish-every", type=int, default=2,
                       help="training batches between snapshot publishes")
    serve.add_argument("--trace", action="store_true",
                       help="enable span tracing for the run and print a "
                            "trace-reconstruction summary")
    serve.add_argument("--telemetry-json", default=None, metavar="PATH",
                       help="dump the server's telemetry registry "
                            "snapshot to PATH as JSON")
    serve.add_argument("--trace-json", default=None, metavar="PATH",
                       help="dump the run's trace trees to PATH as JSON "
                            "(implies --trace)")
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive open- or closed-loop load at an in-process server",
    )
    _serving_common(loadgen)
    loadgen.add_argument("--mode", default="closed",
                         choices=("closed", "open"))
    loadgen.add_argument("--requests", type=int, default=2_000)
    loadgen.add_argument("--clients", type=int, default=16,
                         help="closed-loop client threads")
    loadgen.add_argument("--rps", type=float, default=2_000.0,
                         help="open-loop offered request rate")
    loadgen.add_argument("--serial", action="store_true",
                         help="bypass the coalescer (serial-scalar "
                              "baseline)")
    loadgen.add_argument("--max-pending", type=int, default=None,
                         help="bounded admission queue per op: excess "
                              "load is shed with a typed Overload "
                              "(default: unbounded)")
    loadgen.add_argument("--deadline-ms", type=float, default=None,
                         help="per-request deadline; requests that "
                              "lapse in queue fail with "
                              "DeadlineExceeded at flush time")
    loadgen.set_defaults(func=_cmd_loadgen)

    telemetry = sub.add_parser(
        "telemetry",
        help="render a telemetry snapshot (terminal / prometheus / "
             "json), from a JSON dump or a fresh live serving run",
    )
    _serving_common(telemetry)
    telemetry.add_argument("--json", default=None, metavar="PATH",
                           help="render an existing snapshot dump "
                                "instead of running a live workload")
    telemetry.add_argument("--format", default="terminal",
                           choices=("terminal", "prometheus", "json"))
    telemetry.add_argument("--reads", type=int, default=64,
                           help="coalesced reads issued during the live "
                                "workload (ignored with --json)")
    telemetry.set_defaults(func=_cmd_telemetry)

    theory = sub.add_parser(
        "theory", help="evaluate Theorem 1/2 sizing"
    )
    theory.add_argument("--d", type=int, required=True)
    theory.add_argument("--epsilon", type=float, default=0.1)
    theory.add_argument("--delta", type=float, default=0.05)
    theory.add_argument("--lambda", dest="lambda_", type=float,
                        default=1e-5)
    theory.set_defaults(func=_cmd_theory)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
