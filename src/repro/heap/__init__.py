"""Indexed min-heap for tracking top-K items by magnitude.

Both the WM-Sketch (passively) and the AWM-Sketch (as its active set)
track the K heaviest model weights alongside the sketch, exactly as
heavy-hitters sketches pair a Count-Sketch with a heap of the most
frequent items (Charikar et al. 2002).  :class:`~repro.heap.topk.TopKHeap`
supports O(log K) insert / update / evict with an index map for O(1)
membership tests, plus a uniform *scale* factor so that the lazy
L2-regularization trick (Section 5.1) also applies to heap entries.
"""

from repro.heap.topk import TopKHeap

__all__ = ["TopKHeap"]
