"""Array-backed top-K store for tracking the heaviest items.

Both the WM-Sketch (passively) and the AWM-Sketch (as its active set)
track the K heaviest model weights alongside the sketch, exactly as
heavy-hitters sketches pair a Count-Sketch with a heap of the most
frequent items (Charikar et al. 2002).
:class:`~repro.heap.topk.TopKStore` keeps the bounded map in contiguous
NumPy slot arrays — O(1) insert / update / evict against a lazily
tracked minimum, vectorized membership masks and batched admission
screens for the mini-batch kernels, and a uniform *scale* factor so the
lazy L2-regularization trick (Section 5.1) applies to stored entries in
O(1).  The original indexed binary min-heap survives as
:class:`~repro.heap.reference.ReferenceTopKHeap`, the executable
specification the store is fuzzed against.
"""

from repro.heap.reference import ReferenceTopKHeap
from repro.heap.topk import (
    BatchSlotCache,
    TopKHeap,
    TopKStore,
    identity,
    negate,
)

__all__ = [
    "TopKStore",
    "TopKHeap",
    "ReferenceTopKHeap",
    "BatchSlotCache",
    "identity",
    "negate",
]
