"""The retained reference top-K heap: an indexed binary min-heap.

This is the original pure-Python implementation of the bounded top-K
map, kept verbatim as the *executable specification* for the
array-backed :class:`~repro.heap.topk.TopKStore` that replaced it on
every hot path.  The property/fuzz suite
(``tests/test_store_vs_reference.py``) drives both structures with
identical operation sequences and asserts identical visible state —
admission, rejection, eviction, decay and underflow renormalization
must all agree.  Do not "optimize" this file; its value is being the
simple, obviously-correct semantics.

The heap stores ``(key, value)`` pairs and orders them by a caller-chosen
priority — by default ``abs(value)``, which is what the active set of the
AWM-Sketch needs ("a min-heap ordered by the absolute value of the
estimated weights", Section 5.2).  A position map gives O(1) membership
and value lookup; sift-up/sift-down give O(log K) updates.

A uniform multiplicative ``scale`` is maintained separately from the raw
stored values so that multiplying *every* value by ``(1 - eta * lambda)``
— the weight-decay step applied on each observed example — costs O(1)
instead of O(K).  Because scaling by a positive constant preserves the
magnitude ordering, heap invariants are untouched.
"""

from __future__ import annotations

from typing import Callable, Iterator

_RENORM_THRESHOLD = 1e-150


class ReferenceTopKHeap:
    """Bounded min-heap over ``(key, value)`` pairs ordered by priority.

    Parameters
    ----------
    capacity:
        Maximum number of entries.  Must be >= 1.
    priority:
        Function of the (unscaled-internal, i.e. true) value that defines
        the heap order.  Defaults to ``abs``.

    Notes
    -----
    * ``value(key)`` returns the *true* value (scale applied).
    * :meth:`decay` multiplies all values by a constant in O(1).
    * When full, :meth:`push` either rejects the candidate (if its
      priority does not beat the current minimum) or evicts and returns
      the minimum entry.
    """

    def __init__(self, capacity: int, priority: Callable[[float], float] = abs):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._priority = priority
        self._scale = 1.0
        # Parallel arrays forming the heap: keys and *raw* values
        # (true value = raw * scale).
        self._keys: list[int] = []
        self._raw: list[float] = []
        self._pos: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: int) -> bool:
        return key in self._pos

    def has_any(self, keys: list[int]) -> bool:
        """Whether any of ``keys`` is currently stored (hot-path helper:
        one call instead of a membership probe per key)."""
        pos = self._pos
        for key in keys:
            if key in pos:
                return True
        return False

    def __iter__(self) -> Iterator[int]:
        return iter(list(self._keys))

    @property
    def is_full(self) -> bool:
        """Whether the heap holds ``capacity`` entries."""
        return len(self._keys) >= self.capacity

    @property
    def scale(self) -> float:
        """The current global multiplicative scale."""
        return self._scale

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------
    def value(self, key: int) -> float:
        """True (scaled) value stored for ``key``.

        Raises
        ------
        KeyError
            If ``key`` is not in the heap.
        """
        return self._raw[self._pos[key]] * self._scale

    def get(self, key: int, default: float = 0.0) -> float:
        """True value for ``key``, or ``default`` if absent."""
        idx = self._pos.get(key)
        if idx is None:
            return default
        return self._raw[idx] * self._scale

    def min_entry(self) -> tuple[int, float]:
        """The (key, true value) pair with minimum priority.

        Raises
        ------
        IndexError
            If the heap is empty.
        """
        if not self._keys:
            raise IndexError("min_entry on empty heap")
        return self._keys[0], self._raw[0] * self._scale

    def min_priority(self) -> float:
        """Priority of the minimum entry (``inf`` when empty is an error)."""
        if not self._keys:
            raise IndexError("min_priority on empty heap")
        return self._priority(self._raw[0] * self._scale)

    def items(self) -> list[tuple[int, float]]:
        """All (key, true value) pairs in arbitrary heap order."""
        return [(k, v * self._scale) for k, v in zip(self._keys, self._raw)]

    def top(self, n: int | None = None) -> list[tuple[int, float]]:
        """The ``n`` highest-priority (key, true value) pairs, descending.

        With ``n=None`` returns all entries sorted by descending priority.
        """
        entries = self.items()
        entries.sort(key=lambda kv: self._priority(kv[1]), reverse=True)
        if n is None:
            return entries
        return entries[:n]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def decay(self, factor: float) -> None:
        """Multiply every stored value by ``factor`` in O(1).

        ``factor`` must be positive (ordering by ``abs`` is preserved only
        under positive scaling).  Raw values are folded back in when the
        scale underflows toward zero.
        """
        if factor <= 0.0:
            raise ValueError(f"decay factor must be positive, got {factor}")
        self._scale *= factor
        if self._scale < _RENORM_THRESHOLD:
            self._renormalize()

    def _renormalize(self) -> None:
        """Fold the scale into the raw values to avoid underflow."""
        s = self._scale
        self._raw = [v * s for v in self._raw]
        self._scale = 1.0

    def push(self, key: int, value: float) -> tuple[int, float] | None:
        """Insert or update ``key`` with true value ``value``.

        Returns
        -------
        The evicted (key, true value) pair if an insertion into a full
        heap displaced the minimum entry; ``None`` otherwise.  If the heap
        is full and ``value`` has priority <= the current minimum (and
        ``key`` is absent), the pair ``(key, value)`` itself is returned
        as "evicted" (i.e. it was not admitted).
        """
        raw = value / self._scale
        idx = self._pos.get(key)
        if idx is not None:
            self._raw[idx] = raw
            self._sift_up(self._sift_down(idx))
            return None
        if not self.is_full:
            self._append(key, raw)
            return None
        # Full: compare priorities on true values.
        if self._priority(value) <= self.min_priority():
            return (key, value)
        evicted = self._replace_min(key, raw)
        return evicted

    def add_delta(self, key: int, delta: float) -> None:
        """Add ``delta`` to the true value of an existing ``key``.

        Raises
        ------
        KeyError
            If ``key`` is not present.
        """
        idx = self._pos[key]
        self._raw[idx] += delta / self._scale
        self._sift_up(self._sift_down(idx))

    def pop_min(self) -> tuple[int, float]:
        """Remove and return the minimum-priority (key, true value) pair."""
        if not self._keys:
            raise IndexError("pop_min on empty heap")
        out = (self._keys[0], self._raw[0] * self._scale)
        self._remove_at(0)
        return out

    def remove(self, key: int) -> float:
        """Remove ``key`` and return its true value.

        Raises
        ------
        KeyError
            If ``key`` is not present.
        """
        idx = self._pos[key]
        value = self._raw[idx] * self._scale
        self._remove_at(idx)
        return value

    def clear(self) -> None:
        """Remove all entries and reset the scale."""
        self._keys.clear()
        self._raw.clear()
        self._pos.clear()
        self._scale = 1.0

    # ------------------------------------------------------------------
    # Heap internals
    # ------------------------------------------------------------------
    def _prio_at(self, idx: int) -> float:
        return self._priority(self._raw[idx] * self._scale)

    def _append(self, key: int, raw: float) -> None:
        self._keys.append(key)
        self._raw.append(raw)
        self._pos[key] = len(self._keys) - 1
        self._sift_up(len(self._keys) - 1)

    def _replace_min(self, key: int, raw: float) -> tuple[int, float]:
        evicted = (self._keys[0], self._raw[0] * self._scale)
        del self._pos[self._keys[0]]
        self._keys[0] = key
        self._raw[0] = raw
        self._pos[key] = 0
        self._sift_down(0)
        return evicted

    def _remove_at(self, idx: int) -> None:
        last = len(self._keys) - 1
        del self._pos[self._keys[idx]]
        if idx != last:
            self._keys[idx] = self._keys[last]
            self._raw[idx] = self._raw[last]
            self._pos[self._keys[idx]] = idx
        self._keys.pop()
        self._raw.pop()
        if idx < len(self._keys):
            self._sift_up(self._sift_down(idx))

    def _swap(self, i: int, j: int) -> None:
        self._keys[i], self._keys[j] = self._keys[j], self._keys[i]
        self._raw[i], self._raw[j] = self._raw[j], self._raw[i]
        self._pos[self._keys[i]] = i
        self._pos[self._keys[j]] = j

    def _sift_up(self, idx: int) -> int:
        # Hot path: locals + inlined priority (identical arithmetic to
        # ``_prio_at``; this only removes Python call frames).
        raw = self._raw
        scale = self._scale
        prio = self._priority
        while idx > 0:
            parent = (idx - 1) // 2
            if prio(raw[idx] * scale) < prio(raw[parent] * scale):
                self._swap(idx, parent)
                idx = parent
            else:
                break
        return idx

    def _sift_down(self, idx: int) -> int:
        raw = self._raw
        scale = self._scale
        prio = self._priority
        n = len(self._keys)
        while True:
            left = 2 * idx + 1
            right = left + 1
            smallest = idx
            p_small = prio(raw[smallest] * scale)
            if left < n:
                p_left = prio(raw[left] * scale)
                if p_left < p_small:
                    smallest = left
                    p_small = p_left
            if right < n and prio(raw[right] * scale) < p_small:
                smallest = right
            if smallest == idx:
                return idx
            self._swap(idx, smallest)
            idx = smallest

    # ------------------------------------------------------------------
    # Introspection / testing helpers
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert the heap property and position-map consistency.

        Intended for tests; raises AssertionError on violation.
        """
        n = len(self._keys)
        assert len(self._raw) == n
        assert len(self._pos) == n
        for key, idx in self._pos.items():
            assert self._keys[idx] == key
        for idx in range(1, n):
            parent = (idx - 1) // 2
            assert self._prio_at(parent) <= self._prio_at(idx) + 1e-12, (
                f"heap violated at {idx}: parent {self._prio_at(parent)} > "
                f"child {self._prio_at(idx)}"
            )
