"""An array-backed top-K store ordered by the magnitude of stored values.

:class:`TopKStore` is the NumPy replacement for the original
pure-Python indexed binary heap (retained verbatim as
:class:`repro.heap.reference.ReferenceTopKHeap`, the executable
specification the fuzz suite checks this class against).  It keeps the
same visible semantics — a bounded map of ``(key, value)`` pairs that
admits, rejects or evicts by a caller-chosen priority (``abs`` by
default) — but stores everything in contiguous slot arrays:

* ``_keys`` / ``_raw``: preallocated ``(capacity,)`` arrays; live
  entries occupy slots ``[0, len)`` in insertion order, and a key's slot
  never moves while it stays a member (only removal compacts).
* a ``key -> slot`` dict for O(1) scalar membership and lookup, plus a
  lazily rebuilt *sorted-key snapshot* that serves the vectorized
  membership path (:meth:`contains_many` / :meth:`member_slots` /
  :meth:`get_many`) via one ``searchsorted`` per query batch.
* a lazily tracked *min slot* instead of a heap ordering: scalar
  mutations patch or invalidate the cached argmin in O(1); a stale
  minimum is recomputed with one vectorized ``argmin`` over the live
  slots.  Every operation the heap did in O(log K) sift steps of
  interpreted Python is now O(1) plus an occasional O(K) NumPy scan.
* a uniform multiplicative ``scale`` maintained separately from the raw
  values, so the per-example L2 decay of every stored value is O(1)
  (positive scaling preserves the priority ordering); the scale is
  folded into the raw values when it underflows toward zero.

Batched mutation goes through :meth:`push_many`, which pre-screens
candidates against the current admission threshold (sound because the
threshold is non-decreasing while the store is full and no member is
re-pushed) and falls back to sequential admits for the survivors, so
admission/eviction decisions are exactly those of pushing one at a time.

Admission-tie semantics (pinned)
--------------------------------
``push`` on a *full* store with a candidate whose priority is exactly
equal to the current minimum **rejects the candidate** — ties never
evict an incumbent.  The reference heap implied this via its ``<=``
comparison; the store documents and tests it as a contract, because the
AWM-Sketch's promote-or-fold step and the merge re-promotion path both
depend on rejections being deterministic.

Tie-breaking among *stored* entries is deterministic but unspecified
beyond "a true minimum": where several entries share the minimum
priority, :meth:`min_entry` / :meth:`pop_min` pick the first minimal
raw value in slot order (the reference heap's pick depends on its
internal sift history instead, which is the one place the two
implementations may legitimately differ).

The ``priority`` callable must be vectorizable — applied elementwise to
a float64 array it must return the array of priorities.  ``abs`` and
the module-level :func:`identity` / :func:`negate` helpers (used by the
reservoir and truncation consumers; module-level so stores pickle) all
qualify.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator

import numpy as np

from repro import kernels

_RENORM_THRESHOLD = 1e-150


def identity(v):
    """Priority = the value itself (keep the largest values)."""
    return v


def negate(v):
    """Priority = the negated value (keep the *smallest* values)."""
    return -v


class TopKStore:
    """Bounded array-backed map of ``(key, value)`` pairs kept top-K by
    priority.

    Parameters
    ----------
    capacity:
        Maximum number of entries.  Must be >= 1.  Slot arrays are
        preallocated at this size.
    priority:
        Function of the true value that defines the ordering.  Defaults
        to ``abs``.  Must work elementwise on float64 arrays (``abs``,
        :func:`identity` and :func:`negate` do); module-level callables
        keep the store picklable.
    backend:
        Kernel-backend override for the vectorized admission pre-screen
        (``None`` = follow the process default); the sketches thread
        their own override through so a model's store screens on the
        same backend as its tables.  Decisions are identical across
        backends.

    Notes
    -----
    * ``value(key)`` returns the *true* value (scale applied).
    * :meth:`decay` multiplies all values by a constant in O(1).
    * When full, :meth:`push` either rejects the candidate (if its
      priority does not beat the current minimum — **ties reject**, see
      the module docstring) or evicts and returns the minimum entry.
    * :attr:`version` counts membership changes (admissions, evictions,
      removals, clears — not value updates), letting batched callers
      cache membership masks across many queries and invalidate them
      precisely.
    """

    def __init__(
        self,
        capacity: int,
        priority: Callable[[float], float] = abs,
        backend: str | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.backend = backend
        self._priority = priority
        self._scale = 1.0
        self._keys = np.zeros(capacity, dtype=np.int64)
        self._raw = np.zeros(capacity, dtype=np.float64)
        self._scratch = np.empty(capacity, dtype=np.float64)
        self._n = 0
        self._pos: dict[int, int] = {}
        #: Cached slot of the minimum-priority entry; -1 = stale.
        self._min_slot = -1
        #: Sorted snapshot of the live keys + matching slots (lazily
        #: rebuilt after membership changes; serves searchsorted-based
        #: vectorized membership).
        self._sorted_keys: np.ndarray | None = None
        self._sorted_slots: np.ndarray | None = None
        #: Membership-change counter (see class docstring).
        self.version = 0
        # Dispatch-free backend binding for the push_many pre-screen
        # (dropped by __getstate__'s whitelist; rebuilt on load).
        self._kb = kernels.BackendHandle(backend)
        #: Debug-only owning-thread witness: the last thread that ran a
        #: batched mutation (see :meth:`push_many`).  ``snapshot_view``
        #: asserts against it — an off-thread publish would read the
        #: slot arrays mid-mutation.
        self._writer_thread: int | None = None
        #: Promotion log (``None`` = disabled): admitted keys appended
        #: on every membership-*adding* mutation, drained by the
        #: parameter-server push codec (see :meth:`enable_promo_log`).
        self._promo_log: list[int] | None = None

    # ------------------------------------------------------------------
    # Pickling (spawn-safe shard transport)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Ship only the live prefix of the slot arrays; the position
        map, min-slot and sorted-key caches are all derivable and
        rebuilt on load (the same discipline as
        ``ScaledSketchTable.__getstate__`` dropping ``_table_flat``)."""
        return {
            "capacity": self.capacity,
            "priority": self._priority,
            "backend": self.backend,
            "scale": self._scale,
            "keys": self._keys[: self._n].copy(),
            "raw": self._raw[: self._n].copy(),
        }

    def __setstate__(self, state: dict) -> None:
        self.capacity = state["capacity"]
        self._priority = state["priority"]
        self.backend = state.get("backend")  # pre-kernel pickles

        self._scale = state["scale"]
        keys = state["keys"]
        n = int(keys.size)
        self._keys = np.zeros(self.capacity, dtype=np.int64)
        self._raw = np.zeros(self.capacity, dtype=np.float64)
        self._scratch = np.empty(self.capacity, dtype=np.float64)
        self._keys[:n] = keys
        self._raw[:n] = state["raw"]
        self._n = n
        self._pos = {int(k): i for i, k in enumerate(keys.tolist())}
        self._min_slot = -1
        self._sorted_keys = None
        self._sorted_slots = None
        self.version = 0
        self._kb = kernels.BackendHandle(self.backend)
        self._writer_thread = None
        self._promo_log = None

    def snapshot_view(self) -> "TopKStore":
        """A read-only consistent copy for concurrent serving.

        The lazy scale is folded into the copied raw values (the fold
        *is* the copy — one vectorized multiply over the live prefix),
        so the snapshot's true values are bit-identical to the live
        store's at publish time: ``raw * scale`` is computed either way,
        and a later re-multiply by the snapshot's scale of 1.0 is an
        exact identity.  Only the live prefix is copied; the publisher
        (the training thread) keeps mutating the original while readers
        hold the snapshot.

        Snapshots are **read-only by contract**: their slot arrays are
        sized to the live prefix, so mutating methods (``push``,
        ``decay``, ...) are out of contract.  Lazily built caches
        (``_min_slot``, ``_sorted_keys``) may still materialize on first
        read — single-reader or externally serialized use only, the same
        single-threaded discipline as every other model structure.

        **Trainer-thread-only**: this method reads ``_keys`` / ``_raw``
        / ``_n`` without synchronization, so calling it from a thread
        other than the one mutating the store (mid-``push_many``, a
        half-applied ``replace_min``) can observe torn state — a key
        written but its value not yet, a compaction in flight.  The
        debug-gated assert below catches off-thread publishes cheaply;
        ``python -O`` removes it entirely.
        """
        if __debug__:
            owner = self._writer_thread
            assert owner is None or owner == threading.get_ident(), (
                "snapshot_view must run on the store's writer (trainer) "
                "thread; an off-thread call can read slot arrays "
                "mid-push_many"
            )
        snap = TopKStore.__new__(TopKStore)
        n = self._n
        snap.capacity = self.capacity
        snap.backend = self.backend
        snap._priority = self._priority
        snap._scale = 1.0
        snap._keys = self._keys[:n].copy()
        snap._raw = self._raw[:n] * self._scale
        snap._scratch = np.empty(n, dtype=np.float64)
        snap._n = n
        snap._pos = {
            int(k): i for i, k in enumerate(snap._keys.tolist())
        }
        snap._min_slot = -1
        snap._sorted_keys = None
        snap._sorted_slots = None
        snap.version = 0
        snap._kb = self._kb
        snap._writer_thread = None
        snap._promo_log = None
        return snap

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __contains__(self, key: int) -> bool:
        return key in self._pos

    def has_any(self, keys: list[int]) -> bool:
        """Whether any of ``keys`` is currently stored (scalar-path
        helper; batched callers use :meth:`contains_many`)."""
        pos = self._pos
        for key in keys:
            if key in pos:
                return True
        return False

    def __iter__(self) -> Iterator[int]:
        return iter(self._keys[: self._n].tolist())

    @property
    def is_full(self) -> bool:
        """Whether the store holds ``capacity`` entries."""
        return self._n >= self.capacity

    @property
    def scale(self) -> float:
        """The current global multiplicative scale."""
        return self._scale

    # ------------------------------------------------------------------
    # Internal caches
    # ------------------------------------------------------------------
    def _vprio(self, values: np.ndarray) -> np.ndarray:
        """Priorities of an array of true values."""
        return np.asarray(self._priority(values))

    def _min(self) -> int:
        """The (recomputed if stale) slot of the minimum-priority entry.

        The rescan ranks raw values: the positive scale preserves the
        priority ordering (the same contract :meth:`decay` relies on),
        so a raw-space argmin is a true-priority argmin — no scale
        multiply, and for the default ``abs`` priority the scan runs
        through a preallocated scratch buffer.
        """
        ms = self._min_slot
        if ms < 0:
            n = self._n
            if n == 0:
                raise IndexError("min of empty store")
            if self._priority is abs:
                buf = self._scratch[:n]
                np.abs(self._raw[:n], out=buf)
                ms = int(buf.argmin())
            else:
                ms = int(self._vprio(self._raw[:n]).argmin())
            self._min_slot = ms
        return ms

    def _touch_value(self, slot: int) -> None:
        """Patch the min cache after ``_raw[slot]`` changed in place.

        Comparisons run in raw space (the ordering the rescan uses —
        scale-invariant per the :meth:`decay` contract) and break exact
        ties by slot order, so a warm cache always names the same entry
        a cold ``argmin`` rescan would: cached vs rescanned stores never
        diverge on which tied minimum they evict.
        """
        ms = self._min_slot
        if ms < 0:
            return
        if slot == ms:
            # The minimum may have grown; a full rescan is needed.
            self._min_slot = -1
            return
        p_new = self._priority(float(self._raw[slot]))
        p_min = self._priority(float(self._raw[ms]))
        if p_new < p_min or (p_new == p_min and slot < ms):
            self._min_slot = slot

    def _sorted(self) -> tuple[np.ndarray, np.ndarray]:
        """(sorted live keys, slots in that order), rebuilt lazily."""
        if self._sorted_keys is None:
            n = self._n
            order = np.argsort(self._keys[:n], kind="stable")
            self._sorted_keys = self._keys[:n][order]
            self._sorted_slots = order.astype(np.intp)
        return self._sorted_keys, self._sorted_slots

    def _membership_changed(self) -> None:
        self._sorted_keys = None
        self._sorted_slots = None
        self.version += 1

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------
    def value(self, key: int) -> float:
        """True (scaled) value stored for ``key``.

        Raises
        ------
        KeyError
            If ``key`` is not in the store.
        """
        return float(self._raw[self._pos[key]]) * self._scale

    def get(self, key: int, default: float = 0.0) -> float:
        """True value for ``key``, or ``default`` if absent."""
        slot = self._pos.get(key)
        if slot is None:
            return default
        return float(self._raw[slot]) * self._scale

    def min_entry(self) -> tuple[int, float]:
        """The (key, true value) pair with minimum priority
        (deterministic slot-order pick among exact ties).

        Raises
        ------
        IndexError
            If the store is empty.
        """
        ms = self._min()
        return int(self._keys[ms]), float(self._raw[ms]) * self._scale

    def min_priority(self) -> float:
        """Priority of the minimum entry — the admission threshold a
        full store applies to non-member candidates."""
        ms = self._min()
        return self._priority(float(self._raw[ms]) * self._scale)

    def items(self) -> list[tuple[int, float]]:
        """All (key, true value) pairs in slot (insertion) order."""
        n = self._n
        return list(
            zip(self._keys[:n].tolist(), (self._raw[:n] * self._scale).tolist())
        )

    def top(self, n: int | None = None) -> list[tuple[int, float]]:
        """The ``n`` highest-priority (key, true value) pairs, descending.

        With ``n=None`` returns all entries sorted by descending
        priority (stable: ties keep slot order).  One vectorized argsort
        instead of a Python comparison sort.
        """
        count = self._n
        values = self._raw[:count] * self._scale
        order = np.argsort(-self._vprio(values), kind="stable")
        if n is not None:
            order = order[:n]
        keys = self._keys[:count][order]
        return list(zip(keys.tolist(), values[order].tolist()))

    # ------------------------------------------------------------------
    # Vectorized membership / lookup
    # ------------------------------------------------------------------
    def contains_many(self, keys: np.ndarray) -> np.ndarray:
        """Boolean mask of which ``keys`` are currently stored.

        One ``searchsorted`` against the sorted-key snapshot — the
        vectorized replacement for a Python membership probe per key.
        """
        keys = np.asarray(keys)
        if self._n == 0:
            return np.zeros(keys.shape, dtype=bool)
        sorted_keys, _ = self._sorted()
        pos = np.searchsorted(sorted_keys, keys)
        pos[pos == sorted_keys.size] = 0
        return sorted_keys[pos] == keys

    def member_slots(self, keys: np.ndarray) -> np.ndarray:
        """Slot index per key, or -1 for keys not stored.

        The returned slots stay valid until the next membership change
        (value updates never move entries), so batched callers can hold
        them across a whole mini-batch and index ``raw`` values
        repeatedly; pair with :attr:`version` to invalidate.
        """
        keys = np.asarray(keys)
        if self._n == 0:
            return np.full(keys.shape, -1, dtype=np.intp)
        sorted_keys, sorted_slots = self._sorted()
        pos = np.searchsorted(sorted_keys, keys)
        pos[pos == sorted_keys.size] = 0
        found = sorted_keys[pos] == keys
        slots = np.where(found, sorted_slots[pos], -1)
        return slots

    def get_many(self, keys: np.ndarray, default: float = 0.0) -> np.ndarray:
        """True values for ``keys`` (``default`` where absent), vectorized."""
        slots = self.member_slots(keys)
        out = self._raw[np.maximum(slots, 0)] * self._scale
        if default == 0.0:
            out[slots < 0] = 0.0
        else:
            out = np.where(slots >= 0, out, default)
        return out

    def values_at(self, slots: np.ndarray) -> np.ndarray:
        """True values at known-member ``slots`` (from
        :meth:`member_slots`); no membership re-checking."""
        return self._raw[slots] * self._scale

    def slot_of(self, key: int) -> int:
        """Slot currently holding ``key``, or -1 if absent."""
        return self._pos.get(key, -1)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def decay(self, factor: float) -> None:
        """Multiply every stored value by ``factor`` in O(1).

        ``factor`` must be positive (ordering by priority is preserved
        only under positive scaling).  Raw values are folded back in
        when the scale underflows toward zero; folding multiplies every
        raw value by the same constant, so the cached minimum stays a
        minimum.
        """
        if factor <= 0.0:
            raise ValueError(f"decay factor must be positive, got {factor}")
        self._scale *= factor
        if self._scale < _RENORM_THRESHOLD:
            self._renormalize()

    def _renormalize(self) -> None:
        """Fold the scale into the raw values to avoid underflow."""
        self._raw[: self._n] *= self._scale
        self._scale = 1.0

    def push(self, key: int, value: float) -> tuple[int, float] | None:
        """Insert or update ``key`` with true value ``value``.

        Returns
        -------
        The evicted (key, true value) pair if an insertion into a full
        store displaced the minimum entry; ``None`` otherwise.  If the
        store is full, ``key`` is absent and ``value``'s priority is
        **less than or equal to** the current minimum, the pair
        ``(key, value)`` itself is returned as "evicted" — i.e. it was
        not admitted.  Equality deterministically rejects: a candidate
        that merely *ties* the admission threshold never evicts an
        incumbent (see the module docstring).
        """
        scale = self._scale
        raw = value / scale
        slot = self._pos.get(key)
        if slot is not None:
            self._raw[slot] = raw
            self._touch_value(slot)
            return None
        n = self._n
        if n < self.capacity:
            self._keys[n] = key
            self._raw[n] = raw
            self._pos[key] = n
            self._n = n + 1
            if self._promo_log is not None:
                self._promo_log.append(key)
            ms = self._min_slot
            # Raw-space compare, ties keep the (earlier) cached slot —
            # exactly what a cold rescan's first-minimum pick does.
            if ms >= 0 and self._priority(raw) < self._priority(
                float(self._raw[ms])
            ):
                self._min_slot = n
            self._membership_changed()
            return None
        # Full: compare priorities on true values; ties reject.
        if self._priority(value) <= self.min_priority():
            return (key, value)
        ms = self._min()
        evicted = (int(self._keys[ms]), float(self._raw[ms]) * scale)
        del self._pos[evicted[0]]
        self._keys[ms] = key
        self._raw[ms] = raw
        self._pos[key] = ms
        self._min_slot = -1
        self._membership_changed()
        if self._promo_log is not None:
            self._promo_log.append(key)
        return evicted

    def push_many(self, keys: np.ndarray, values: np.ndarray) -> int:
        """Push (key, value) pairs sequentially; returns how many ended
        up stored after their own push (members updated in place count).

        Decision-equivalent to calling :meth:`push` in order.  When the
        store is full and the remaining candidates are distinct
        non-members, the admission threshold can only rise as pushes
        proceed, so candidates at or below the *current* threshold are
        rejected in one vectorized screen and only the survivors take
        the sequential path.  Mixed batches (members present, duplicate
        keys) fall back to plain sequential pushes, where the screen
        would not be sound.
        """
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if __debug__:
            # Witness for snapshot_view's owning-thread assert: reads
            # of the slot arrays are only consistent from this thread.
            self._writer_thread = threading.get_ident()
        admitted = 0
        i = 0
        n = int(keys.size)
        key_list = keys.tolist()
        value_list = values.tolist()
        # Free slots cannot be screened: every candidate is admitted.
        while i < n and not self.is_full:
            if self.push(key_list[i], value_list[i]) is None:
                admitted += 1
            i += 1
        if i >= n:
            return admitted
        rest_keys = keys[i:]
        rest_values = values[i:]
        member = self.contains_many(rest_keys)
        if member.any() or np.unique(rest_keys).size != rest_keys.size:
            survivors = range(rest_keys.size)
        elif self._priority is abs:
            # The screen kernel computes |value| > threshold directly —
            # identical decisions to the generic priority path below.
            survivors = self._kb.get().screen_abs_gt(
                rest_values, self.min_priority()
            ).tolist()
        else:
            prios = self._vprio(rest_values)
            survivors = np.flatnonzero(prios > self.min_priority()).tolist()
        for j in survivors:
            key = key_list[i + j]
            rejected = self.push(key, value_list[i + j])
            if rejected is None or rejected[0] != key:
                admitted += 1
        return admitted

    # ------------------------------------------------------------------
    # Promotion log + delta fold (parameter-server sync)
    # ------------------------------------------------------------------
    def enable_promo_log(self) -> None:
        """Start recording admitted keys (idempotent).

        Every membership-*adding* mutation (a :meth:`push` into a free
        slot, an evicting :meth:`push`, a :meth:`replace_min`) appends
        the admitted key; in-place value updates are not membership
        events and are not logged.  A store logging from construction
        therefore has every current member covered by the log — the
        invariant the parameter-server push codec relies on: shipping
        the drained log names every feature the worker's table could
        rank highly, and the driver re-estimates them against the
        *merged* table (logged values would be stale; keys are what
        matters).  Costs one ``is not None`` check per admission.
        """
        if self._promo_log is None:
            self._promo_log = []

    def drain_promo_log(self) -> list[int]:
        """Return and clear the admitted keys logged since the last
        drain (raises if the log was never enabled)."""
        log = self._promo_log
        if log is None:
            raise RuntimeError(
                "promo log not enabled; call enable_promo_log() first"
            )
        self._promo_log = []
        return log

    def fold_delta(self, keys: np.ndarray, values: np.ndarray) -> int:
        """Fold another store's promotion log into this store.

        ``keys`` are the candidate feature ids a worker's log named and
        ``values`` their estimates against the *receiving* side's
        table; duplicates collapse first (one re-estimate produces one
        value per key, so any ordering tie-break is moot) and the
        survivors replay this store's own admission rule via
        :meth:`push_many` — sorted for determinism, exactly like the
        merge-time re-promotion path.  Returns the number admitted.
        """
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if keys.size == 0:
            return 0
        uniq, first = np.unique(keys, return_index=True)
        return self.push_many(uniq, values[first])

    def replace_min(self, key: int, value: float) -> tuple[int, float]:
        """Evict the minimum entry and insert ``key`` in its slot.

        Visible-state equivalent of ``pop_min()`` followed by
        ``push(key, value)`` (on a full store whose minimum loses), but
        done as one slot overwrite — no other entry moves, so slot
        handles held by batched callers stay valid.  Returns the evicted
        (key, true value) pair.

        Raises
        ------
        IndexError
            If the store is empty.
        """
        ms = self._min()
        evicted = (int(self._keys[ms]), float(self._raw[ms]) * self._scale)
        del self._pos[evicted[0]]
        self._keys[ms] = key
        self._raw[ms] = value / self._scale
        self._pos[key] = ms
        self._min_slot = -1
        self._membership_changed()
        if self._promo_log is not None:
            self._promo_log.append(key)
        return evicted

    def add_delta(self, key: int, delta: float) -> None:
        """Add ``delta`` to the true value of an existing ``key``.

        Raises
        ------
        KeyError
            If ``key`` is not present.
        """
        slot = self._pos[key]
        self._raw[slot] += delta / self._scale
        self._touch_value(slot)

    def add_many(self, slots: np.ndarray, deltas: np.ndarray) -> None:
        """Add true-value ``deltas`` at known-member ``slots``.

        The vectorized counterpart of per-key :meth:`add_delta` calls:
        each slot receives ``delta / scale`` with identical arithmetic,
        and duplicate slots accumulate in element order (``np.add.at``),
        matching a sequential loop bit-for-bit.
        """
        if slots.size == 0:
            return
        scale = self._scale
        np.add.at(self._raw, slots, deltas if scale == 1.0 else deltas / scale)
        # Any touched slot can sink below (or be) the cached minimum;
        # a lazy rescan is cheaper than per-call patch logic here.
        self._min_slot = -1

    def set_many(self, slots: np.ndarray, values: np.ndarray) -> None:
        """Overwrite true values at known-member ``slots``, vectorized.

        Equivalent to per-key member-updating :meth:`push` calls: each
        slot's raw value becomes ``value / scale``.  Duplicate slots
        resolve to the last write, like a sequential loop.
        """
        if slots.size == 0:
            return
        scale = self._scale
        self._raw[slots] = values if scale == 1.0 else values / scale
        # Any touched slot can sink below (or be) the cached minimum;
        # a lazy rescan is cheaper than per-call patch logic here.
        self._min_slot = -1

    def pop_min(self) -> tuple[int, float]:
        """Remove and return the minimum-priority (key, true value) pair
        (deterministic slot-order pick among exact ties)."""
        ms = self._min()
        out = (int(self._keys[ms]), float(self._raw[ms]) * self._scale)
        self._remove_slot(ms)
        return out

    def remove(self, key: int) -> float:
        """Remove ``key`` and return its true value.

        Raises
        ------
        KeyError
            If ``key`` is not present.
        """
        slot = self._pos[key]
        value = float(self._raw[slot]) * self._scale
        self._remove_slot(slot)
        return value

    def _remove_slot(self, slot: int) -> None:
        """Free a slot by moving the last live entry into it."""
        last = self._n - 1
        del self._pos[int(self._keys[slot])]
        if slot != last:
            self._keys[slot] = self._keys[last]
            self._raw[slot] = self._raw[last]
            self._pos[int(self._keys[slot])] = slot
        self._n = last
        # The moved entry (or the removal of the cached min itself)
        # invalidates the cached argmin unless it provably survives.
        if self._min_slot in (slot, last):
            self._min_slot = -1
        self._membership_changed()

    def clear(self) -> None:
        """Remove all entries and reset the scale."""
        self._n = 0
        self._pos.clear()
        self._scale = 1.0
        self._min_slot = -1
        self._membership_changed()

    # ------------------------------------------------------------------
    # Introspection / testing helpers
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert slot-array / position-map / cache consistency.

        Intended for tests; raises AssertionError on violation.
        """
        n = self._n
        assert 0 <= n <= self.capacity
        assert len(self._pos) == n
        for key, slot in self._pos.items():
            assert 0 <= slot < n
            assert int(self._keys[slot]) == key
        if self._min_slot >= 0:
            assert self._min_slot < n
            prios = self._vprio(self._raw[:n] * self._scale)
            assert prios[self._min_slot] <= prios.min() + 1e-12, (
                f"cached min slot {self._min_slot} "
                f"({prios[self._min_slot]}) is not minimal ({prios.min()})"
            )
        if self._sorted_keys is not None:
            assert self._sorted_keys.size == n
            assert np.array_equal(
                self._sorted_keys, np.sort(self._keys[:n])
            )
            assert np.array_equal(
                self._keys[:n][self._sorted_slots], self._sorted_keys
            )


class BatchSlotCache:
    """Store slots for every index position of one CSR mini-batch.

    The batched WM/AWM kernels consult store membership for every
    example; doing that per example costs a vectorized probe per
    example, but membership only changes on (relatively rare)
    admissions and evictions.  This cache answers membership for the
    whole batch with *one* :meth:`TopKStore.member_slots` call and then
    tracks membership events incrementally: an admitted or evicted key's
    occurrences inside the batch are located by binary search in a
    presorted copy of the batch's index array and patched in place.

    Slot handles stay valid because the store never moves a surviving
    entry's slot (evicting promotions go through
    :meth:`TopKStore.replace_min`); :attr:`TopKStore.version` guards
    against unlogged membership changes — on mismatch the caller
    rebuilds.

    With a :class:`~repro.kernels.workspace.KernelWorkspace` (``ws``)
    the three batch-lifetime arrays — the slots, the argsort order and
    the sorted index copy — live in grow-only arenas instead of fresh
    allocations, so steady-state batches build their membership cache
    allocation-free (same contract as every other workspace buffer:
    the views are only valid until the next same-name request, i.e.
    until the next batch's cache is built).
    """

    __slots__ = ("store", "slots", "version", "_order", "_sorted_indices")

    def __init__(
        self,
        store: TopKStore,
        indices: np.ndarray,
        reuse: "BatchSlotCache | None" = None,
        ws=None,
    ):
        self.store = store
        n = indices.size
        if reuse is not None and reuse._sorted_indices.size == n:
            # Rebuild for the same batch: the (expensive) argsort of the
            # batch's index array depends only on the batch, not on the
            # store, so a stale cache donates it.
            self._order = reuse._order
            self._sorted_indices = reuse._sorted_indices
        elif ws is not None:
            order = ws.array("bsc_order", n, np.intp)
            order[:] = np.argsort(indices)
            self._order = order
            sorted_indices = ws.array("bsc_sorted", n, np.int64)
            np.take(indices, order, out=sorted_indices)
            self._sorted_indices = sorted_indices
        else:
            self._order = np.argsort(indices)
            self._sorted_indices = indices[self._order]
        # Fill slots from the store side: only the <= capacity stored
        # keys can occur as members, so locate each stored key's run in
        # the sorted batch instead of probing every batch position.
        if ws is not None:
            self.slots = ws.array("bsc_slots", n, np.intp)
            self.slots.fill(-1)
        else:
            self.slots = np.full(indices.shape, -1, dtype=np.intp)
        keys = store._keys[: store._n]
        lo = np.searchsorted(self._sorted_indices, keys)
        hi = np.searchsorted(self._sorted_indices, keys, side="right")
        for slot in np.flatnonzero(hi > lo).tolist():
            self.slots[self._order[lo[slot] : hi[slot]]] = slot
        self.version = store.version

    @property
    def stale(self) -> bool:
        """Whether the store changed membership without :meth:`apply`."""
        return self.version != self.store.version

    def slice(self, lo: int, hi: int) -> np.ndarray:
        """Slots for batch index positions ``[lo, hi)`` (a view)."""
        return self.slots[lo:hi]

    def apply(self, admitted: int, evicted: int | None) -> None:
        """Patch the cache after one admission (and optional eviction).

        Each logged event corresponds to exactly one membership change
        in the store (an append or a :meth:`TopKStore.replace_min`), so
        the expected version advances by one; any store mutation that
        bypassed the log still shows up as :attr:`stale`.
        """
        if evicted is not None:
            self._patch(evicted, -1)
        self._patch(admitted, self.store.slot_of(admitted))
        self.version += 1

    def _patch(self, key: int, slot: int) -> None:
        lo, hi = np.searchsorted(self._sorted_indices, (key, key + 1))
        if hi > lo:
            self.slots[self._order[lo:hi]] = slot


#: Backwards-compatible alias: every consumer that imported the binary
#: heap now gets the array-backed store (same visible semantics; the
#: original implementation lives on as
#: :class:`repro.heap.reference.ReferenceTopKHeap`).
TopKHeap = TopKStore
