"""Unified observability: metrics, tracing spans, and profiling hooks.

Three cooperating pieces, threaded through train → publish → serve:

* :mod:`repro.telemetry.registry` — :class:`MetricsRegistry` with
  lock-consistent counters/gauges/log-scale histograms and sum-merge
  snapshot semantics (per-worker registries merge like sketch tables);
* :mod:`repro.telemetry.tracer` — the module-level :data:`trace`
  singleton recording parent/child wall-clock span trees, free when
  disabled;
* :mod:`repro.telemetry.hooks` — the module-level :data:`hooks`
  profiling callbacks (``on_batch_end`` / ``on_publish`` /
  ``on_flush``) the benchmarks build timing breakdowns from.

Exporters (:mod:`repro.telemetry.exporters`) render any snapshot as
Prometheus text, a JSON dump, or the ``repro telemetry`` terminal view.

Overhead contract: metric updates are per-batch (never per example)
and tracing costs nothing measurable while disabled —
``BENCH_telemetry.json`` demonstrates tracing-enabled Fig. 7 training
within 3% of disabled, and CI gates it
(``check_throughput_regression --kind telemetry``).
"""

from repro.telemetry.exporters import render_terminal, to_json, to_prometheus
from repro.telemetry.hooks import ProfilingHooks, hooks
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.telemetry.tracer import (
    Span,
    TraceError,
    Tracer,
    trace,
    validate_span_tree,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProfilingHooks",
    "Span",
    "TraceError",
    "Tracer",
    "hooks",
    "merge_snapshots",
    "render_terminal",
    "to_json",
    "to_prometheus",
    "trace",
    "validate_span_tree",
]
