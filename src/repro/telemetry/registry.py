"""Metrics substrate: counters, gauges, log-scale histograms, one lock.

Every hot layer (kernels, serving, load generation) records into a
:class:`MetricsRegistry`.  Three design rules keep it honest:

* **One mutex per registry.**  Every mutation and every read of every
  instrument takes the registry's single re-entrant lock.  That makes
  increments race-free under free-threaded readers *and* makes
  :meth:`MetricsRegistry.snapshot` a **consistent cut**: a snapshot can
  never pair a new histogram bucket with a stale counter, because
  nothing mutates while it is taken.  The lock is cheap — the serving
  paths take it once per *batch* (flush/publish), never per element.
* **Snapshots are plain JSON-able dicts** with sum-merge semantics.
  Two registries (e.g. per-worker trainers from ``repro.parallel``)
  merge by adding counters and bucket counts — exactly how sketch
  tables merge — so :func:`merge_snapshots` is associative and
  commutative over integer-valued instruments, and merging per-worker
  telemetry in any order yields the identical snapshot.
* **Histograms are fixed log-scale buckets**, recorded in bulk through
  :meth:`Histogram.record_many` (one ``np.searchsorted`` +
  ``np.bincount`` per batch of observations), so long open-loop load
  runs hold O(buckets) memory instead of one float per request.

Instruments may be created standalone (no registry) for private use —
they then carry their own lock.
"""

from __future__ import annotations

import math
import threading

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
]


def instrument_key(name: str, labels: tuple[tuple[str, object], ...]) -> str:
    """Flat snapshot key: ``name`` or ``name{k=v,...}`` (sorted labels)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _labels_tuple(labels: dict) -> tuple[tuple[str, object], ...]:
    return tuple(sorted(labels.items()))


class _Instrument:
    """Shared base: identity (name + labels) and the protecting lock."""

    __slots__ = ("name", "labels", "_lock")

    def __init__(self, name, labels=(), lock=None):
        self.name = name
        self.labels = tuple(labels)
        self._lock = lock if lock is not None else threading.RLock()

    @property
    def key(self) -> str:
        return instrument_key(self.name, self.labels)


class Counter(_Instrument):
    """Monotone additive count (int or float increments)."""

    __slots__ = ("_value",)

    def __init__(self, name, labels=(), lock=None):
        super().__init__(name, labels, lock)
        self._value = 0

    def inc(self, n=1):
        with self._lock:
            self._value += n

    @property
    def value(self):
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """A level (queue depth, cache size): set / inc / dec.

    Gauges merge by *summing* — per-worker levels (pending requests,
    cached keys) add across shards.
    """

    __slots__ = ("_value",)

    def __init__(self, name, labels=(), lock=None):
        super().__init__(name, labels, lock)
        self._value = 0

    def set(self, v):
        with self._lock:
            self._value = v

    def inc(self, n=1):
        with self._lock:
            self._value += n

    def dec(self, n=1):
        with self._lock:
            self._value -= n

    @property
    def value(self):
        with self._lock:
            return self._value


def _edges(lo: float, hi: float, buckets_per_decade: int) -> np.ndarray:
    """Log-scale bucket edges ``lo * 10**(i / bpd)`` covering [lo, hi)."""
    n = int(math.ceil(round(math.log10(hi / lo) * buckets_per_decade, 9)))
    return lo * np.power(10.0, np.arange(n + 1) / buckets_per_decade)


class Histogram(_Instrument):
    """Fixed-bucket log-scale histogram over positive observations.

    ``counts[0]`` is the underflow bucket (observations below ``lo``,
    including zero/negative), ``counts[-1]`` the overflow bucket
    (observations at or above ``hi``); interior bucket ``i`` covers the
    half-open interval ``[edges[i-1], edges[i])`` — an observation
    exactly on an edge lands in the bucket that *starts* there.
    Percentiles interpolate linearly within a bucket and are clamped to
    the exactly-tracked ``[min_value, max_value]``, so ``percentile(100)
    == max_value`` regardless of bucket width.
    """

    __slots__ = (
        "lo", "hi", "buckets_per_decade",
        "_edges", "_counts", "_count", "_sum", "_min", "_max",
    )

    def __init__(
        self,
        name,
        labels=(),
        lock=None,
        *,
        lo: float = 1e-7,
        hi: float = 1e3,
        buckets_per_decade: int = 6,
    ):
        if not (0 < lo < hi):
            raise ValueError("need 0 < lo < hi")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        super().__init__(name, labels, lock)
        self.lo = float(lo)
        self.hi = float(hi)
        self.buckets_per_decade = int(buckets_per_decade)
        self._edges = _edges(self.lo, self.hi, self.buckets_per_decade)
        self._counts = np.zeros(self._edges.size + 1, dtype=np.int64)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording ------------------------------------------------------
    def record(self, value: float) -> None:
        self.record_many(np.asarray([value], dtype=np.float64))

    def record_many(self, values) -> None:
        """Record a whole batch of observations in one vectorized pass."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        idx = np.searchsorted(self._edges, values, side="right")
        binned = np.bincount(idx, minlength=self._counts.size)
        vmin = float(values.min())
        vmax = float(values.max())
        vsum = float(values.sum())
        with self._lock:
            self._counts += binned
            self._count += values.size
            self._sum += vsum
            if vmin < self._min:
                self._min = vmin
            if vmax > self._max:
                self._max = vmax

    # -- reading --------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def min_value(self) -> float | None:
        with self._lock:
            return None if self._count == 0 else self._min

    @property
    def max_value(self) -> float | None:
        with self._lock:
            return None if self._count == 0 else self._max

    def percentile(self, q: float) -> float:
        with self._lock:
            return _hist_percentile(
                self._counts, self._edges, self._count, self._min,
                self._max, q,
            )

    def snapshot(self) -> dict:
        """A consistent, JSON-able, sum-mergeable view (see module doc)."""
        with self._lock:
            empty = self._count == 0
            return {
                "type": "histogram",
                "lo": self.lo,
                "hi": self.hi,
                "buckets_per_decade": self.buckets_per_decade,
                "count": self._count,
                "sum": self._sum,
                "min": None if empty else self._min,
                "max": None if empty else self._max,
                "counts": self._counts.tolist(),
                "p50": self.percentile(50.0),
                "p90": self.percentile(90.0),
                "p99": self.percentile(99.0),
            }


def _hist_percentile(counts, edges, total, vmin, vmax, q) -> float:
    if total == 0:
        return float("nan")
    if not (0.0 <= q <= 100.0):
        raise ValueError("q must be in [0, 100]")
    target = max(q / 100.0 * total, 1e-12)
    cum = np.cumsum(counts)
    b = int(np.searchsorted(cum, target, side="left"))
    before = 0 if b == 0 else int(cum[b - 1])
    in_bucket = int(counts[b])
    # Bucket bounds; the open-ended under/overflow buckets borrow the
    # exactly-tracked extremes.
    lo_b = vmin if b == 0 else float(edges[b - 1])
    hi_b = vmax if b >= edges.size else float(edges[b])
    frac = (target - before) / in_bucket if in_bucket else 1.0
    value = lo_b + frac * (hi_b - lo_b)
    return float(min(max(value, vmin), vmax))


def _percentile_from_snapshot(snap: dict, q: float) -> float:
    edges = _edges(snap["lo"], snap["hi"], snap["buckets_per_decade"])
    vmin = snap["min"] if snap["min"] is not None else math.inf
    vmax = snap["max"] if snap["max"] is not None else -math.inf
    return _hist_percentile(
        np.asarray(snap["counts"], dtype=np.int64), edges, snap["count"],
        vmin, vmax, q,
    )


class MetricsRegistry:
    """Get-or-create instrument registry with consistent snapshots.

    All instruments created through a registry share its single
    re-entrant lock; :meth:`locked` exposes it so composite reads (a
    server's ``stats()``) can pin one consistent cut across many
    instruments.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._instruments: dict[tuple, _Instrument] = {}

    # -- creation -------------------------------------------------------
    def _get_or_create(self, cls, name, labels, **params):
        key = (name, _labels_tuple(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(name, key[1], lock=self._lock, **params)
                self._instruments[key] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"instrument {instrument_key(name, key[1])!r} already "
                    f"registered as {type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        *,
        lo: float = 1e-7,
        hi: float = 1e3,
        buckets_per_decade: int = 6,
        **labels,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels,
            lo=lo, hi=hi, buckets_per_decade=buckets_per_decade,
        )

    # -- consistent reads ----------------------------------------------
    def locked(self):
        """The registry mutex as a context manager (re-entrant): hold it
        to read several instruments as one consistent cut."""
        return self._lock

    def snapshot(self) -> dict:
        """One consistent cut of every instrument (JSON-able)."""
        with self._lock:
            counters = {}
            gauges = {}
            histograms = {}
            for inst in self._instruments.values():
                if isinstance(inst, Counter):
                    counters[inst.key] = inst._value
                elif isinstance(inst, Gauge):
                    gauges[inst.key] = inst._value
                else:
                    histograms[inst.key] = inst.snapshot()
            return {
                "counters": counters,
                "gauges": gauges,
                "histograms": histograms,
            }

    def delta(self, prev: dict) -> dict:
        """Snapshot now minus a previous snapshot's additive state.

        Counters and histogram counts subtract; gauges are levels, so
        the current value is reported as-is; histogram min/max cannot be
        un-merged and keep their current values.
        """
        now = self.snapshot()
        for key, value in (prev.get("counters") or {}).items():
            if key in now["counters"]:
                now["counters"][key] -= value
        for key, snap in (prev.get("histograms") or {}).items():
            h = now["histograms"].get(key)
            if h is None:
                continue
            h["count"] -= snap["count"]
            h["sum"] -= snap["sum"]
            h["counts"] = [
                a - b for a, b in zip(h["counts"], snap["counts"])
            ]
            for q, key_q in ((50.0, "p50"), (90.0, "p90"), (99.0, "p99")):
                h[key_q] = _percentile_from_snapshot(h, q)
        return now

    # -- merging --------------------------------------------------------
    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's snapshot into this registry's live
        instruments (sum-merge; creates missing instruments)."""
        with self._lock:
            for key, value in (snap.get("counters") or {}).items():
                name, labels = _parse_key(key)
                self._get_or_create(Counter, name, labels)._value += value
            for key, value in (snap.get("gauges") or {}).items():
                name, labels = _parse_key(key)
                self._get_or_create(Gauge, name, labels)._value += value
            for key, h in (snap.get("histograms") or {}).items():
                name, labels = _parse_key(key)
                inst = self._get_or_create(
                    Histogram, name, labels,
                    lo=h["lo"], hi=h["hi"],
                    buckets_per_decade=h["buckets_per_decade"],
                )
                if (inst.lo, inst.hi, inst.buckets_per_decade) != (
                    h["lo"], h["hi"], h["buckets_per_decade"]
                ):
                    raise ValueError(
                        f"histogram {key!r}: incompatible bucket layout"
                    )
                inst._counts += np.asarray(h["counts"], dtype=np.int64)
                inst._count += h["count"]
                inst._sum += h["sum"]
                if h["min"] is not None and h["min"] < inst._min:
                    inst._min = h["min"]
                if h["max"] is not None and h["max"] > inst._max:
                    inst._max = h["max"]

    def merge(self, other: "MetricsRegistry") -> None:
        """Sum-merge another registry into this one (via its snapshot,
        so the read side is itself a consistent cut)."""
        self.merge_snapshot(other.snapshot())


def _parse_key(key: str) -> tuple[str, dict]:
    """Invert :func:`instrument_key` (label values parse as str/int)."""
    if not key.endswith("}"):
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels = {}
    for part in inner.split(","):
        k, _, v = part.partition("=")
        labels[k] = int(v) if v.lstrip("-").isdigit() else v
    return name, labels


def merge_snapshots(*snaps: dict) -> dict:
    """Sum-merge snapshots (associative + commutative for integer-valued
    instruments — the per-worker merge used by ``repro.parallel``)."""
    out = MetricsRegistry()
    for snap in snaps:
        out.merge_snapshot(snap)
    merged = out.snapshot()
    return merged
