"""Snapshot exporters: Prometheus text, JSON dump, terminal view.

All three render the same input — a :meth:`MetricsRegistry.snapshot`
dict — so anything a scraper sees is exactly the consistent cut the
in-process views see.  ``repro telemetry`` (the CLI) renders the
terminal view from a live run or from a dumped JSON file.
"""

from __future__ import annotations

import json

from repro.telemetry.registry import _edges, _parse_key

__all__ = ["to_json", "to_prometheus", "render_terminal"]


def to_json(snapshot: dict, indent: int = 2) -> str:
    """The snapshot as a JSON document (the CI-uploaded artifact)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def to_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition format (0.0.4) for the snapshot."""
    lines: list[str] = []
    typed: set[str] = set()

    def _emit_type(pname: str, kind: str) -> None:
        if pname not in typed:
            lines.append(f"# TYPE {pname} {kind}")
            typed.add(pname)

    for key, value in sorted((snapshot.get("counters") or {}).items()):
        name, labels = _parse_key(key)
        pname = _prom_name(name) + "_total"
        _emit_type(pname, "counter")
        lines.append(f"{pname}{_prom_labels(labels)} {value}")
    for key, value in sorted((snapshot.get("gauges") or {}).items()):
        name, labels = _parse_key(key)
        pname = _prom_name(name)
        _emit_type(pname, "gauge")
        lines.append(f"{pname}{_prom_labels(labels)} {value}")
    for key, h in sorted((snapshot.get("histograms") or {}).items()):
        name, labels = _parse_key(key)
        pname = _prom_name(name)
        _emit_type(pname, "histogram")
        edges = _edges(h["lo"], h["hi"], h["buckets_per_decade"])
        cum = 0
        for edge, count in zip(edges, h["counts"]):
            # counts[i] covers observations below edges[i] (bucket 0 is
            # the underflow bucket), matching Prometheus's cumulative
            # ``le`` convention exactly.
            cum += count
            le = dict(labels, le=f"{edge:.9g}")
            lines.append(f"{pname}_bucket{_prom_labels(le)} {cum}")
        cum += h["counts"][-1]
        inf = dict(labels, le="+Inf")
        lines.append(f"{pname}_bucket{_prom_labels(inf)} {cum}")
        lines.append(f"{pname}_sum{_prom_labels(labels)} {h['sum']:.9g}")
        lines.append(f"{pname}_count{_prom_labels(labels)} {h['count']}")
    return "\n".join(lines) + "\n"


_BLOCKS = " ▁▂▃▄▅▆▇█"


def _sparkline(counts: list) -> str:
    peak = max(counts) if counts else 0
    if peak == 0:
        return ""
    return "".join(
        _BLOCKS[min(8, 1 + (8 * c) // peak) if c else 0] for c in counts
    )


def render_terminal(snapshot: dict) -> str:
    """Human-oriented view for ``repro telemetry`` / the serving demo."""
    out: list[str] = []
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    histograms = snapshot.get("histograms") or {}
    if counters:
        out.append("counters")
        width = max(len(k) for k in counters)
        for key, value in sorted(counters.items()):
            shown = f"{value:,}" if isinstance(value, int) else f"{value:,.3f}"
            out.append(f"  {key:<{width}}  {shown}")
    if gauges:
        out.append("gauges")
        width = max(len(k) for k in gauges)
        for key, value in sorted(gauges.items()):
            out.append(f"  {key:<{width}}  {value:,}")
    if histograms:
        out.append("histograms (seconds)")
        width = max(len(k) for k in histograms)
        for key, h in sorted(histograms.items()):
            if h["count"] == 0:
                out.append(f"  {key:<{width}}  (empty)")
                continue
            out.append(
                f"  {key:<{width}}  n={h['count']:<8,} "
                f"p50={1e3 * h['p50']:.3f}ms p90={1e3 * h['p90']:.3f}ms "
                f"p99={1e3 * h['p99']:.3f}ms max={1e3 * h['max']:.3f}ms"
            )
            spark = _sparkline(h["counts"])
            if spark:
                out.append(f"  {'':<{width}}  |{spark}|")
    return "\n".join(out) + ("\n" if out else "")
