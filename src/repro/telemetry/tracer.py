"""Span tracer: parent/child wall-clock trees, free when disabled.

``with trace.span("flush", op="predict"): ...`` times a region and
attaches it to the enclosing span of the *same thread* (thread-local
stack), so a flush trace nests its kernel calls and a training batch
nests ``fit_batch`` → hash/update/maintain.  A span with no enclosing
parent is a **root**: completed roots land in a bounded ring buffer
(oldest dropped, drop count kept) to be drained by tests, the CLI, or
the JSON exporter.

The overhead contract (BENCH_telemetry.json, CI-gated):

* **disabled** — :meth:`Tracer.span` checks the module-level
  ``enabled`` flag *before any allocation* and returns a cached no-op
  context manager, so instrumented hot loops pay one attribute check
  plus two no-op method calls per span and allocate nothing
  (asserted with ``tracemalloc`` in ``tests/test_telemetry.py``);
* **enabled** — one small object and two ``perf_counter`` calls per
  span; the instrumentation points are per *batch*, never per example,
  which is what keeps telemetry-enabled Fig. 7 training within 3% of
  disabled.

Because a child's ``__enter__`` runs after its parent's and its
``__exit__`` before its parent's, and ``perf_counter`` is monotonic,
every recorded tree satisfies the reconstruction invariants checked by
:func:`validate_span_tree`: children lie inside the parent interval,
same-level children do not overlap, and child durations sum to at most
the parent duration (no double-counted, no negative "lost" time).
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter

__all__ = [
    "Span",
    "TraceError",
    "Tracer",
    "trace",
    "validate_span_tree",
]


class TraceError(AssertionError):
    """A recorded span tree violates the reconstruction invariants."""


class _NoopSpan:
    """Cached do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def tag(self, **tags):
        return self


_NOOP = _NoopSpan()


class Span:
    """One timed region; a node of a per-thread trace tree."""

    __slots__ = (
        "name", "tags", "start", "end", "children", "_tracer", "_parent",
    )

    def __init__(self, tracer: "Tracer", name: str, tags: dict):
        self.name = name
        self.tags = tags
        self.start = 0.0
        self.end = 0.0
        self.children: list[Span] = []
        self._tracer = tracer
        self._parent = None

    def tag(self, **tags) -> "Span":
        """Attach tags discovered mid-span (e.g. a publish version)."""
        self.tags.update(tags)
        return self

    def __enter__(self) -> "Span":
        local = self._tracer._local
        self._parent = getattr(local, "span", None)
        local.span = self
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.end = perf_counter()
        self._tracer._local.span = self._parent
        if self._parent is not None:
            self._parent.children.append(self)
        else:
            self._tracer._record_root(self)
        return False

    @property
    def seconds(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-able tree (the trace artifact CI uploads)."""
        return {
            "name": self.name,
            "tags": self.tags,
            "start": self.start,
            "end": self.end,
            "seconds": self.seconds,
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name} {1e3 * self.seconds:.3f}ms "
            f"children={len(self.children)}>"
        )


class Tracer:
    """Module-level tracer; see the module docstring for the contract."""

    def __init__(self, max_traces: int = 1024):
        #: The one flag the hot paths check.  Plain attribute on
        #: purpose: reading it is a dict lookup, and flips happen at
        #: run boundaries, not mid-span.
        self.enabled = False
        self.max_traces = int(max_traces)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: deque[Span] = deque(maxlen=self.max_traces)
        self.dropped = 0

    # -- recording ------------------------------------------------------
    def span(self, name: str, **tags):
        """A context manager timing ``name``; no-op while disabled."""
        if not self.enabled:
            return _NOOP
        return Span(self, name, tags)

    def _record_root(self, span: Span) -> None:
        with self._lock:
            if len(self._roots) == self._roots.maxlen:
                self.dropped += 1
            self._roots.append(span)

    # -- control --------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()
            self.dropped = 0

    class _Capture:
        __slots__ = ("_tracer", "spans", "_was_enabled")

        def __init__(self, tracer):
            self._tracer = tracer
            self.spans: list[Span] = []

        def __enter__(self):
            self._was_enabled = self._tracer.enabled
            self._tracer.clear()
            self._tracer.enabled = True
            return self

        def __exit__(self, exc_type, exc, tb):
            self._tracer.enabled = self._was_enabled
            self.spans.extend(self._tracer.drain())
            return False

    def capture(self) -> "_Capture":
        """``with trace.capture() as cap:`` — enable, run, collect roots
        into ``cap.spans``, restore the previous enabled state."""
        return Tracer._Capture(self)

    # -- reading --------------------------------------------------------
    def drain(self) -> list[Span]:
        """Remove and return all completed root spans (oldest first)."""
        with self._lock:
            roots = list(self._roots)
            self._roots.clear()
            return roots

    def traces(self) -> list[Span]:
        """Completed root spans without consuming them."""
        with self._lock:
            return list(self._roots)


def validate_span_tree(span: Span, eps: float = 1e-9) -> int:
    """Check the wall-clock reconstruction invariants; return the number
    of spans in the tree.

    Raises :class:`TraceError` unless, recursively: the span's duration
    is non-negative, every child lies within the parent's interval,
    same-level children are disjoint and in order (no negative gaps),
    and the children's durations sum to at most the parent's duration.
    """
    if span.end + eps < span.start:
        raise TraceError(f"{span.name}: negative duration")
    child_sum = 0.0
    prev_end = span.start
    count = 1
    for child in span.children:
        if child.start + eps < span.start or child.end > span.end + eps:
            raise TraceError(
                f"{child.name}: escapes parent {span.name} interval"
            )
        if child.start + eps < prev_end:
            raise TraceError(
                f"{child.name}: overlaps its preceding sibling "
                f"under {span.name}"
            )
        prev_end = child.end
        child_sum += child.seconds
        count += validate_span_tree(child, eps)
    if child_sum > span.seconds + eps:
        raise TraceError(
            f"{span.name}: children sum to {child_sum:.9f}s "
            f"> parent {span.seconds:.9f}s (double-counted time)"
        )
    return count


#: The process-wide tracer every instrumentation point uses.
trace = Tracer()
