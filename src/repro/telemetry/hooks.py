"""Profiling hook points fired by the train → publish → serve layers.

Benchmarks (and any external profiler) register plain callables; the
instrumented code fires them with already-measured timings, so BENCH
JSONs can carry timing-breakdown sections without re-instrumenting the
layers themselves.  Every call site guards on list truthiness
(``if hooks.on_batch_end: ...``), so an unregistered hook costs one
attribute read.

Hook signatures:

* ``on_batch_end(model, n_examples, seconds)`` — one training batch
  consumed (fired by :meth:`repro.serving.server.SketchServer.train`
  and :meth:`repro.learning.base.StreamingClassifier.fit_stream`).
* ``on_publish(version, t, seconds)`` — one snapshot published.
* ``on_flush(op, batch_size, reason, queue_wait_seconds, seconds)`` —
  one coalescer flush completed (``queue_wait_seconds`` is the oldest
  request's wait).
"""

from __future__ import annotations

__all__ = ["ProfilingHooks", "hooks"]


class ProfilingHooks:
    """Registered callbacks per hook point (plain lists; append/remove)."""

    def __init__(self):
        self.on_batch_end: list = []
        self.on_publish: list = []
        self.on_flush: list = []

    def clear(self) -> None:
        """Deregister every callback (used by benchmarks/tests)."""
        del self.on_batch_end[:]
        del self.on_publish[:]
        del self.on_flush[:]

    # -- firing (called by the instrumented layers) ---------------------
    def batch_end(self, model, n_examples: int, seconds: float) -> None:
        for fn in self.on_batch_end:
            fn(model, n_examples, seconds)

    def publish(self, version: int, t: int, seconds: float) -> None:
        for fn in self.on_publish:
            fn(version, t, seconds)

    def flush(
        self,
        op: str,
        batch_size: int,
        reason: str,
        queue_wait_seconds: float,
        seconds: float,
    ) -> None:
        for fn in self.on_flush:
            fn(op, batch_size, reason, queue_wait_seconds, seconds)


#: The process-wide hook registry every instrumentation point fires.
hooks = ProfilingHooks()
