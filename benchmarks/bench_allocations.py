"""Allocation benchmark: transient memory of steady-state ``fit_batch``.

The fused kernels + per-model workspaces exist to stop the batched
update path from materializing a fresh chain of nnz-scale temporaries
every mini-batch.  This benchmark quantifies that with tracemalloc
(NumPy registers its buffers with it) on the Fig. 7 WM workload:

* **peak_transient_bytes** — the high-water mark of memory allocated
  *above* the resting state while running steady-state (post-warmup)
  batches.  On the unfused chain this is the full temporary chain
  (hash expansions, sign*value products, flat buckets, margin blocks);
  on the fused path the arenas are preallocated and the residue is
  per-example interpreter noise.
* **retained_bytes_per_batch** — net bytes still allocated after a
  pass, divided by the number of batches: ~0 on both paths (temporaries
  die), reported to show neither path leaks.

The committed ``BENCH_alloc.json`` records the fused/unfused reduction
ratio; ``check_throughput_regression.py --kind alloc`` gates it in CI
(machine-independent: both sides of the ratio come from one process),
and ``tests/test_allocations.py`` enforces the O(1)-retained contract
in the tier-1 suite.

Run::

    PYTHONPATH=src python benchmarks/bench_allocations.py
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import tracemalloc
from pathlib import Path

from repro.core.wm_sketch import WMSketch
from repro.data.batch import iter_batches
from repro.data.datasets import rcv1_like

WIDTH = 2**13
DEPTH = 3


def measure(factory, batches, use_fused: bool) -> dict:
    model = factory()
    model.use_fused = use_fused
    for b in batches:
        model.fit_batch(b)  # warm arenas / hash cache / interpreter
    gc.collect()
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        base, _ = tracemalloc.get_traced_memory()
        for b in batches:
            model.fit_batch(b)
        current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {
        "peak_transient_bytes": max(peak - base, 1),
        "retained_bytes_per_batch": max(current - base, 0) / len(batches),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--examples", type=int, default=4_000)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_alloc.json"),
    )
    args = parser.parse_args(argv)

    spec = rcv1_like(scale=0.08)
    examples = spec.stream.materialize(args.examples, seed_offset=5)
    batches = list(iter_batches(examples, args.batch_size))

    configs = {
        "wm_algorithm1": lambda: WMSketch(
            WIDTH, DEPTH, seed=0, heap_capacity=0
        ),
        "wm_with_heap": lambda: WMSketch(
            WIDTH, DEPTH, seed=0, heap_capacity=128
        ),
    }
    results: dict = {
        "workload": {
            "dataset": spec.name,
            "n_examples": args.examples,
            "batch_size": args.batch_size,
            "width": WIDTH,
            "depth": DEPTH,
            "python": platform.python_version(),
        },
    }
    print(f"{'config':>16} {'fused peak':>12} {'unfused peak':>13} "
          f"{'reduction':>10} {'retained/batch':>15}")
    for name, factory in configs.items():
        fused = measure(factory, batches, use_fused=True)
        unfused = measure(factory, batches, use_fused=False)
        reduction = (
            unfused["peak_transient_bytes"] / fused["peak_transient_bytes"]
        )
        results[name] = {
            "fused": fused,
            "unfused": unfused,
            "peak_reduction_x": reduction,
        }
        print(f"{name:>16} {fused['peak_transient_bytes']:>12,} "
              f"{unfused['peak_transient_bytes']:>13,} "
              f"{reduction:>9.1f}x "
              f"{fused['retained_bytes_per_batch']:>14,.0f}")

    results["peak_reduction_x"] = results["wm_algorithm1"][
        "peak_reduction_x"
    ]
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nheadline (WM Algorithm 1) steady-state allocation "
          f"reduction: {results['peak_reduction_x']:.1f}x  ->  {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
