"""Table 2: best sketch configurations per memory budget (RCV1).

The paper sweeps, for each budget, all (heap, width, depth) layouts that
fit the cost model and reports the configuration minimizing l2 recovery
error.  Reported structure (Table 2):

* AWM-Sketch: uniformly best with *half* the budget on the heap and a
  *depth-1* sketch (|S| = 128/256/512/1024/2048 for 2..32 KB);
* WM-Sketch: a small heap (|S| = 128) with depth growing with budget.

This bench runs the same sweep (over the enumerated power-of-two
configurations) at 2/4/8 KB and asserts the structural findings: the
winning AWM layout has depth 1 and spends roughly half its cells on the
heap.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import experiment, once, print_table
from repro.core.awm_sketch import AWMSketch
from repro.core.config import enumerate_sketch_configs
from repro.core.wm_sketch import WMSketch
from repro.evaluation.metrics import relative_error

BUDGETS_KB = (2, 4, 8)
K = 64


@pytest.fixture(scope="module")
def sweep():
    exp = experiment("rcv1")
    w_star = exp.reference().dense_weights()
    out = {}
    for kb in BUDGETS_KB:
        rows = []
        for cfg in enumerate_sketch_configs(kb * 1024, max_depth=8):
            awm = AWMSketch(
                cfg.width, cfg.depth, heap_capacity=cfg.heap_capacity,
                lambda_=exp.lambda_, seed=0,
            )
            for ex in exp.examples:
                awm.update(ex)
            err = relative_error(awm.top_weights(K), w_star, K)
            rows.append((cfg, err))
        out[kb] = sorted(rows, key=lambda r: r[1])
    return out


def test_table2_awm_best_configs(benchmark, sweep):
    def run():
        rows = []
        for kb, ranked in sweep.items():
            best, err = ranked[0]
            rows.append([
                f"{kb}KB", best.heap_capacity, best.width, best.depth,
                err, len(ranked),
            ])
        print_table(
            "Table 2: best AWM configuration per budget (sweep on RCV1)",
            ["budget", "|S|", "width", "depth", f"RelErr@{K}", "#configs"],
            rows,
        )
        return {kb: ranked[0] for kb, ranked in sweep.items()}

    best = once(benchmark, run)

    for kb, (cfg, _err) in best.items():
        cells = 256 * kb  # kb * 1024 / 4
        heap_fraction = 2 * cfg.heap_capacity / cells
        # Paper: depth-1 sketches with about half the budget on the heap
        # dominate.  Allow depth <= 2 and heap fraction in [0.25, 0.75].
        assert cfg.depth <= 2, (kb, cfg)
        assert 0.2 <= heap_fraction <= 0.8, (kb, cfg)


def test_table2_depth1_beats_deep_at_equal_budget(benchmark, sweep):
    """Among swept configs, the best depth-1 layout beats the best
    depth->=4 layout (the active set replaces multiple hashing, §9)."""
    def run():
        out = {}
        for kb, ranked in sweep.items():
            shallow = min(err for cfg, err in ranked if cfg.depth == 1)
            deep = [err for cfg, err in ranked if cfg.depth >= 4]
            if deep:
                out[kb] = (shallow, min(deep))
        return out

    comparisons = once(benchmark, run)
    assert comparisons, "sweep contained no deep configurations"
    for kb, (shallow, deep) in comparisons.items():
        assert shallow <= deep + 0.02, kb


def test_table2_wm_reference_configs(benchmark):
    """The WM-Sketch's Table 2 rows use |S|=128 with depth growing in
    the budget; check our default generator follows that shape."""
    from repro.core.config import default_wm_config

    def run():
        rows = []
        for kb in (2, 4, 8, 16, 32):
            cfg = default_wm_config(kb * 1024)
            rows.append([f"{kb}KB", cfg.heap_capacity, cfg.width, cfg.depth])
        print_table(
            "Table 2 (WM rows): default WM layouts",
            ["budget", "|S|", "width", "depth"],
            rows,
        )
        return [default_wm_config(kb * 1024) for kb in (2, 32)]

    small, large = once(benchmark, run)
    assert small.heap_capacity <= 128 and large.heap_capacity <= 128
    assert large.depth > small.depth
