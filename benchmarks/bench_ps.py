"""Parameter-server sync cost: O(dirty) delta bytes vs full-state sync.

A naive parameter server ships the whole table on every worker sync —
at 2^20 buckets that is 8 MB per push, and the sync fabric, not the
math, becomes the wall.  The PS loop (:mod:`repro.parallel.ps`) ships
only the 256-bucket chunks a worker's round actually dirtied, encoded
from the same bitmaps that make snapshot publication O(dirty).

Two measurements, both in the Fig. 7-style regime ``BENCH_publish.json``
uses (depth-1 sketch, fixed per-round write count set by the stream):

* **Delta bytes per sync** at widths 2^16 … 2^20: actual pushed bytes
  (chunk payloads + ids + header) against the full-table bytes a
  full-state sync would move.  The **headline** is the ratio at 2^20
  buckets — byte accounting from one in-process run, fully
  machine-independent — gated at >= 5x by
  ``check_throughput_regression.py --kind ps``.
* **Modeled critical-path throughput** at 1/2/4 workers on a fixed
  stream: workers train their shards in parallel on their own modeled
  cores (slowest worker binds), driver-side encode/apply/pull/publish
  work is serialized.  The scaling curve must be monotone 1 -> 4
  (gated on the committed baseline; a fresh run's inversion is warned,
  as with ``--kind parallel``).

Results land in ``BENCH_ps.json`` at the repository root.

Run::

    PYTHONPATH=src python benchmarks/bench_ps.py
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

from repro import kernels
from repro.core.wm_sketch import WMSketch
from repro.data.synthetic import SyntheticStream
from repro.parallel.ps import PSHarness

WIDTHS = [2**16, 2**17, 2**18, 2**19, 2**20]
HEADLINE_WIDTH = 2**20
SCALING_WORKERS = [1, 2, 4]


def _factory(width, backend):
    def factory():
        return WMSketch(
            width, 1, seed=0, heap_capacity=0, lambda_=1e-4,
            backend=backend,
        )

    return factory


def _stream(width, n, avg_nnz):
    return SyntheticStream(
        d=4 * width, n_signal=64, avg_nnz=float(avg_nnz), seed=1
    ).materialize(n)


def bench_delta_bytes(width: int, args) -> dict:
    """Delta bytes per sync vs the full-table wire cost at ``width``."""
    n = args.sync_every * args.rounds_per_worker * args.workers
    harness = PSHarness(
        _factory(width, args.backend),
        n_workers=args.workers,
        staleness=args.staleness,
        sync_every=args.sync_every,
        batch_size=args.sync_every,
        seed=0,
        publish_every=1,
    )
    harness.fit(_stream(width, n, args.avg_nnz))
    counters = harness.stats()["counters"]
    pushes = counters["ps.push.count"]
    mean_push_bytes = counters["ps.push.delta_bytes"] / pushes
    full_bytes = counters["ps.push.full_table_bytes"] / pushes
    hist = harness.stats()["histograms"]["ps.push.dirty_fraction"]
    return {
        "width": width,
        "pushes": pushes,
        "pulls": counters["ps.pull.count"],
        "mean_push_bytes": mean_push_bytes,
        "full_table_bytes": full_bytes,
        "delta_bytes_ratio": full_bytes / mean_push_bytes,
        "mean_pull_bytes": (
            counters["ps.pull.bytes"] / counters["ps.pull.count"]
            if counters["ps.pull.count"] else 0.0
        ),
        "dirty_fraction_mean": (
            hist["sum"] / hist["count"] if hist["count"] else 0.0
        ),
        "publishes": counters["publish.count"],
    }


def bench_scaling(args) -> dict:
    """Modeled critical-path throughput on a fixed stream, 1/2/4 workers."""
    examples = _stream(
        HEADLINE_WIDTH, args.scaling_examples, args.avg_nnz
    )
    rows: dict = {}
    for workers in SCALING_WORKERS:
        harness = PSHarness(
            _factory(HEADLINE_WIDTH, args.backend),
            n_workers=workers,
            staleness=args.staleness,
            sync_every=args.scaling_sync_every,
            batch_size=args.scaling_sync_every,
            seed=0,
            publish_every=1,
        )
        harness.fit(examples)
        wall = harness.modeled_wall_seconds()
        rows[str(workers)] = {
            "workers": workers,
            "worker_seconds_slowest": max(
                w.train_seconds + w.sync_seconds
                for w in harness.workers
            ),
            "driver_seconds": harness.driver_seconds,
            "modeled_wall_seconds": wall,
            "modeled_eps": len(examples) / wall,
        }
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sync-every", type=int, default=16,
        help="examples per worker round (the write interval between "
             "pushes — BENCH_publish.json's examples_per_publish)",
    )
    parser.add_argument("--avg-nnz", type=float, default=8.0)
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count for the delta-bytes runs")
    parser.add_argument("--staleness", type=int, default=1)
    parser.add_argument("--rounds-per-worker", type=int, default=8)
    parser.add_argument("--scaling-examples", type=int, default=8192)
    parser.add_argument(
        "--scaling-sync-every", type=int, default=256,
        help="examples per round for the worker-scaling runs: rounds "
             "large enough that the parallelizable training work, not "
             "fixed per-sync driver overhead, sets the critical path",
    )
    parser.add_argument("--backend", default=None)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke sizing (fewer widths and rounds)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_ps.json"),
    )
    args = parser.parse_args(argv)
    widths = WIDTHS
    if args.quick:
        widths = [2**16, 2**18, HEADLINE_WIDTH]
        args.rounds_per_worker = min(args.rounds_per_worker, 4)
        args.scaling_examples = min(args.scaling_examples, 4096)

    results: dict = {
        "workload": {
            "sync_every": args.sync_every,
            "avg_nnz": args.avg_nnz,
            "workers": args.workers,
            "staleness": args.staleness,
            "rounds_per_worker": args.rounds_per_worker,
            "scaling_examples": args.scaling_examples,
            "scaling_sync_every": args.scaling_sync_every,
            "depth": 1,
            "python": platform.python_version(),
            "kernel_backend": (
                args.backend or kernels.active_backend_name()
            ),
        },
        "widths": {},
    }
    print(f"{'width':>9} {'push B':>10} {'full B':>12} {'ratio':>8} "
          f"{'dirty':>7} {'pushes':>7}")
    for width in widths:
        row = bench_delta_bytes(width, args)
        results["widths"][str(width)] = row
        print(f"{width:>9} {row['mean_push_bytes']:>10,.0f} "
              f"{row['full_table_bytes']:>12,.0f} "
              f"{row['delta_bytes_ratio']:>7.1f}x "
              f"{row['dirty_fraction_mean']:>6.1%} {row['pushes']:>7}")

    results["delta_bytes_ratio"] = (
        results["widths"][str(HEADLINE_WIDTH)]["delta_bytes_ratio"]
    )

    print(f"\n{'workers':>8} {'worker s':>9} {'driver s':>9} "
          f"{'wall s':>9} {'modeled eps':>12}")
    scaling = bench_scaling(args)
    results["workers"] = scaling
    for workers in SCALING_WORKERS:
        row = scaling[str(workers)]
        print(f"{workers:>8} {row['worker_seconds_slowest']:>9.3f} "
              f"{row['driver_seconds']:>9.3f} "
              f"{row['modeled_wall_seconds']:>9.3f} "
              f"{row['modeled_eps']:>12,.0f}")
    eps = [scaling[str(w)]["modeled_eps"] for w in SCALING_WORKERS]
    results["monotone_1_to_4_workers"] = bool(
        all(b > a for a, b in zip(eps, eps[1:]))
    )
    results["speedup_4_workers"] = eps[-1] / eps[0]

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nheadline delta-bytes ratio at 2^20 buckets: "
          f"{results['delta_bytes_ratio']:.1f}x  "
          f"(modeled 4-worker speedup "
          f"{results['speedup_4_workers']:.2f}x, monotone="
          f"{results['monotone_1_to_4_workers']})  ->  {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
