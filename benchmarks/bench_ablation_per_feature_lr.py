"""Ablation (Section 9 open question): per-feature learning rates.

"In previous work on online learning applications, practitioners have
found that per-feature learning rates can significantly improve
classification performance.  An open question is whether variable
learning rate across features is worth the associated memory cost in
the streaming setting."

Under the Section 7.1 cost model, a per-bucket AdaGrad accumulator
doubles the footprint of each weight.  This bench answers the question
at *equal memory* on the RCV1-like stream:

* ``Hash(2W)``  — plain feature hashing with a 2W-bucket table;
* ``AdaHash(W)`` — AdaGrad feature hashing with W buckets + W
  accumulators (same 2W cells);
* the same comparison for the AWM-Sketch (plain with a larger sketch
  vs AdaGrad with accumulators).

The answer on our streams is *positive*: the AdaGrad variants beat
their plain counterparts at equal memory by several points of error.
The adaptive steps more than pay for the halved table because the
alternative — a single globally-decaying schedule — under-serves
features that first appear late in the stream (see
``tests/test_adagrad.py::test_rare_feature_keeps_large_rate`` for the
per-feature mechanism in isolation).
"""

from __future__ import annotations

import pytest

from _common import experiment, once, print_table
from repro.core.awm_sketch import AWMSketch
from repro.learning.adagrad import AdaGradAWMSketch, AdaGradFeatureHashing
from repro.learning.base import OnlineErrorTracker
from repro.learning.feature_hashing import FeatureHashing

BUDGET_CELLS = 2_048  # 8 KB


@pytest.fixture(scope="module")
def error_rates():
    exp = experiment("rcv1")
    contenders = {
        "Hash(2W)": FeatureHashing(BUDGET_CELLS, lambda_=exp.lambda_,
                                   seed=0),
        "AdaHash(W)": AdaGradFeatureHashing(BUDGET_CELLS // 2,
                                            lambda_=exp.lambda_, seed=0),
        "AWM": AWMSketch(width=BUDGET_CELLS // 2, depth=1,
                         heap_capacity=BUDGET_CELLS // 4,
                         lambda_=exp.lambda_, seed=0),
        "AdaAWM": AdaGradAWMSketch(width=BUDGET_CELLS // 4,
                                   heap_capacity=BUDGET_CELLS // 4,
                                   lambda_=exp.lambda_, seed=0),
    }
    out = {}
    for name, clf in contenders.items():
        tracker = OnlineErrorTracker(checkpoint_every=0)
        for ex in exp.examples:
            tracker.record(clf.predict(ex), ex.label)
            clf.update(ex)
        out[name] = (tracker.error_rate, clf.memory_cost_bytes)
    return out


def test_ablation_per_feature_rates_at_equal_memory(benchmark, error_rates):
    def run():
        print_table(
            "Ablation: per-feature (AdaGrad) rates at equal memory "
            "(8KB, RCV1)",
            ["method", "error rate", "bytes"],
            [[name, err, mem] for name, (err, mem) in error_rates.items()],
        )
        return error_rates

    out = once(benchmark, run)

    # Budgets actually match pairwise.
    assert out["Hash(2W)"][1] == out["AdaHash(W)"][1]
    assert abs(out["AWM"][1] - out["AdaAWM"][1]) <= 4 * 64

    # The empirical answer to the Section 9 open question on these
    # streams: per-feature rates are worth their memory cost — the
    # AdaGrad variants win (or at worst tie) at equal budgets.
    assert out["AdaHash(W)"][0] <= out["Hash(2W)"][0] + 0.005
    assert out["AdaAWM"][0] <= out["AWM"][0] + 0.005


def test_ablation_all_learn(benchmark, error_rates):
    errors = once(
        benchmark, lambda: {n: e for n, (e, _) in error_rates.items()}
    )
    for name, err in errors.items():
        assert err < 0.5, name
