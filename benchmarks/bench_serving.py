"""Serving throughput/latency: the micro-batching coalescer under load.

The Fig. 7 workload (rcv1-flavoured stream, the paper's serving-side
sketch dimensions) behind :class:`repro.serving.server.SketchServer`:

* **saturation throughput** (closed loop): N client threads issue
  back-to-back requests — once through the micro-batching coalescer
  (concurrent requests flushed as ONE fused batched kernel call) and
  once through the serial-scalar baseline (one request at a time,
  scalar kernels, same snapshot discipline).  The ratio is the
  **coalescing speedup**, the headline this PR gates in CI (floor 3x).
  Both sides answer from the same published snapshot and a bit-equality
  guard asserts coalescing changed *nothing* about the answers.
* **open-loop latency**: requests arrive on a Poisson schedule at a
  fraction of the measured saturation rate (no coordinated omission);
  reported p50/p99 measure what the latency budget actually buys.
* **coalescing observability**: the batch-size distribution the
  coalescer actually formed, plus the reader hash-cache hit rate.

Results land in ``BENCH_serving.json`` at the repository root;
``benchmarks/check_throughput_regression.py --kind serving`` gates the
speedup ratios (machine-independent: both sides of each ratio come
from the same process on the same machine) plus absolute floors.

Run::

    PYTHONPATH=src python benchmarks/bench_serving.py
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro import kernels
from repro.core.awm_sketch import AWMSketch
from repro.core.wm_sketch import WMSketch
from repro.data.batch import iter_batches
from repro.data.datasets import rcv1_like
from repro.serving import SketchServer
from repro.serving.loadgen import (
    build_requests,
    run_closed_loop,
    run_open_loop,
)
from repro.telemetry import hooks

WIDTH = 2**13
DEPTH = 3


def make_configs(backend: str | None) -> dict:
    return {
        "wm": lambda: WMSketch(
            WIDTH, DEPTH, seed=0, heap_capacity=128, backend=backend
        ),
        "awm_half_budget": lambda: AWMSketch(
            WIDTH // 2, depth=1, heap_capacity=WIDTH // 4, seed=0,
            backend=backend,
        ),
    }


def _server(model, latency_budget, max_batch):
    return SketchServer(
        model, latency_budget=latency_budget, max_batch=max_batch
    )


def _assert_bit_equal(server, requests):
    """Coalesced answers must equal serial-scalar answers, bit for bit,
    on the same (sole) published snapshot."""
    for op, payload in requests:
        coalesced, cv = server.request(op, payload, timeout=60.0)
        serial, sv = server.serial_request(op, payload)
        if cv != sv:
            raise AssertionError(f"version skew: {cv} != {sv}")
        if isinstance(serial, np.ndarray):
            if not np.array_equal(coalesced, serial):
                raise AssertionError(
                    f"coalesced {op} diverged from serial-scalar"
                )
        elif coalesced != serial:
            raise AssertionError(
                f"coalesced {op} diverged from serial-scalar"
            )


def bench_config(
    factory, train_batches, requests, args
) -> dict:
    model = factory()
    for batch in train_batches:
        model.fit_batch(batch)

    # --- saturation (closed loop), best-of-repeats per side -----------
    serial_rps = 0.0
    coalesced_rps = 0.0
    batch_hist: dict[int, int] = {}
    # Timing breakdown via the on_flush profiling hook: where coalesced
    # wall time goes (queue wait vs flush work), per op.
    flush_profile: dict[str, dict] = {}

    def _on_flush(op, batch_size, reason, queue_wait, seconds):
        row = flush_profile.setdefault(
            op,
            {"flushes": 0, "requests": 0, "flush_seconds": 0.0,
             "max_queue_wait_seconds": 0.0},
        )
        row["flushes"] += 1
        row["requests"] += batch_size
        row["flush_seconds"] += seconds
        if queue_wait > row["max_queue_wait_seconds"]:
            row["max_queue_wait_seconds"] = queue_wait

    hooks.on_flush.append(_on_flush)
    try:
        for _ in range(args.repeats):
            server = _server(model, args.latency_budget, args.max_batch)
            try:
                elapsed, _ = run_closed_loop(
                    server, requests, n_clients=args.clients, serial=True
                )
                serial_rps = max(serial_rps, len(requests) / elapsed)
                elapsed, _ = run_closed_loop(
                    server, requests, n_clients=args.clients, serial=False
                )
                coalesced_rps = max(coalesced_rps, len(requests) / elapsed)
                stats = server.coalescer.stats()
                for hist in stats["batch_size_hist"].values():
                    for size, count in hist.items():
                        batch_hist[size] = batch_hist.get(size, 0) + count
            finally:
                server.close()
    finally:
        hooks.on_flush.remove(_on_flush)

    # --- equivalence guard (same snapshot, subset of the stream) ------
    server = _server(model, args.latency_budget, args.max_batch)
    try:
        _assert_bit_equal(server, requests[:64])
    finally:
        server.close()

    # --- open-loop latency at a fraction of saturation ----------------
    # Latencies land in the bounded telemetry histogram (O(buckets)
    # memory however long the run), percentiles read from it.
    server = _server(model, args.latency_budget, args.max_batch)
    try:
        offered = args.offered_fraction * coalesced_rps
        lat_hist, elapsed = run_open_loop(
            server, requests, offered_rps=offered, seed=1
        )
        stats = server.stats()
    finally:
        server.close()

    total = sum(batch_hist.values())
    mean_batch = (
        sum(s * c for s, c in batch_hist.items()) / total if total else 0.0
    )
    for row in flush_profile.values():
        row["mean_flush_ms"] = 1e3 * row["flush_seconds"] / row["flushes"]
        row["max_queue_wait_ms"] = 1e3 * row.pop("max_queue_wait_seconds")
    return {
        "serial_rps": serial_rps,
        "coalesced_rps": coalesced_rps,
        "coalescing_speedup": coalesced_rps / serial_rps,
        "open_loop_offered_rps": offered,
        "open_loop_completed_rps": lat_hist.count / elapsed,
        "latency_p50_ms": lat_hist.percentile(50) * 1e3,
        "latency_p90_ms": lat_hist.percentile(90) * 1e3,
        "latency_p99_ms": lat_hist.percentile(99) * 1e3,
        "latency_max_ms": lat_hist.max_value * 1e3,
        "batch_size_hist": {str(k): v for k, v in sorted(batch_hist.items())},
        "mean_batch_size": mean_batch,
        "max_batch_size": max(batch_hist) if batch_hist else 0,
        "reader_hit_rate": stats["reader_hasher"]["hit_rate"],
        "timing_breakdown": flush_profile,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--train-examples", type=int, default=4_000)
    parser.add_argument("--requests", type=int, default=2_000)
    parser.add_argument("--clients", type=int, default=32)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--repeats", type=int, default=3)
    # At closed-loop saturation a nonzero budget only makes the flush
    # worker idle-wait (arrivals during the previous flush already form
    # the batch), so the saturation measurement defaults to pure natural
    # batching.  Pass e.g. --latency-budget 1e-3 to measure what a
    # latency/batch-size trade actually costs.
    parser.add_argument("--latency-budget", type=float, default=0.0)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument(
        "--offered-fraction", type=float, default=0.5,
        help="open-loop offered load as a fraction of measured "
             "coalesced saturation",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke sizing (fewer requests and repeats)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_serving.json"),
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.requests = min(args.requests, 400)
        args.repeats = min(args.repeats, 2)
        args.train_examples = min(args.train_examples, 2_000)

    spec = rcv1_like(scale=0.08)
    train = spec.stream.materialize(args.train_examples, seed_offset=5)
    held_out = spec.stream.materialize(512, seed_offset=9)
    train_batches = list(iter_batches(train, args.batch_size))
    requests = build_requests(
        args.requests, key_space=spec.stream.d, examples=held_out, seed=3
    )

    results: dict = {
        "workload": {
            "dataset": spec.name,
            "train_examples": args.train_examples,
            "n_requests": args.requests,
            "clients": args.clients,
            "latency_budget_ms": args.latency_budget * 1e3,
            "max_batch": args.max_batch,
            "width": WIDTH,
            "depth": DEPTH,
            "python": platform.python_version(),
            "kernel_backend": kernels.active_backend_name(),
        },
    }
    print(f"{'config':>16} {'serial rps':>11} {'coalesced':>11} "
          f"{'speedup':>8} {'p50':>8} {'p99':>8} {'batch':>6}")
    for name, factory in make_configs(None).items():
        row = bench_config(factory, train_batches, requests, args)
        results[name] = row
        print(f"{name:>16} {row['serial_rps']:>11,.0f} "
              f"{row['coalesced_rps']:>11,.0f} "
              f"{row['coalescing_speedup']:>7.2f}x "
              f"{row['latency_p50_ms']:>6.2f}ms "
              f"{row['latency_p99_ms']:>6.2f}ms "
              f"{row['mean_batch_size']:>6.1f}")

    results["coalescing_speedup"] = results["wm"]["coalescing_speedup"]
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nheadline (WM) coalescing speedup at saturation: "
          f"{results['coalescing_speedup']:.2f}x  ->  {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
