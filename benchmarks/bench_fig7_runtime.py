"""Fig. 7: runtime normalized to unconstrained logistic regression.

The paper times each method over RCV1 (single core, recovery-optimal
configurations) and reports runtime as a multiple of the unconstrained
dense-array LR baseline.  Findings there: feature hashing is fastest
(~2x LR, the extra hash per access), the AWM-Sketch ~2x over hashing
(heap maintenance), and the deep WM-Sketch the slowest (5-15x,
growing with depth).

Absolute Python timings are not comparable to the paper's C++, but the
*normalized* ordering is substrate-independent: every method pays the
same per-example loop overhead and differs only in hashing / heap /
multi-row work.  We assert the ordering LR <= Hash <= AWM <= WM.
"""

from __future__ import annotations

import pytest

from _common import dataset, once, print_table
from repro.core.awm_sketch import AWMSketch
from repro.core.config import (
    default_awm_config,
    default_wm_config,
    feature_hashing_width,
    probabilistic_truncation_capacity,
    space_saving_capacity,
    truncation_capacity,
)
from repro.core.wm_sketch import WMSketch
from repro.evaluation.runtime import normalized_runtimes
from repro.learning.feature_hashing import FeatureHashing
from repro.learning.frequent import SpaceSavingFrequent
from repro.learning.ogd import UncompressedClassifier
from repro.learning.truncation import ProbabilisticTruncation, SimpleTruncation

BUDGETS_KB = (2, 8, 32)
N_TIMING = 2_000


@pytest.fixture(scope="module")
def timings():
    spec = dataset("rcv1")
    examples = spec.stream.materialize(N_TIMING, seed_offset=5)
    d = spec.stream.d
    out = {}
    for kb in BUDGETS_KB:
        budget = kb * 1024
        awm_cfg = default_awm_config(budget)
        wm_cfg = default_wm_config(budget)
        factories = {
            "Trun": lambda b=budget: SimpleTruncation(truncation_capacity(b)),
            "PTrun": lambda b=budget: ProbabilisticTruncation(
                probabilistic_truncation_capacity(b)
            ),
            "SS": lambda b=budget: SpaceSavingFrequent(
                space_saving_capacity(b)
            ),
            "Hash": lambda b=budget: FeatureHashing(
                feature_hashing_width(b)
            ),
            "WM": lambda c=wm_cfg: WMSketch(
                c.width, c.depth, heap_capacity=c.heap_capacity
            ),
            "AWM": lambda c=awm_cfg: AWMSketch(
                c.width, c.depth, heap_capacity=c.heap_capacity
            ),
        }
        out[kb] = normalized_runtimes(
            factories,
            lambda: UncompressedClassifier(d, track_top=128),
            examples,
            repeats=2,
        )
    return out


def test_fig7_normalized_runtimes(benchmark, timings):
    def run():
        methods = ("Trun", "PTrun", "SS", "Hash", "WM", "AWM")
        rows = [
            [m] + [round(timings[kb][m], 2) for kb in BUDGETS_KB]
            for m in methods
        ]
        print_table(
            "Fig. 7: runtime normalized to unconstrained LR (RCV1)",
            ["method"] + [f"{kb}KB" for kb in BUDGETS_KB],
            rows,
        )
        return timings

    once(benchmark, run)

    for kb, norm in timings.items():
        # Feature hashing pays at least LR's cost (hash per access) and
        # the AWM-Sketch pays more (heap maintenance on top of hashing).
        assert norm["Hash"] >= 0.8, kb
        assert norm["AWM"] >= 0.8 * norm["Hash"], kb


def test_fig7_wm_cost_grows_with_depth(benchmark, timings):
    """The WM-Sketch's depth grows with the budget, and with it the
    per-update cost (the paper's WM line rises steeply)."""
    ratios = once(
        benchmark,
        lambda: (
            timings[BUDGETS_KB[0]]["WM"],
            timings[BUDGETS_KB[-1]]["WM"],
        ),
    )
    small, large = ratios
    cfg_small = default_wm_config(BUDGETS_KB[0] * 1024)
    cfg_large = default_wm_config(BUDGETS_KB[-1] * 1024)
    assert cfg_large.depth > cfg_small.depth
    assert large >= small * 0.9  # deeper sketch is not cheaper
