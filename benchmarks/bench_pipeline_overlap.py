"""Pipelined-ingestion overlap micro-benchmark (PR 4, satellite).

``fit_stream_pipelined`` hashes batch t+1 on a prefetch thread while
batch t trains.  Whether that overlap buys *wall-clock* depends on the
kernel backend: the NumPy hash path holds the GIL through its
Python-level dispatch (producer and consumer mostly timeshare one
core), while the compiled (Numba) backend's hash kernels are ``nogil``
and run genuinely concurrently.

For each measured backend this benchmark reports three walls over the
same stream:

* ``hash_s``    — a hash-only pass (a cold :class:`BatchHasher` over
  every batch, the producer thread's work);
* ``train_s``   — a training-only pass (``fit_batch`` fed precomputed
  rows, the consumer thread's work);
* ``pipelined_s`` — the measured ``fit_stream_pipelined`` wall.

``overlap_ratio = (hash_s + train_s) / pipelined_s``: 1.0 means the
pipeline ran the two stages back to back (no overlap beyond NumPy's
internal GIL releases); the ceiling is ``(hash + train) /
max(hash, train)``.  The final model state is asserted bit-identical
to the sequential engine on every backend before any number is
reported.

The synthetic workload draws example indices from a wide id space so
the cross-batch hash cache cannot absorb the hashing work (a cache-hot
stream would leave the producer idle and the ratio meaningless).

Run::

    PYTHONPATH=src python benchmarks/bench_pipeline_overlap.py
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro import kernels
from repro.core.wm_sketch import WMSketch
from repro.data.batch import iter_batches
from repro.data.sparse import SparseExample
from repro.hashing.batch import BatchHasher
from repro.parallel.pipeline import fit_stream_pipelined

WIDTH = 2**13
DEPTH = 3


def wide_stream(
    n: int, nnz: int, d: int = 2_000_000, seed: int = 0
) -> list[SparseExample]:
    """Examples whose indices rarely repeat across batches, so hashing
    stays on the slow path instead of the cross-batch cache."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        idx = np.unique(rng.integers(0, d, size=nnz, dtype=np.int64))
        values = rng.standard_normal(idx.size)
        label = 1 if rng.random() < 0.5 else -1
        out.append(SparseExample(idx, values, label))
    return out


def bench_backend(
    backend: str, examples, batch_size: int, repeats: int
) -> dict:
    def factory() -> WMSketch:
        return WMSketch(
            WIDTH, DEPTH, seed=0, heap_capacity=0, backend=backend
        )

    batches = list(iter_batches(examples, batch_size))

    hash_s = train_s = pipe_s = float("inf")
    for _ in range(repeats):
        # Producer-side work: a cold hasher per repeat, like the
        # pipeline's own prefetch hasher.
        hasher = BatchHasher(factory().family)
        start = time.perf_counter()
        rows = [hasher.rows(b.indices) for b in batches]
        hash_s = min(hash_s, time.perf_counter() - start)

        # Consumer-side work: training fed the precomputed rows.
        clf = factory()
        start = time.perf_counter()
        for b, r in zip(batches, rows):
            clf.fit_batch(b, rows=r)
        train_s = min(train_s, time.perf_counter() - start)

        pipelined = factory()
        start = time.perf_counter()
        fit_stream_pipelined(pipelined, examples, batch_size=batch_size)
        pipe_s = min(pipe_s, time.perf_counter() - start)

    # Equivalence guard before any throughput claim.
    sequential = factory()
    for b in batches:
        sequential.fit_batch(b)
    if not np.array_equal(
        sequential.table * sequential._scale,
        pipelined.table * pipelined._scale,
    ):
        raise AssertionError(
            f"{backend}: pipelined state diverged from sequential"
        )

    return {
        "hash_s": hash_s,
        "train_s": train_s,
        "pipelined_s": pipe_s,
        "overlap_ratio": (hash_s + train_s) / pipe_s,
        "overlap_ceiling": (hash_s + train_s) / max(hash_s, train_s),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--examples", type=int, default=3_000)
    parser.add_argument("--nnz", type=int, default=60)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--backends", default="auto",
        help="comma-separated kernel backends ('auto' = numpy plus "
             "numba when importable)",
    )
    parser.add_argument(
        "--out", default="",
        help="optional JSON output path (empty = print only)",
    )
    args = parser.parse_args(argv)

    names = []
    for part in args.backends.split(","):
        part = part.strip()
        if not part:
            continue
        if part == "auto":
            # Expand to real backend names, never a literal 'auto' row.
            if "numpy" not in names:
                names.append("numpy")
            if kernels.numba_available():
                if "numba" not in names:
                    names.append("numba")
            else:
                print("notice: numba not importable — only the GIL-bound "
                      "numpy rows can be measured on this host")
        elif part not in names:
            names.append(part)

    examples = wide_stream(args.examples, args.nnz)
    results: dict = {
        "workload": {
            "n_examples": args.examples,
            "nnz": args.nnz,
            "batch_size": args.batch_size,
            "width": WIDTH,
            "depth": DEPTH,
            "python": platform.python_version(),
        },
        "backends": {},
    }
    print(f"{'backend':>8} {'hash s':>8} {'train s':>8} {'pipe s':>8} "
          f"{'overlap':>8} {'ceiling':>8}")
    for name in names:
        try:
            kernels.get_backend(name, strict=True)
        except kernels.BackendUnavailableError as exc:
            print(f"notice: skipping backend {name!r}: {exc}")
            continue
        row = bench_backend(
            name, examples, args.batch_size, args.repeats
        )
        results["backends"][name] = row
        print(f"{name:>8} {row['hash_s']:>8.3f} {row['train_s']:>8.3f} "
              f"{row['pipelined_s']:>8.3f} {row['overlap_ratio']:>7.2f}x "
              f"{row['overlap_ceiling']:>7.2f}x")

    if args.out:
        Path(args.out).write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n"
        )
        print(f"-> {args.out}")
    numba_row = results["backends"].get("numba")
    if numba_row is not None and numba_row["overlap_ratio"] <= 1.0:
        print("WARNING: compiled backend shows no overlap — the nogil "
              "hash kernel should beat back-to-back staging")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
