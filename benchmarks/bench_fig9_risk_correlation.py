"""Fig. 9: correlation between classifier weights and relative risk.

The paper plots, for the top-2048 features, learned weight against true
relative risk: Pearson correlation 0.95 for memory-unconstrained
logistic regression and 0.91 for the 32 KB AWM-Sketch — i.e. the
sketched weights are nearly as faithful a risk ranking as the exact
ones ("logistic regression weights can be interpreted in terms of log
odds ratios, a related quantity to relative risk").
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import once, print_table
from repro.apps.explanation import StreamingExplainer
from repro.core.awm_sketch import AWMSketch
from repro.data.fec import FECLikeStream
from repro.evaluation.metrics import pearson_correlation
from repro.learning.ogd import UncompressedClassifier
from repro.learning.schedules import ConstantSchedule

N_ROWS = 25_000
MIN_OCCURRENCES = 80  # correlate only attributes with stable risk estimates

#: The paper's reported correlations (Fig. 9 caption).
PAPER_LR, PAPER_AWM = 0.95, 0.91


@pytest.fixture(scope="module")
def correlations():
    data = FECLikeStream(seed=9)
    exact = StreamingExplainer(
        UncompressedClassifier(data.d + 1, lambda_=1e-6,
                               learning_rate=ConstantSchedule(0.1)),
        intercept_id=data.d,
    )
    awm = StreamingExplainer(
        AWMSketch(width=4_096, depth=1, heap_capacity=2_048, lambda_=1e-6,
                  learning_rate=ConstantSchedule(0.1), seed=1),
        intercept_id=data.d,
    )
    for attrs, label in data.rows(N_ROWS):
        is_outlier = label == 1
        exact.observe(attrs, is_outlier)
        awm.observe(attrs, is_outlier)

    attrs = np.array(
        [a for a in data.counts.all_attributes()
         if data.counts.occurrences(a) >= MIN_OCCURRENCES],
        dtype=np.int64,
    )
    log_risk = np.log(data.true_relative_risks(attrs))
    return {
        "LR": pearson_correlation(exact.risk_scores(attrs), log_risk),
        "AWM": pearson_correlation(awm.risk_scores(attrs), log_risk),
        "n_attrs": attrs.size,
    }


def test_fig9_weight_risk_correlation(benchmark, correlations):
    def run():
        print_table(
            "Fig. 9: Pearson correlation (weight vs log relative risk)",
            ["model", "measured r", "paper r"],
            [
                ["LR (exact)", correlations["LR"], PAPER_LR],
                ["AWM (32KB)", correlations["AWM"], PAPER_AWM],
            ],
        )
        print(f"(over {correlations['n_attrs']} attributes with >= "
              f"{MIN_OCCURRENCES} occurrences)")
        return correlations

    out = once(benchmark, run)
    # Strong positive correlation for both models.
    assert out["LR"] > 0.75
    assert out["AWM"] > 0.70
    # The sketch loses little relative to the exact model (paper: 0.04).
    assert out["LR"] - out["AWM"] < 0.15
