"""Query/serving throughput: the read side of the Fig. 7 workload.

The paper motivates sketches that can be *queried* at high rate —
margins for incoming traffic and point-weight recoveries — not just
updated.  This benchmark measures the serving fast path shipped with
the fused kernels:

* **predict**: per-example ``predict_margin`` (hash + margin per call)
  vs ``predict_batch`` (one cached, deduplicated hash + one
  ``fused_predict`` kernel call for the whole batch).  Both are
  *bit-identical* — a served score does not depend on batching — so
  the speedup is pure amortization.
* **weight queries**: per-key ``estimate_weight`` vs ``query_many``
  (one cached hash + one ``fused_query`` gather/median call), again
  bit-identical.  A second, *hot* pass repeats the same key set so the
  cross-batch hash cache serves every key — the repeated-query regime
  of a dashboard or a top-K monitor.

Results land in ``BENCH_query.json`` at the repository root;
``benchmarks/check_throughput_regression.py --kind query`` gates the
machine-independent speedup ratios (plus absolute floors) in CI.

Timing discipline matches ``bench_update_throughput``: every repeat
round times all paths back to back and the reported numbers are
per-path minima across rounds, so clock drift cannot poison one side
of a ratio.

Run::

    PYTHONPATH=src python benchmarks/bench_query_throughput.py
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro import kernels
from repro.core.awm_sketch import AWMSketch
from repro.core.wm_sketch import WMSketch
from repro.data.batch import iter_batches
from repro.data.datasets import rcv1_like
from repro.learning.feature_hashing import FeatureHashing

WIDTH = 2**13
DEPTH = 3


def make_configs(backend: str | None) -> dict:
    return {
        "wm": lambda: WMSketch(
            WIDTH, DEPTH, seed=0, heap_capacity=128, backend=backend
        ),
        "awm_half_budget": lambda: AWMSketch(
            WIDTH // 2, depth=1, heap_capacity=WIDTH // 4, seed=0,
            backend=backend,
        ),
        "hash": lambda: FeatureHashing(WIDTH, seed=0, backend=backend),
    }


def bench_config(factory, train_batches, examples, batches, keys,
                 repeats) -> dict:
    model = factory()
    for b in train_batches:
        model.fit_batch(b)

    def clock(fn) -> float:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    n = len(examples)
    k = keys.size
    t = {name: float("inf") for name in (
        "predict_scalar", "predict_batch",
        "query_scalar", "query_many_cold", "query_many_hot",
    )}
    for _ in range(repeats):
        # Cold the hash cache before the scalar + cold-query rounds so
        # every path starts from the same cache state each round.
        model._batch_hasher.clear()
        t["predict_scalar"] = min(t["predict_scalar"], clock(
            lambda: [model.predict_margin(ex) for ex in examples]
        ))
        t["query_scalar"] = min(t["query_scalar"], clock(
            lambda: [model.estimate_weight(int(key)) for key in keys]
        ))
        model._batch_hasher.clear()
        t["query_many_cold"] = min(t["query_many_cold"], clock(
            lambda: model.query_many(keys)
        ))
        t["query_many_hot"] = min(t["query_many_hot"], clock(
            lambda: model.query_many(keys)
        ))
        t["predict_batch"] = min(t["predict_batch"], clock(
            lambda: [model.predict_batch(b) for b in batches]
        ))

    # Equivalence guard: batching must not change a single bit.
    scalar = np.array([model.predict_margin(ex) for ex in examples[:64]])
    batched = model.predict_batch(batches[0])[: scalar.size]
    if not np.array_equal(scalar, batched[: scalar.size]):
        raise AssertionError("predict_batch diverged from predict_margin")
    if not np.array_equal(model.query_many(keys),
                          model.estimate_weights(keys)):
        raise AssertionError("query_many diverged from estimate_weights")

    return {
        "predict_scalar_eps": n / t["predict_scalar"],
        "predict_batch_eps": n / t["predict_batch"],
        "predict_speedup": t["predict_scalar"] / t["predict_batch"],
        "query_scalar_kps": k / t["query_scalar"],
        "query_many_kps": k / t["query_many_cold"],
        "query_many_hot_kps": k / t["query_many_hot"],
        "query_speedup": t["query_scalar"] / t["query_many_cold"],
        "hot_over_cold": t["query_many_cold"] / t["query_many_hot"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--train-examples", type=int, default=4_000)
    parser.add_argument("--serve-examples", type=int, default=2_000)
    parser.add_argument("--keys", type=int, default=4_000)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_query.json"),
    )
    args = parser.parse_args(argv)

    spec = rcv1_like(scale=0.08)
    train = spec.stream.materialize(args.train_examples, seed_offset=5)
    serve = spec.stream.materialize(args.serve_examples, seed_offset=9)
    batches = list(iter_batches(train, args.batch_size))
    serve_batches = list(iter_batches(serve, args.batch_size))
    rng = np.random.default_rng(7)
    keys = rng.integers(0, spec.stream.d, size=args.keys).astype(np.int64)

    results: dict = {
        "workload": {
            "dataset": spec.name,
            "train_examples": args.train_examples,
            "serve_examples": args.serve_examples,
            "n_keys": args.keys,
            "batch_size": args.batch_size,
            "width": WIDTH,
            "depth": DEPTH,
            "python": platform.python_version(),
            "kernel_backend": kernels.active_backend_name(),
        },
    }
    print(f"{'config':>16} {'pred scalar':>12} {'pred batch':>12} "
          f"{'speedup':>8} {'qry speedup':>12} {'hot/cold':>9}")
    for name, factory in make_configs(None).items():
        row = bench_config(
            factory, batches, serve, serve_batches, keys, args.repeats
        )
        results[name] = row
        print(f"{name:>16} {row['predict_scalar_eps']:>12,.0f} "
              f"{row['predict_batch_eps']:>12,.0f} "
              f"{row['predict_speedup']:>7.2f}x "
              f"{row['query_speedup']:>11.2f}x "
              f"{row['hot_over_cold']:>8.2f}x")

    results["predict_speedup"] = results["wm"]["predict_speedup"]
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nheadline (WM) batched-vs-scalar predict speedup: "
          f"{results['predict_speedup']:.2f}x  ->  {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
