"""Fig. 6: online classification error rate vs memory budget.

The paper's Fig. 6 plots progressive-validation error for the six
budgeted methods plus the unconstrained LR reference, on all three
datasets and budgets 2-32 KB (medians over 10 trials).  Claims
reproduced (on medians over 3 generator draws):

* the AWM-Sketch consistently achieves the best error among budgeted
  methods, approaching the unconstrained reference;
* AWM matches-or-beats feature hashing (0.1-3.7% margins in the paper)
  — the active set's exact weights offset the smaller hash table
  (Section 7.3);
* frequent-feature selection (Space Saving) is an unreliable heuristic:
  it trails the other methods at small budgets;
* errors fall toward the unconstrained reference as the budget grows
  (clearest on RCV1, as in the paper's left panel).
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import dataset, once, print_table
from repro.evaluation.harness import RecoveryExperiment

BUDGETS_KB = (2, 8, 32)
METHODS = ("Trun", "PTrun", "SS", "Hash", "WM", "AWM")
SEEDS = (1, 2, 4)
N_EXAMPLES = 5_000


@pytest.fixture(scope="module")
def results():
    """results[name]["budgets"][kb][method] -> median error rate."""
    out = {}
    for name in ("rcv1", "url", "kdda"):
        per_seed = []
        refs = []
        for seed in SEEDS:
            spec = dataset(name, seed)
            examples = spec.stream.materialize(N_EXAMPLES)
            exp = RecoveryExperiment(
                examples, d=spec.stream.d,
                lambda_={"rcv1": 1e-6, "url": 1e-5, "kdda": 1e-5}[name],
                ks=(8,),
            )
            budgets = {
                kb: {
                    m: r.error_rate
                    for m, r in exp.run_budget(kb * 1024, seed=seed).items()
                }
                for kb in BUDGETS_KB
            }
            per_seed.append(budgets)
            refs.append(exp.reference_result().error_rate)
        medians = {
            kb: {
                m: float(np.median([s[kb][m] for s in per_seed]))
                for m in METHODS
            }
            for kb in BUDGETS_KB
        }
        out[name] = {
            "budgets": medians,
            "reference": float(np.median(refs)),
        }
    return out


def test_fig6_error_rate_tables(benchmark, results):
    def run():
        for name, data in results.items():
            rows = [
                [m] + [data["budgets"][kb][m] for kb in BUDGETS_KB]
                for m in METHODS
            ]
            rows.append(["LR"] + [data["reference"]] * len(BUDGETS_KB))
            print_table(
                f"Fig. 6 ({name}): median online error rate vs budget",
                ["method"] + [f"{kb}KB" for kb in BUDGETS_KB],
                rows,
            )
        return results

    once(benchmark, run)

    for name, data in results.items():
        for kb in BUDGETS_KB:
            res = data["budgets"][kb]
            # AWM within noise of the best budgeted method (wider
            # tolerance at 2 KB, where every method is starved and the
            # 3-draw medians still carry sampling noise)...
            best = min(res[m] for m in METHODS)
            tolerance = 0.015 if kb <= 2 else 0.01
            assert res["AWM"] <= best + tolerance, (name, kb)
        # ...and approaching the unconstrained reference at 32 KB.
        gap = data["budgets"][32]["AWM"] - data["reference"]
        assert gap <= 0.02, name
    # The budget trend (errors fall with memory) is clearest on RCV1,
    # exactly as in the paper's left panel.
    rcv1 = results["rcv1"]["budgets"]
    assert rcv1[2]["AWM"] >= rcv1[32]["AWM"] - 1e-9


def test_fig6_awm_vs_feature_hashing(benchmark, results):
    """Section 7.3's surprise: AWM >= feature hashing, consistently."""
    margins = once(
        benchmark,
        lambda: {
            (name, kb): data["budgets"][kb]["Hash"]
            - data["budgets"][kb]["AWM"]
            for name, data in results.items()
            for kb in BUDGETS_KB
        },
    )
    print("\nHash - AWM median error margins (positive favors AWM):")
    for (name, kb), margin in margins.items():
        print(f"  {name} @ {kb}KB: {margin:+.4f}")
    # AWM at least matches hashing nearly everywhere (within noise), and
    # wins on a majority of (dataset, budget) cells.
    losses = [m for m in margins.values() if m < -0.01]
    assert not losses, f"AWM lost to hashing: {losses}"
    wins = sum(1 for m in margins.values() if m >= 0.0)
    assert wins >= len(margins) / 2


def test_fig6_frequency_heuristic_unreliable(benchmark, results):
    """Space Saving trails the AWM-Sketch at small budgets on at least
    one dataset (the paper finds it inconsistent across datasets)."""
    worst_gap = once(
        benchmark,
        lambda: max(
            data["budgets"][kb]["SS"] - data["budgets"][kb]["AWM"]
            for data in results.values()
            for kb in BUDGETS_KB
        ),
    )
    print(f"\nworst SS - AWM median margin: {worst_gap:+.4f}")
    assert worst_gap >= 0.005
