"""Fig. 10: recall of relative deltoids over paired packet streams.

The paper streams outbound/inbound IP addresses from a CAIDA trace and
measures, for each |log ratio| threshold, the recall of the top-2048
retrieved addresses against the ground-truth set above that threshold,
at a 32 KB budget.  Claims reproduced:

* the AWM-based detector performs comparably to unconstrained logistic
  regression;
* it beats the paired Count-Min baseline by a large factor in recall at
  equal memory (the paper reports > 4x);
* it still beats a paired Count-Min with an 8x memory budget (CMx8);
* the simple truncation baselines sit between CM and AWM.
"""

from __future__ import annotations

import math

import pytest

from _common import once, print_table
from repro.apps.deltoids import ClassifierDeltoid, PairedCountMinDeltoid
from repro.core.awm_sketch import AWMSketch
from repro.data.network import PacketTrace
from repro.data.sparse import SparseExample
from repro.evaluation.metrics import recall_at_threshold
from repro.learning.ogd import UncompressedClassifier
from repro.learning.schedules import ConstantSchedule
from repro.learning.truncation import SimpleTruncation

import numpy as np

N_PACKETS = 250_000
TOP_K = 2_048
THRESHOLDS_LOG2 = (4, 5, 6, 7)


@pytest.fixture(scope="module")
def recalls():
    # A flat-ish popularity law (skew 1.0) and a large address space
    # push the planted deltoids into the count regime where the CM
    # baseline's collision noise (~N/width per bucket) swamps the true
    # counts — the regime responsible for Fig. 10's large gap.
    trace = PacketTrace(n_addresses=100_000, n_deltoids=400, ratio=512.0,
                        skew=1.0, seed=13)

    awm = ClassifierDeltoid(
        AWMSketch(width=4_096, depth=1, heap_capacity=2_048, lambda_=1e-7,
                  learning_rate=ConstantSchedule(0.1), seed=0)
    )
    lr = ClassifierDeltoid(
        UncompressedClassifier(trace.n_addresses, lambda_=1e-7,
                               learning_rate=ConstantSchedule(0.1))
    )
    trun = ClassifierDeltoid(
        SimpleTruncation(4_096, lambda_=1e-7,
                         learning_rate=ConstantSchedule(0.1))
    )
    cm = PairedCountMinDeltoid(width=1_024, depth=2, candidates=2_048,
                               seed=0)
    cm8 = PairedCountMinDeltoid(width=8_192, depth=2, candidates=8_192,
                                seed=0)

    detectors = {
        "LR": lr, "Trun": trun, "CM": cm, "CMx8": cm8, "AWM": awm,
    }
    for item, direction in trace.packets(N_PACKETS):
        for det in detectors.values():
            det.observe(item, direction)

    retrieved = {
        name: {i for i, _ in det.top_deltoids(TOP_K)}
        for name, det in detectors.items()
    }
    out = {}
    for log2_t in THRESHOLDS_LOG2:
        relevant = set(trace.counts.addresses_above(log2_t * math.log(2)))
        if not relevant:
            continue
        out[log2_t] = {
            "n_relevant": len(relevant),
            **{
                name: recall_at_threshold(items, relevant)
                for name, items in retrieved.items()
            },
        }
    return out


def test_fig10_recall_curves(benchmark, recalls):
    def run():
        rows = []
        for log2_t, row in recalls.items():
            rows.append(
                [f"2^{log2_t}", row["n_relevant"]]
                + [row[m] for m in ("LR", "Trun", "CM", "CMx8", "AWM")]
            )
        print_table(
            f"Fig. 10: recall of top-{TOP_K} retrieved addresses "
            f"vs ratio threshold (32KB)",
            ["ratio>=", "#relevant", "LR", "Trun", "CM", "CMx8", "AWM"],
            rows,
        )
        return recalls

    once(benchmark, run)
    assert recalls, "no thresholds materialized"


def test_fig10_awm_matches_unconstrained(benchmark, recalls):
    gaps = once(
        benchmark,
        lambda: [row["LR"] - row["AWM"] for row in recalls.values()],
    )
    # "the AWM-Sketch performed comparably to the memory-unconstrained
    # logistic regression baseline"
    assert max(gaps) <= 0.1


def test_fig10_awm_beats_paired_cm(benchmark, recalls):
    ratios = once(
        benchmark,
        lambda: [
            (row["AWM"], row["CM"], row["CMx8"]) for row in recalls.values()
        ],
    )
    mean_awm = np.mean([r[0] for r in ratios])
    mean_cm = np.mean([r[1] for r in ratios])
    mean_cm8 = np.mean([r[2] for r in ratios])
    print(f"\nmean recall: AWM {mean_awm:.2f}, CM {mean_cm:.2f} "
          f"({mean_awm / max(mean_cm, 1e-9):.1f}x), CMx8 {mean_cm8:.2f} "
          f"[paper: >4x over CM; AWM also beats CMx8]")
    # Equal-memory paired CM clearly beaten...
    assert mean_awm > 1.3 * mean_cm
    # ...and AWM at 32 KB at least matches CM with 8x the budget.
    assert mean_awm >= mean_cm8 - 0.05
