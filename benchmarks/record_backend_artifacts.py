"""Fold a CI numba job's per-backend benchmark artifact into the baseline.

The committed ``BENCH_throughput.json`` is produced on whatever host
the author has — often without Numba — so its ``backends`` /
``backend_batched_ratio`` sections start empty and the compiled-vs-
numpy ratios stay "pending a numba host".  The CI numba job *does*
measure them (it uploads ``BENCH_throughput_backends.json``); this
script merges that artifact's backend sections into the committed
baseline so the compiled ratios become part of the tracked trend
instead of a note in the ROADMAP.

Only the backend sections move.  The baseline's own numpy rows (the
schema the regression gate checks) are never touched: artifact and
baseline come from different machines, so mixing their absolute rows
would be meaningless — but each backend section's *ratios* were
computed against the artifact run's own numpy rows in-process, and
those in-process numpy rows are recorded alongside under
``backends_meta`` so the provenance is explicit.

Usage (after downloading the ``benchmarks-numba`` CI artifact)::

    python benchmarks/record_backend_artifacts.py \
        --artifact BENCH_throughput_backends.json \
        [--baseline BENCH_throughput.json] [--dry-run]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path


def merge_backend_sections(baseline: dict, artifact: dict) -> dict:
    """Return a copy of ``baseline`` carrying ``artifact``'s backend
    sections (plus provenance); raises ValueError on empty artifacts."""
    backends = artifact.get("backends") or {}
    ratios = artifact.get("backend_batched_ratio") or {}
    if not backends:
        raise ValueError(
            "artifact carries no extra-backend rows ('backends' is "
            "empty) — ran without numba? nothing to record"
        )
    merged = dict(baseline)
    merged["backends"] = backends
    merged["backend_batched_ratio"] = ratios
    workload = artifact.get("workload") or {}
    merged["backends_meta"] = {
        "source": "CI numba job artifact (different host than the "
                  "numpy rows above; ratios are in-process)",
        "python": workload.get("python"),
        "n_examples": workload.get("n_examples"),
        "artifact_numpy_rows": {
            name: row
            for name, row in artifact.items()
            if isinstance(row, dict) and "speedup" in row
        },
    }
    return merged


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    root = Path(__file__).resolve().parent.parent
    parser.add_argument("--artifact", required=True,
                        help="BENCH_throughput_backends.json from CI")
    parser.add_argument(
        "--baseline", default=str(root / "BENCH_throughput.json")
    )
    parser.add_argument("--dry-run", action="store_true",
                        help="print the merged backend names, write "
                             "nothing")
    args = parser.parse_args(argv)

    with open(args.artifact) as fh:
        artifact = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    merged = merge_backend_sections(baseline, artifact)
    names = sorted(merged["backends"])
    print(f"recording backend sections: {', '.join(names)}")
    for name in names:
        ratios = (merged["backend_batched_ratio"] or {}).get(name, {})
        for config, ratio in sorted(ratios.items()):
            print(f"  {name}:{config} batched ratio vs numpy: "
                  f"{ratio.get('batched', float('nan')):.2f}x")
    if args.dry_run:
        print("dry run: baseline not modified")
        return 0
    Path(args.baseline).write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
