"""Telemetry overhead: the 3% contract, measured and gated.

The observability layer (:mod:`repro.telemetry`) rides inside the
hottest loop in the repository — ``fit_batch`` wraps the fused update
in spans, the serving layer wraps every flush — so its cost has to be
a measured number, not a hope.  This benchmark times the Fig. 7
training workload (rcv1-like stream, width 2**13 x depth 3, batched
engine) twice per round: once with tracing disabled (the production
default — one module-attribute check per span site, no allocation) and
once with tracing enabled (full parent/child timing trees captured on
every batch).  The report is::

    telemetry_overhead_ratio = enabled_eps / disabled_eps

and the contract, gated in CI by
``check_throughput_regression.py --kind telemetry`` against
``benchmarks/gates.json``, is **ratio >= 0.97**: turning the tracer on
may cost at most 3% of training throughput.  (Metric counters are
always on and per-batch amortized; "telemetry enabled" here means the
expensive axis — span capture.)

Timing discipline: a ratio this close to 1.0 needs a finer instrument
than the whole-pass best-of minima the throughput benchmarks use — on
a machine whose clock drifts ±40% between passes, one anomalously fast
window on one side drags a pass-level min ratio far below what any
individual comparison measured.  So the two sides are paired at
**batch granularity**: two identical models advance through the stream
together, each batch timed once untraced and once traced (order
alternating by batch index and round, so neither side systematically
runs second on a warm cache), and each (batch, side) timing site keeps
its **minimum across rounds**.  The per-site min rejects scheduler and
clock noise independently at every site; the reported ratio is the
ratio of summed per-site minima.  Both models see identical state at
every batch (same seed, same stream), so the pairing compares the same
computation, span capture being the only difference.

The enabled rounds double as a correctness probe: the captured trees
are validated (children nested inside parents, sibling spans ordered,
no child time exceeding its parent) and the kernel-phase breakdown —
what fraction of a traced batch goes to hashing, the fused update, and
heap maintenance — lands in the JSON under ``"breakdown"``, which is
the timing-breakdown section the profiling-hook API promises to
benchmarks.

Run::

    PYTHONPATH=src python benchmarks/bench_telemetry.py
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro import kernels
from repro.core.wm_sketch import WMSketch
from repro.data.batch import iter_batches
from repro.data.datasets import rcv1_like
from repro.telemetry import trace, validate_span_tree

WIDTH = 2**13
DEPTH = 3

CONFIGS = {
    "wm_algorithm1": lambda: WMSketch(WIDTH, DEPTH, seed=0, heap_capacity=0),
    "wm_with_heap": lambda: WMSketch(WIDTH, DEPTH, seed=0, heap_capacity=128),
}


def _paired_round(factory, batches, r, best_dis, best_en) -> None:
    """One interleaved round: fresh traced + untraced models advance
    batch by batch together, folding each timing into its site's min."""
    pc = time.perf_counter
    dis, en = factory(), factory()
    for i, batch in enumerate(batches):
        untraced_first = (i + r) % 2 == 0
        for side in (0, 1):
            if (side == 0) == untraced_first:
                t0 = pc()
                dis.fit_batch(batch)
                dt = pc() - t0
                if dt < best_dis[i]:
                    best_dis[i] = dt
            else:
                trace.enable()
                t0 = pc()
                en.fit_batch(batch)
                dt = pc() - t0
                trace.disable()
                if dt < best_en[i]:
                    best_en[i] = dt


def _span_breakdown(roots) -> dict:
    """Validate every captured tree and aggregate child-phase time.

    Returns per-phase total seconds and the fraction of traced
    ``fit_batch`` time each phase accounts for (the profiling
    timing-breakdown section).
    """
    spans = 0
    fit_seconds = 0.0
    phases: dict[str, float] = {}
    for root in roots:
        spans += validate_span_tree(root)
        if root.name != "fit_batch":
            continue
        fit_seconds += root.seconds
        for child in root.children:
            phases[child.name] = phases.get(child.name, 0.0) + child.seconds
    return {
        "roots": len(roots),
        "spans_validated": spans,
        "fit_batch_seconds": fit_seconds,
        "phase_seconds": {k: v for k, v in sorted(phases.items())},
        "phase_fraction": {
            k: (v / fit_seconds if fit_seconds else 0.0)
            for k, v in sorted(phases.items())
        },
    }


def bench_config(name, factory, batches, n, repeats) -> dict:
    """Summed per-site-min paired timings over ``repeats`` rounds."""
    nb = len(batches)
    best_dis = [float("inf")] * nb
    best_en = [float("inf")] * nb
    trace.disable()
    try:
        for r in range(repeats):
            _paired_round(factory, batches, r, best_dis, best_en)
            # The interleaved rounds only time; the trees they capture
            # interleave two models, so drop them and take the
            # breakdown from one clean traced pass below.
            trace.drain()
        with trace.capture() as cap:
            clf = factory()
            for batch in batches:
                clf.fit_batch(batch)
        breakdown = _span_breakdown(cap.spans)
    finally:
        trace.disable()

    if breakdown.get("roots", 0) == 0:
        raise AssertionError(f"{name}: traced pass captured no spans")
    t_dis = sum(best_dis)
    t_en = sum(best_en)
    return {
        "disabled_eps": n / t_dis,
        "enabled_eps": n / t_en,
        "telemetry_overhead_ratio": t_dis / t_en,
        "breakdown": breakdown,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--examples", type=int, default=4_000)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument(
        "--repeats", type=int, default=8,
        help="interleaved rounds; each (batch, side) site keeps its "
             "min, so more rounds tighten the estimate",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke sizing (fewer examples and repeats)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_telemetry.json"),
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.examples = min(args.examples, 2_000)
        args.repeats = min(args.repeats, 4)

    spec = rcv1_like(scale=0.08)
    examples = spec.stream.materialize(args.examples, seed_offset=5)
    batches = list(iter_batches(examples, args.batch_size))

    results: dict = {
        "workload": {
            "dataset": spec.name,
            "n_examples": args.examples,
            "batch_size": args.batch_size,
            "width": WIDTH,
            "depth": DEPTH,
            "pass": "batched training (Fig. 7 workload), tracing "
                    "disabled vs enabled",
            "python": platform.python_version(),
            "kernel_backend": kernels.active_backend_name(),
        },
    }
    print(f"{'config':>16} {'disabled ex/s':>14} {'enabled ex/s':>13} "
          f"{'ratio':>7}")
    worst = float("inf")
    for name, factory in CONFIGS.items():
        row = bench_config(
            name, factory, batches, args.examples, args.repeats
        )
        results[name] = row
        worst = min(worst, row["telemetry_overhead_ratio"])
        frac = row["breakdown"]["phase_fraction"]
        phases = " ".join(f"{k}={v:.0%}" for k, v in frac.items())
        print(f"{name:>16} {row['disabled_eps']:>14,.0f} "
              f"{row['enabled_eps']:>13,.0f} "
              f"{row['telemetry_overhead_ratio']:>7.3f}")
        print(f"{'':>16} traced breakdown: {phases}")

    results["telemetry_overhead_ratio"] = worst
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nworst-case telemetry overhead ratio: {worst:.3f}  ->  {out}")
    if worst < 0.97:
        print("WARNING: tracing overhead exceeds the 3% contract")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
