"""Fig. 11: retrieved-pair quality vs sketch width and regularization.

The paper sweeps the PMI sketch's width (2^10 .. 2^20) and lambda and
reports, for the retrieved pairs:

* at small widths, heavy collisions make retrieval noisy (low-PMI
  pairs); as width grows, retrieval shifts to genuine high-PMI pairs;
* stronger regularization discards low-frequency pairs.

Reproduction notes: the *PMI-vs-width* and *lambda-vs-frequency*
trends reproduce directly.  The paper's *median-frequency-vs-width*
curve (falling with width) does not reproduce at bench scale: in our
short streams the small-width noise retrievals are mostly one-off rare
pairs aliased onto heavy buckets (median frequency near the floor), so
the frequency curve starts low, rather than high as in the paper's
600M-update streams where regularization has culled one-off pairs.
We therefore assert the noisy-to-clean transition via *precision
against the planted collocations* (rising with width) and assert the
frequency claim on the lambda axis, where it is unambiguous.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import once, print_table
from repro.apps.pmi import StreamingPMI
from repro.data.text import CollocationCorpus

N_TOKENS = 40_000
WIDTHS = (2**10, 2**12, 2**14, 2**16)
LAMBDAS = (1e-6, 1e-8)
TOP_K = 24


@pytest.fixture(scope="module")
def sweep():
    corpus = CollocationCorpus(vocab=10_000, n_collocations=40,
                               collocation_rate=0.04, window=5, seed=23)
    pairs = list(corpus.pairs(N_TOKENS))
    planted = set(corpus.collocations)
    out = {}
    for lam in LAMBDAS:
        for width in WIDTHS:
            est = StreamingPMI(
                vocab=corpus.vocab,
                width=width,
                heap_capacity=256,
                lambda_=lam,
                negatives_per_pair=5,
                reservoir_size=2_000,
                learning_rate=0.1,
                seed=3,
            )
            est.consume(pairs)
            top = est.top_pairs(TOP_K)
            freqs = [corpus.counts.pair_frequency(u, v) for u, v, _ in top]
            pmis = [
                corpus.exact_pmi(u, v)
                for u, v, _ in top
                if np.isfinite(corpus.exact_pmi(u, v))
            ]
            hits = sum((u, v) in planted for u, v, _ in top)
            out[(lam, width)] = {
                "median_freq": float(np.median(freqs)) if freqs else 0.0,
                "median_pmi": float(np.median(pmis)) if pmis else 0.0,
                "n_retrieved": len(top),
                "precision": hits / len(top) if top else 0.0,
            }
    return out


def test_fig11_width_sweep(benchmark, sweep):
    def run():
        for lam in LAMBDAS:
            rows = [
                [
                    f"2^{int(np.log2(w))}",
                    sweep[(lam, w)]["n_retrieved"],
                    sweep[(lam, w)]["precision"],
                    f"{sweep[(lam, w)]['median_freq']:.2e}",
                    sweep[(lam, w)]["median_pmi"],
                ]
                for w in WIDTHS
            ]
            print_table(
                f"Fig. 11 (lambda={lam:.0e}): retrieved-pair stats vs width",
                ["width", "#retrieved", "precision", "median freq",
                 "median PMI"],
                rows,
            )
        return sweep

    once(benchmark, run)

    for lam in LAMBDAS:
        small = sweep[(lam, WIDTHS[0])]
        large = sweep[(lam, WIDTHS[-1])]
        # Larger widths retrieve higher-PMI pairs...
        assert large["median_pmi"] >= small["median_pmi"], lam
        # ...and more genuinely-correlated ones (noise falls away).
        assert large["precision"] >= small["precision"], lam


def test_fig11_collisions_hurt_at_small_width(benchmark, sweep):
    """At the smallest width the retrieved pairs' PMI is clearly below
    the large-width retrieval (the 'noisy, low-PMI pairs' of §8.3)."""
    gap = once(
        benchmark,
        lambda: min(
            sweep[(lam, WIDTHS[-1])]["median_pmi"]
            - sweep[(lam, WIDTHS[0])]["median_pmi"]
            for lam in LAMBDAS
        ),
    )
    print(f"\nmin PMI gain from width 2^10 -> 2^16: {gap:.2f}")
    assert gap >= 0.0


def test_fig11_regularization_discards_rare_pairs(benchmark, sweep):
    """Fig. 11's lambda effect: at a clean (large) width, the more
    regularized model retrieves more-frequent pairs."""
    freqs = once(
        benchmark,
        lambda: {
            lam: sweep[(lam, WIDTHS[-1])]["median_freq"] for lam in LAMBDAS
        },
    )
    print(f"\nmedian retrieved-pair frequency at 2^16: "
          + ", ".join(f"lambda={l:.0e} -> {f:.2e}" for l, f in freqs.items()))
    assert freqs[LAMBDAS[0]] >= freqs[LAMBDAS[-1]] - 1e-9
