"""Fig. 3: relative L2 error of estimated top-K weights, 8 KB budget.

The paper's Fig. 3 plots RelErr (estimated top-K vs the true top-K of
the unconstrained model) against K for six methods on RCV1, URL and
KDDA under an 8 KB budget, with the per-dataset lambdas from Section 7.
Headline claims reproduced here:

* the AWM-Sketch achieves the lowest recovery error on all datasets;
* Space Saving is competitive on RCV1 (frequency correlates with
  discriminativeness there) but *underperforms Probabilistic
  Truncation on URL* (it does not);
* feature hashing recovers poorly (collisions are not disambiguated);
* Section 7.2's headline: on RCV1 the AWM-Sketch's excess recovery
  error (RelErr - 1) is several times smaller than Space Saving's and
  an order of magnitude smaller than naive truncation's.
"""

from __future__ import annotations

import pytest

from _common import experiment, once, print_table

BUDGET = 8 * 1024
KS = (8, 16, 32, 64, 128)


@pytest.fixture(scope="module")
def results():
    out = {}
    for name in ("rcv1", "url", "kdda"):
        exp = experiment(name)
        out[name] = exp.run_budget(BUDGET)
    return out


def test_fig3_recovery_error_curves(benchmark, results):
    def run():
        for name, res in results.items():
            rows = [
                [method] + [res[method].rel_err[k] for k in KS]
                for method in ("Trun", "PTrun", "SS", "Hash", "WM", "AWM")
            ]
            print_table(
                f"Fig. 3 ({name}, 8KB): RelErr of top-K weights",
                ["method"] + [f"K={k}" for k in KS],
                rows,
            )
        return results

    once(benchmark, run)

    # AWM achieves the lowest recovery error across datasets and K.
    for name, res in results.items():
        for k in (32, 64, 128):
            best_other = min(
                res[m].rel_err[k] for m in ("PTrun", "Hash", "WM")
            )
            assert res["AWM"].rel_err[k] <= best_other + 0.05, (name, k)


def test_fig3_headline_ratios(benchmark, results):
    """Section 7.2: AWM's excess error is ~4x smaller than Space
    Saving's and ~10x smaller than truncation's on RCV1.  We assert the
    direction and a conservative factor (>= 1.5x / >= 2x)."""
    res = results["rcv1"]
    k = 128

    def run():
        awm = max(res["AWM"].rel_err[k] - 1.0, 1e-6)
        return awm, res["SS"].rel_err[k] - 1.0, res["Trun"].rel_err[k] - 1.0

    awm_excess, ss_excess, trun_excess = once(benchmark, run)
    print(f"\nRCV1 excess RelErr at K=128: AWM {awm_excess:.3f}, "
          f"SS {ss_excess:.3f} ({ss_excess / awm_excess:.1f}x), "
          f"Trun {trun_excess:.3f} ({trun_excess / awm_excess:.1f}x)"
          f" [paper: ~4x and ~10x]")
    assert ss_excess > 1.5 * awm_excess
    assert trun_excess > 2.0 * awm_excess


def test_fig3_url_frequency_decoupling(benchmark, results):
    """On URL, tracking frequent features misfires: Space Saving does
    not beat Probabilistic Truncation (middle panel of Fig. 3)."""
    res = results["url"]
    ss, ptrun = once(
        benchmark,
        lambda: (res["SS"].rel_err[128], res["PTrun"].rel_err[128]),
    )
    assert ss >= ptrun - 0.05


def test_fig3_hash_recovers_poorly(benchmark, results):
    gaps = once(
        benchmark,
        lambda: {
            name: res["Hash"].rel_err[128] - res["AWM"].rel_err[128]
            for name, res in results.items()
        },
    )
    for name, gap in gaps.items():
        assert gap > 0, name
