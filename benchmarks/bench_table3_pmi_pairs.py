"""Table 3: top recovered PMI pairs vs exact PMI.

The paper's Table 3 (left) lists the top pairs recovered by the
AWM-based streaming PMI estimator alongside the PMI computed from exact
counts — the estimates track the exact values ("prime minister": exact
6.339, estimated 7.609).  The right panel shows the most *frequent*
pairs, whose PMI is near zero (", the": 0.044) — frequency is not
correlation.

Setup mirrors Section 8.3: AWM-Sketch with heap 1024 and depth 1,
reservoir of 4000 unigrams, 5 negatives per true pair, single pass.
"""

from __future__ import annotations

import numpy as np
import pytest

from _common import once, print_table
from repro.apps.pmi import StreamingPMI
from repro.data.text import CollocationCorpus

N_TOKENS = 60_000
TOP_SHOW = 10


@pytest.fixture(scope="module")
def estimator_and_corpus():
    corpus = CollocationCorpus(vocab=10_000, n_collocations=40,
                               collocation_rate=0.04, window=5, seed=21)
    est = StreamingPMI(
        vocab=corpus.vocab,
        width=2**16,
        heap_capacity=1_024,
        lambda_=1e-8,
        negatives_per_pair=5,
        reservoir_size=4_000,
        learning_rate=0.1,
        seed=2,
    )
    est.consume(corpus.pairs(N_TOKENS))
    return est, corpus


def test_table3_top_pairs(benchmark, estimator_and_corpus):
    est, corpus = estimator_and_corpus

    def run():
        top = est.top_pairs(TOP_SHOW)
        planted = set(corpus.collocations)
        rows = []
        for u, v, estimated in top:
            exact = corpus.exact_pmi(u, v)
            rows.append([
                f"({u},{v})", estimated, exact,
                "yes" if (u, v) in planted else "no",
            ])
        print_table(
            "Table 3 (left): top recovered pairs (estimated vs exact PMI)",
            ["pair", "est. PMI", "exact PMI", "planted?"],
            rows,
        )
        freq = sorted(corpus.counts.bigrams.items(), key=lambda kv: -kv[1])
        freq_rows = [
            [f"({u},{v})", count, corpus.exact_pmi(u, v)]
            for (u, v), count in freq[:5]
        ]
        print_table(
            "Table 3 (right): most frequent pairs (PMI near zero)",
            ["pair", "count", "exact PMI"],
            freq_rows,
        )
        return top, freq[:5]

    top, most_frequent = once(benchmark, run)

    # Retrieved pairs are overwhelmingly the planted collocations.
    planted = set(corpus.collocations)
    hits = sum((u, v) in planted for u, v, _ in top)
    assert hits >= 0.6 * len(top)

    # Estimated PMIs track the exact values (paper's error is ~1.3 on
    # the headline pair; ours should be of the same magnitude).
    errors = [
        abs(estimated - corpus.exact_pmi(u, v))
        for u, v, estimated in top
        if np.isfinite(corpus.exact_pmi(u, v))
    ]
    assert errors and float(np.median(errors)) < 2.5

    # The most frequent pairs have PMI near zero — far below the
    # typical retrieved pair (Table 3 right vs left).  Compare against
    # the median: an occasional noise retrieval can carry a negative
    # exact PMI, but the bulk of the retrieved list must sit well above
    # the frequent pairs.
    freq_pmis = [corpus.exact_pmi(u, v) for (u, v), _ in most_frequent]
    finite_top = [p for p in (corpus.exact_pmi(u, v) for u, v, _ in top)
                  if np.isfinite(p)]
    assert max(freq_pmis) < float(np.median(finite_top))
    assert max(abs(p) for p in freq_pmis) < 1.0


def test_table3_memory_footprint(benchmark, estimator_and_corpus):
    """The estimator's memory stays ~fixed while exact counting scales
    with the number of distinct bigrams (Section 8.3: 1.4 MB vs 188 MB)."""
    est, corpus = estimator_and_corpus
    sketch_bytes, exact_bytes = once(
        benchmark,
        lambda: (
            est.classifier.memory_cost_bytes,
            4 * len(corpus.counts.bigrams),
        ),
    )
    print(f"\nsketch memory {sketch_bytes / 1024:.0f} KB vs exact bigram "
          f"counts {exact_bytes / 1024:.0f} KB")
    assert sketch_bytes < 0.6 * exact_bytes
